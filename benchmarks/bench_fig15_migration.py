"""Figure 15: whole-program migration of the real-world applications.

Paper (Section 9.8): the LTE-A transceiver and the DVB-T2 receiver run
on a single node and are repeatedly migrated, program and all, to a
new node — with no downtime.  DVB-T2's output is inherently bursty
because of its very high peek/pop rates.

``--panel`` mode runs the Megaphone-style tail-latency panel instead:
the keyed-aggregate app across state sizes x {stop-and-copy, adaptive,
fluid at several batch sizes}, measuring per-item latency added by the
reconfiguration (versus the pre-reconfiguration steady rate) and
writing ``BENCH_migration.json``.  The gate holds the fluid strategy's
p99 added latency at the largest state size to <= 25% of
stop-and-copy's and below adaptive's — the whole point of batched
migration is that the latency spike stops scaling with state size.

Usage::

    pytest benchmarks/bench_fig15_migration.py      # figure 15 entry
    python benchmarks/bench_fig15_migration.py --panel            # panel + gate
    python benchmarks/bench_fig15_migration.py --panel --no-gate  # measure only
"""

import argparse
import dataclasses
import json
import os
import sys

_REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
for _path in (_REPO_ROOT, os.path.join(_REPO_ROOT, "src")):
    if _path not in sys.path:
        sys.path.insert(0, _path)

from benchmarks.conftest import run_experiment
from repro.experiments import format_rows, make_experiment_app, write_result

MIGRATIONS = 4


def _migrate_repeatedly(app_name, bucket=1.0, **kwargs):
    experiment = make_experiment_app(
        app_name, n_nodes=MIGRATIONS + 1, initial_nodes=[0], **kwargs)
    reports = []
    for step in range(MIGRATIONS):
        target_node = step + 1
        config = experiment.config([target_node],
                                   name="cfg%d@node%d" % (step + 2,
                                                          target_node))
        start, _ = experiment.reconfigure_and_run(config, "adaptive",
                                                  settle=75.0)
        # DVB-T2's output is inherently bursty, so downtime is judged
        # at a granularity above its burst period (the paper likewise
        # notes the bursts are "inherent to the application").
        reports.append(experiment.app.analyze(start, start + 75.0,
                                              bucket=bucket))
    return experiment, reports


def _run():
    lte_experiment, lte_reports = _migrate_repeatedly("LTE", scale=2)
    # DVB-T2 ingests a live off-air signal: its very high pop rate
    # (192 inputs per 32 outputs) against a fixed arrival rate makes
    # it emit in ~2 s bursts (paper Section 9.8).
    dvb_experiment, dvb_reports = _migrate_repeatedly(
        "DVB-T2", scale=2, multiplier=4, bucket=4.0,
        input_rate=4 * 192 / 2.0)
    # Burstiness of DVB-T2: largest inter-emission gap at steady state.
    events = dvb_experiment.app.series.events()
    steady = [t for t, _ in events if t > dvb_experiment.env.now - 30.0]
    gaps = [b - a for a, b in zip(steady, steady[1:])]
    return {
        "LTE": lte_reports,
        "DVB-T2": dvb_reports,
        "dvb_max_gap": max(gaps) if gaps else 0.0,
        "lte_throughput": lte_experiment.throughput_between(
            lte_experiment.env.now - 30.0, lte_experiment.env.now),
        "dvb_throughput": dvb_experiment.throughput_between(
            dvb_experiment.env.now - 30.0, dvb_experiment.env.now),
    }


def test_fig15_full_program_migration(benchmark):
    results = run_experiment(benchmark, _run)
    rows = []
    for app_name in ("LTE", "DVB-T2"):
        for i, report in enumerate(results[app_name]):
            rows.append((app_name, "migration %d" % (i + 1),
                         "%.1f" % report.downtime,
                         "%.1f" % report.disrupted_time))
    rows.append(("DVB-T2", "max output gap (burstiness)",
                 "%.2fs" % results["dvb_max_gap"], ""))
    # The bursty-output property (paper: a burst every ~2 s).
    assert results["dvb_max_gap"] > 1.0
    write_result("fig15_migration", format_rows(
        ("application", "event", "downtime (s)", "disrupted (s)"), rows,
        title="Figure 15: single-node whole-program migration, %d hops"
              % MIGRATIONS))
    for app_name in ("LTE", "DVB-T2"):
        for report in results[app_name]:
            assert report.downtime == 0.0, (app_name, report)
    # Both programs still produce at full rate after four migrations.
    assert results["lte_throughput"] > 0
    assert results["dvb_throughput"] > 0


# -- Megaphone-style tail-latency panel ---------------------------------------

PANEL_RESULT_PATH = os.path.join(_REPO_ROOT, "BENCH_migration.json")

#: Keyed-table sizes (number of keys; ~16 estimated bytes per entry).
PANEL_STATE_SIZES = (4096, 16384, 65536)
#: Fluid batch-size knob values (bytes per migration batch).
PANEL_FLUID_BATCHES = (32768, 65536, 262144)
#: The gated fluid configuration (the CostModel default batch size).
PANEL_GATED_BATCH = 65536
PANEL_HOT_KEYS = 64
PANEL_RECONFIG_AT = 25.0
#: Added latency is measured over this window after the request; every
#: cell's reconfiguration completes well inside it.
PANEL_MEASURE_SECONDS = 90.0
PANEL_GATE_RATIO = 0.25
#: Input rate as a fraction of the old configuration's measured
#: capacity.  The panel runs the source *below* saturation: a system
#: with headroom drains the backlog after each migration pause, so
#: added latency reflects the pause that caused it.  At saturation
#: every pause would lose throughput permanently and all strategies
#: would accumulate the same cumulative delay regardless of batching —
#: bounded-batch migration only helps a system that can catch up,
#: which is Megaphone's operating point.
PANEL_INPUT_FRACTION = 0.65


def _panel_cost_model(fluid_batch_bytes):
    """The integration-scale model plus a per-byte snapshot cost, so a
    one-shot state capture of a large table visibly stalls the blob —
    the effect Figure 14b measures and fluid migration bounds."""
    from repro.compiler.cost_model import CostModel
    return dataclasses.replace(
        CostModel().scaled(node_speed=2_500.0, interp_slowdown=8.0,
                           init_iterations=2.5),
        snapshot_seconds_per_byte=2e-6,
        fluid_batch_bytes=float(fluid_batch_bytes),
        fluid_batch_lead=0.5,
    )


def _added_latency_percentiles(app, start, end, steady_rate):
    """Per-item latency added by the reconfiguration, in seconds.

    Each item emitted in ``[start, end)`` has an *ideal* emission time
    extrapolated from the pre-reconfiguration steady rate; its added
    latency is how far behind that schedule it actually appeared.
    Items queued behind a migration stall all count (not just the
    first emission after the gap), which is what makes this a tail
    metric: p99 reflects how many items a stall delayed and by how
    much.  Once the new configuration catches up, added latency
    returns to zero.
    """
    delays = []
    emitted = 0
    for at, count in app.series.events():
        if at >= end:
            break
        if at < start:
            continue
        for _ in range(count):
            emitted += 1
            ideal = start + emitted / steady_rate
            delays.append(max(0.0, at - ideal))
    if not delays:
        return 0, 0.0, 0.0, 0.0
    ordered = sorted(delays)
    p50 = ordered[len(ordered) // 2]
    p99 = ordered[min(len(ordered) - 1, int(len(ordered) * 0.99))]
    return len(ordered), p50, p99, ordered[-1]


def _panel_capacity(n_keys):
    """Measured saturated output rate of the old (two-node)
    configuration, used to place the panel's input rate below it."""
    from repro import Cluster, StreamApp, partition_even
    from repro.apps import get_app

    spec = get_app("KeyedAggregate")
    blueprint = spec.blueprint(scale=1, n_keys=n_keys,
                               hot_keys=PANEL_HOT_KEYS)
    cluster = Cluster(n_nodes=3, cores_per_node=4,
                      cost_model=_panel_cost_model(PANEL_GATED_BATCH))
    app = StreamApp(cluster, blueprint, input_fn=spec.input_fn,
                    name="keyed-calibrate", collect_output=True)
    app.launch(partition_even(blueprint(), [0, 1], multiplier=4, name="A"))
    cluster.run(until=PANEL_RECONFIG_AT)
    if app.current is None or app.current.status != "running":
        raise SystemExit("FAIL: panel calibration at %d keys never reached "
                         "steady state" % n_keys)
    rate = app.series.items_between(10.0, PANEL_RECONFIG_AT) / (
        PANEL_RECONFIG_AT - 10.0)
    if rate <= 0:
        raise SystemExit("FAIL: panel calibration at %d keys produced no "
                         "output" % n_keys)
    return rate


def _run_panel_cell(n_keys, strategy, fluid_batch_bytes, input_rate):
    from repro import Cluster, StreamApp, partition_even
    from repro.apps import get_app

    spec = get_app("KeyedAggregate")
    blueprint = spec.blueprint(scale=1, n_keys=n_keys,
                               hot_keys=PANEL_HOT_KEYS)
    cluster = Cluster(n_nodes=3, cores_per_node=4,
                      cost_model=_panel_cost_model(fluid_batch_bytes))
    app = StreamApp(cluster, blueprint, input_fn=spec.input_fn,
                    name="keyed-panel", collect_output=True,
                    input_rate=input_rate)
    app.launch(partition_even(blueprint(), [0, 1], multiplier=4, name="A"))
    cluster.run(until=PANEL_RECONFIG_AT)
    if app.current is None or app.current.status != "running":
        raise SystemExit("FAIL: panel cell %d/%s never reached steady state"
                         % (n_keys, strategy))

    steady_items = app.series.items_between(10.0, PANEL_RECONFIG_AT)
    steady_rate = steady_items / (PANEL_RECONFIG_AT - 10.0)
    if steady_rate <= 0:
        raise SystemExit("FAIL: panel cell %d/%s has no steady output"
                         % (n_keys, strategy))

    done = app.reconfigure(
        partition_even(blueprint(), [0, 1, 2], multiplier=4, name="B"),
        strategy=strategy)
    end = PANEL_RECONFIG_AT + PANEL_MEASURE_SECONDS
    cluster.run(until=end + 10.0)
    if not (done.triggered and done.ok):
        raise SystemExit("FAIL: panel cell %d/%s did not complete: %r"
                         % (n_keys, strategy, getattr(done, "value", None)))

    items, p50, p99, worst = _added_latency_percentiles(
        app, PANEL_RECONFIG_AT, end, steady_rate)
    report = app.reconfigurations[-1]
    return {
        "n_keys": n_keys,
        "strategy": strategy,
        "fluid_batch_bytes": (fluid_batch_bytes if strategy == "fluid"
                              else None),
        "state_bytes": report.state_bytes,
        "migration_batches": report.migration_batches,
        "items_measured": items,
        "added_latency_p50": p50,
        "added_latency_p99": p99,
        "added_latency_max": worst,
    }


def run_panel():
    cells = []
    rates = {}
    for n_keys in PANEL_STATE_SIZES:
        capacity = _panel_capacity(n_keys)
        input_rate = PANEL_INPUT_FRACTION * capacity
        rates[n_keys] = input_rate
        print("panel: %6d keys  capacity=%.0f items/s, driving at %.0f"
              % (n_keys, capacity, input_rate))
        for strategy in ("stop_and_copy", "adaptive"):
            print("panel: %6d keys  %-13s ..." % (n_keys, strategy), end=" ")
            cell = _run_panel_cell(n_keys, strategy, PANEL_GATED_BATCH,
                                   input_rate)
            print("p50=%.3fs p99=%.3fs" % (cell["added_latency_p50"],
                                           cell["added_latency_p99"]))
            cells.append(cell)
        for batch in PANEL_FLUID_BATCHES:
            print("panel: %6d keys  fluid@%-7d ..." % (n_keys, batch),
                  end=" ")
            cell = _run_panel_cell(n_keys, "fluid", batch, input_rate)
            print("p50=%.3fs p99=%.3fs batches=%s"
                  % (cell["added_latency_p50"], cell["added_latency_p99"],
                     cell["migration_batches"]))
            cells.append(cell)
    return {
        "state_sizes": list(PANEL_STATE_SIZES),
        "fluid_batch_sizes": list(PANEL_FLUID_BATCHES),
        "gated_batch_bytes": PANEL_GATED_BATCH,
        "gate_ratio": PANEL_GATE_RATIO,
        "input_fraction": PANEL_INPUT_FRACTION,
        "input_rates": rates,
        "cells": cells,
    }


def _cell(result, n_keys, strategy, batch=None):
    for cell in result["cells"]:
        if (cell["n_keys"] == n_keys and cell["strategy"] == strategy
                and (batch is None or cell["fluid_batch_bytes"] == batch)):
            return cell
    raise KeyError((n_keys, strategy, batch))


def gate_panel(result):
    """Fluid must beat both one-shot strategies on p99 added latency
    at the largest state size, the stop-and-copy margin by 4x."""
    largest = max(result["state_sizes"])
    snc = _cell(result, largest, "stop_and_copy")
    adaptive = _cell(result, largest, "adaptive")
    fluid = _cell(result, largest, "fluid", result["gated_batch_bytes"])
    limit = result["gate_ratio"] * snc["added_latency_p99"]
    failures = []
    print("gate migration-p99 @%d keys: fluid=%.3fs stop_and_copy=%.3fs "
          "limit=%.3fs adaptive=%.3fs"
          % (largest, fluid["added_latency_p99"], snc["added_latency_p99"],
             limit, adaptive["added_latency_p99"]))
    if fluid["added_latency_p99"] > limit:
        failures.append(
            "bench_fig15_migration[panel-p99-vs-stop-and-copy]: fluid p99 "
            "added latency %.3fs exceeds %.3fs (%d%% of stop-and-copy's "
            "%.3fs) at %d keys"
            % (fluid["added_latency_p99"], limit,
               int(result["gate_ratio"] * 100), snc["added_latency_p99"],
               largest))
    if fluid["added_latency_p99"] >= adaptive["added_latency_p99"]:
        failures.append(
            "bench_fig15_migration[panel-p99-vs-adaptive]: fluid p99 added "
            "latency %.3fs is not below adaptive's %.3fs at %d keys"
            % (fluid["added_latency_p99"], adaptive["added_latency_p99"],
               largest))
    return failures


def _panel_summary_rows(result):
    rows = []
    for cell in result["cells"]:
        label = cell["strategy"]
        if cell["strategy"] == "fluid":
            label = "fluid (%d KiB)" % (cell["fluid_batch_bytes"] // 1024)
        rows.append((cell["n_keys"], label,
                     "%.3f" % cell["added_latency_p50"],
                     "%.3f" % cell["added_latency_p99"],
                     cell["migration_batches"] or "-"))
    return rows


def main(argv=None):
    from benchmarks.ci_summary import markdown_table, write_step_summary

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--panel", action="store_true",
                        help="run the tail-latency panel (the pytest "
                             "entry point runs the figure 15 experiment)")
    parser.add_argument("--no-gate", action="store_true",
                        help="measure and write JSON without gating")
    parser.add_argument("--output", default=PANEL_RESULT_PATH,
                        help="panel JSON path (default: %s)"
                             % PANEL_RESULT_PATH)
    args = parser.parse_args(argv)
    if not args.panel:
        parser.error("this entry point only runs with --panel; "
                     "the figure 15 experiment runs under pytest")

    result = run_panel()
    with open(args.output, "w") as handle:
        json.dump(result, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print("wrote %s" % args.output)

    if write_step_summary(
            "### Migration tail latency (added seconds per item)\n\n"
            + markdown_table(
                ("keys", "strategy", "p50", "p99", "batches"),
                _panel_summary_rows(result))):
        print("step summary updated")

    if args.no_gate:
        return 0
    failures = gate_panel(result)
    if failures:
        for failure in failures:
            print("FAIL:", failure, file=sys.stderr)
        return 1
    print("migration panel passed")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
