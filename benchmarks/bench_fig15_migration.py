"""Figure 15: whole-program migration of the real-world applications.

Paper (Section 9.8): the LTE-A transceiver and the DVB-T2 receiver run
on a single node and are repeatedly migrated, program and all, to a
new node — with no downtime.  DVB-T2's output is inherently bursty
because of its very high peek/pop rates.
"""

from benchmarks.conftest import run_experiment
from repro.experiments import format_rows, make_experiment_app, write_result

MIGRATIONS = 4


def _migrate_repeatedly(app_name, bucket=1.0, **kwargs):
    experiment = make_experiment_app(
        app_name, n_nodes=MIGRATIONS + 1, initial_nodes=[0], **kwargs)
    reports = []
    for step in range(MIGRATIONS):
        target_node = step + 1
        config = experiment.config([target_node],
                                   name="cfg%d@node%d" % (step + 2,
                                                          target_node))
        start, _ = experiment.reconfigure_and_run(config, "adaptive",
                                                  settle=75.0)
        # DVB-T2's output is inherently bursty, so downtime is judged
        # at a granularity above its burst period (the paper likewise
        # notes the bursts are "inherent to the application").
        reports.append(experiment.app.analyze(start, start + 75.0,
                                              bucket=bucket))
    return experiment, reports


def _run():
    lte_experiment, lte_reports = _migrate_repeatedly("LTE", scale=2)
    # DVB-T2 ingests a live off-air signal: its very high pop rate
    # (192 inputs per 32 outputs) against a fixed arrival rate makes
    # it emit in ~2 s bursts (paper Section 9.8).
    dvb_experiment, dvb_reports = _migrate_repeatedly(
        "DVB-T2", scale=2, multiplier=4, bucket=4.0,
        input_rate=4 * 192 / 2.0)
    # Burstiness of DVB-T2: largest inter-emission gap at steady state.
    events = dvb_experiment.app.series.events()
    steady = [t for t, _ in events if t > dvb_experiment.env.now - 30.0]
    gaps = [b - a for a, b in zip(steady, steady[1:])]
    return {
        "LTE": lte_reports,
        "DVB-T2": dvb_reports,
        "dvb_max_gap": max(gaps) if gaps else 0.0,
        "lte_throughput": lte_experiment.throughput_between(
            lte_experiment.env.now - 30.0, lte_experiment.env.now),
        "dvb_throughput": dvb_experiment.throughput_between(
            dvb_experiment.env.now - 30.0, dvb_experiment.env.now),
    }


def test_fig15_full_program_migration(benchmark):
    results = run_experiment(benchmark, _run)
    rows = []
    for app_name in ("LTE", "DVB-T2"):
        for i, report in enumerate(results[app_name]):
            rows.append((app_name, "migration %d" % (i + 1),
                         "%.1f" % report.downtime,
                         "%.1f" % report.disrupted_time))
    rows.append(("DVB-T2", "max output gap (burstiness)",
                 "%.2fs" % results["dvb_max_gap"], ""))
    # The bursty-output property (paper: a burst every ~2 s).
    assert results["dvb_max_gap"] > 1.0
    write_result("fig15_migration", format_rows(
        ("application", "event", "downtime (s)", "disrupted (s)"), rows,
        title="Figure 15: single-node whole-program migration, %d hops"
              % MIGRATIONS))
    for app_name in ("LTE", "DVB-T2"):
        for report in results[app_name]:
            assert report.downtime == 0.0, (app_name, report)
    # Both programs still produce at full rate after four migrations.
    assert results["lte_throughput"] > 0
    assert results["dvb_throughput"] > 0
