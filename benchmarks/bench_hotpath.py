"""Hot-path benchmark: fused steady-state firing, compile caching,
codegen and multi-core blob execution.

Per-application measurements (every registered app):

1. **Steady-state firing throughput** — firings/sec of the canonical
   per-firing interpreter loop vs the :class:`FusedPlan` fast path.
   The headline mode is ``rate_only`` (what the timing experiments
   run); functional mode (real work functions, ``check_rates=False``)
   is reported as a secondary column.
2. **Vectorized backend throughput** — scalar fused vs vectorized
   fused, both at a boosted schedule multiplier so each batch kernel
   call covers hundreds of firings (the regime the backend exists
   for; at multiplicity 1 a batch call degenerates to one firing).
3. **Codegen backend throughput** — vectorized step dispatch vs the
   generated per-blob kernel at a *small* multiplier (the
   dispatch-bound regime codegen targets; at huge batch sizes the
   NumPy work dominates and the two backends converge).
4. **Cold vs warm compilation** — wall time of
   :func:`plan_configuration` with an empty
   :class:`CompilationCache` (miss: schedule + pseudo-blob
   construction) vs a primed one (hit: rehydration only).

Whole-run measurements:

5. **Parallel self-speedup** — a 4-stage FIR pipeline split into 4
   blobs on the :class:`ParallelBlobExecutor`, 1 thread vs 4 threads.
   Gated only when the machine actually has >= 4 cores (recorded in
   the JSON either way).
6. **Process self-speedup** — the same 4-blob FIR pipeline on the
   :class:`ProcessBlobExecutor`, 1 process vs 4 forked processes over
   shared-memory rings, after a byte-identity check against the
   scalar oracle.  Gated >= 2.5x only on >= 4 cores.
7. **Thread vs process on GIL-bound work** — a pipeline whose batch
   kernels are pure-Python loops (the GIL never drops), 4 threads vs
   4 processes.  Threads serialize here by construction; processes
   must win.  Gated only on >= 4 cores.
8. **Cython emission tier** — the generated kernel compiled as a C
   extension (``backend="cython"``) vs the generated-Python backend,
   after a byte-identity check.  Reported, never gated: the row
   records requested vs actual backend, and on runners without the
   toolchain the actual backend is the silent python fallback.

Every steady-state tier is timed through :func:`_measure_steady`,
which grows the iteration count until a single measured rep lasts at
least ``MIN_REP_SECONDS`` — a floor on measured duration, so no tier
ever reports numbers from a 2-iteration rep of timer noise.

Writes ``BENCH_hotpath.json`` at the repo root and gates the targets:

* fused speedup >= 2x on Synthetic (rate-only),
* geomean fused speedup >= 1.5x across all apps (rate-only),
* vectorized speedup >= 5x over scalar fused on Synthetic,
* geomean vectorized speedup >= 3x across the numeric apps,
* codegen speedup >= 1.5x over vectorized on Synthetic,
* geomean codegen speedup >= 1.2x across the numeric apps,
* parallel self-speedup >= 2x on the 4-blob pipeline (when >= 4 cores),
* process self-speedup >= 2.5x on the 4-blob pipeline (when >= 4 cores),
* process >= 1.2x over threads on the GIL-bound pipeline (when >= 4
  cores),
* warm phase-1 time <= 10% of cold, averaged across apps.

Usage::

    python benchmarks/bench_hotpath.py            # run + gate
    python benchmarks/bench_hotpath.py --no-gate  # measure only
"""

import argparse
import json
import math
import os
import sys
import time

_REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
for _path in (_REPO_ROOT, os.path.join(_REPO_ROOT, "src")):
    if _path not in sys.path:
        sys.path.insert(0, _path)

from repro.apps import app_registry  # noqa: E402
from repro.compiler.cache import (  # noqa: E402
    CompilationCache,
    stamp_structure_key,
    structure_key,
)
from repro.compiler.cost_model import CostModel  # noqa: E402
from repro.compiler.partition import partition_even  # noqa: E402
from repro.compiler.two_phase import plan_configuration  # noqa: E402
from repro.graph.builders import Pipeline  # noqa: E402
from repro.graph.library import FIRFilter, ScaleFilter  # noqa: E402
from repro.runtime.codegen import cython_available  # noqa: E402
from repro.runtime.interpreter import GraphInterpreter  # noqa: E402
from repro.runtime.parallel import ParallelBlobExecutor  # noqa: E402
from repro.runtime.procexec import (  # noqa: E402
    ProcessBlobExecutor,
    process_executor_available,
)
from repro.sched.schedule import make_schedule  # noqa: E402

RESULT_PATH = os.path.join(_REPO_ROOT, "BENCH_hotpath.json")

SCALE = 2
REPS = 5
COMPILE_REPS = 7
WARM_BATCH = 20
TARGET_REP_SECONDS = 0.15
#: Floor on each measured steady-state rep: the iteration count grows
#: until one rep lasts at least this long (fixes tiers that previously
#: measured 2 iterations on the slow apps — pure timer noise).
MIN_REP_SECONDS = 0.05
MAX_STEADY_ITERATIONS = 20000
GATE_SYNTHETIC_SPEEDUP = 2.0
GATE_GEOMEAN_SPEEDUP = 1.5
GATE_WARM_COLD_RATIO = 0.10

#: Schedule multiplier for the vectorized tier: each steady iteration
#: fires every worker repetitions x this many times, so one batch call
#: covers hundreds of firings.
VECTOR_MULTIPLIER = 256
#: Schedule multiplier for the codegen tier: small on purpose — the
#: generated kernel removes per-step dispatch, which only matters when
#: batches are small enough that dispatch is a real fraction of the
#: iteration.
CODEGEN_MULTIPLIER = 8
#: Apps whose hot loops are dominated by numeric per-item work (the
#: workloads the vectorized backend targets); the geomean gates run
#: over these.  The remaining apps are measured and reported too.
NUMERIC_APPS = ("BeamFormer", "FMRadio", "FilterBank", "Synthetic")
GATE_VECTOR_SYNTHETIC_SPEEDUP = 5.0
GATE_VECTOR_GEOMEAN_SPEEDUP = 3.0
GATE_CODEGEN_SYNTHETIC_SPEEDUP = 1.5
GATE_CODEGEN_GEOMEAN_SPEEDUP = 1.2

#: Parallel tier: a pipeline of PARALLEL_STAGES x PARALLEL_FIRS FIR
#: filters split into PARALLEL_BLOBS topologically contiguous blobs.
#: Each FIR batch call is TAPS GIL-releasing NumPy accumulations, so
#: pipeline blobs genuinely overlap on real cores.
PARALLEL_STAGES = 4
PARALLEL_FIRS = 3
PARALLEL_TAPS = 32
PARALLEL_BLOBS = 4
PARALLEL_THREADS = 4
PARALLEL_MULTIPLIER = 2048
GATE_PARALLEL_SELF_SPEEDUP = 2.0
GATE_PROCESS_SELF_SPEEDUP = 2.5

#: GIL-bound tier: a pipeline of pure-Python batch kernels split over
#: SCALAR_WORKERS workers in PARALLEL_BLOBS blobs.  Each batch call
#: runs GIL_ROUNDS Python-level float operations per item, so threads
#: serialize on the GIL while processes overlap on real cores.
SCALAR_WORKERS = 8
SCALAR_MULTIPLIER = 512
GIL_ROUNDS = 24
GATE_PROCESS_OVER_THREAD = 1.2

#: Identity-check run length (steady iterations) for the process and
#: cython tiers: output and captured state must match the scalar
#: oracle byte for byte before any timing is trusted.
IDENTITY_ITERATIONS = 3


def _provision(interp, input_fn, iterations):
    """Buffer enough graph input for init plus ``iterations`` steady
    iterations (plus the head worker's peek-beyond-pop margin)."""
    head = interp.graph.head
    head_extra = (max(head.peek_rates[0] - head.pop_rates[0], 0)
                  if head is not None and head.n_inputs else 0)
    needed = (interp.schedule.init_in + head_extra
              + interp.schedule.steady_in * iterations + 64)
    if input_fn is None:
        interp.push_input([None] * needed)
    else:
        interp.push_input([input_fn(i) for i in range(needed)])


def _steady_per_firing(interp, iterations):
    """The pre-fused steady loop: one firing at a time, in order."""
    order = interp.schedule.firing_order()
    fire = interp.fire
    for _ in range(iterations):
        for worker_id, firings in order:
            for _ in range(firings):
                fire(worker_id)


def _measure_steady(build, input_fn, expect_mode=None):
    """Best-of-REPS per-steady-iteration wall time with a duration floor.

    Grows the iteration count (doubling, then jumping to the estimate)
    until one measured rep lasts at least MIN_REP_SECONDS, then takes
    the best of REPS reps at that count.  Returns
    ``(seconds_per_iteration, iterations_per_rep, engine)``.
    """
    interp = build()
    _provision(interp, input_fn, 2)
    interp.run_init()
    interp.run_steady(1)  # plan built + validated outside the timing
    if expect_mode is not None:
        assert interp._fused.mode == expect_mode, interp._fused.mode
    iterations = 1
    while True:
        _provision(interp, input_fn, iterations)
        start = time.perf_counter()
        interp.run_steady(iterations)
        elapsed = time.perf_counter() - start
        if elapsed >= MIN_REP_SECONDS or iterations >= MAX_STEADY_ITERATIONS:
            break
        per = max(elapsed / iterations, 1e-9)
        iterations = min(max(iterations * 2,
                             int(MIN_REP_SECONDS / per) + 1),
                         MAX_STEADY_ITERATIONS)
    best = elapsed
    for _ in range(REPS - 1):
        _provision(interp, input_fn, iterations)
        start = time.perf_counter()
        interp.run_steady(iterations)
        best = min(best, time.perf_counter() - start)
    return best / iterations, iterations, interp


def _calibrate_iterations(blueprint, input_fn, rate_only):
    """Iterations per timed rep so a rep lasts ~TARGET_REP_SECONDS."""
    interp = GraphInterpreter(blueprint(), check_rates=False,
                              rate_only=rate_only)
    _provision(interp, input_fn, 4)
    interp.run_init()
    start = time.perf_counter()
    _steady_per_firing(interp, 4)
    per_iteration = max((time.perf_counter() - start) / 4, 1e-7)
    return max(3, min(int(TARGET_REP_SECONDS / per_iteration), 2000))


def _bench_firing_mode(spec, rate_only):
    """Best-of-REPS firings/sec, per-firing baseline vs fused."""
    blueprint = spec.blueprint(scale=SCALE)
    input_fn = None if rate_only else spec.input_fn
    iterations = _calibrate_iterations(blueprint, input_fn, rate_only)

    baseline = GraphInterpreter(blueprint(), check_rates=False,
                                rate_only=rate_only)
    _provision(baseline, input_fn, iterations * REPS)
    baseline.run_init()
    base_best = float("inf")
    for _ in range(REPS):
        start = time.perf_counter()
        _steady_per_firing(baseline, iterations)
        base_best = min(base_best, time.perf_counter() - start)

    fused = GraphInterpreter(blueprint(), check_rates=False,
                             rate_only=rate_only)
    _provision(fused, input_fn, iterations * REPS + 1)
    fused.run_init()
    fused.run_steady(1)  # build + validate the plan outside the timing
    fused_best = float("inf")
    for _ in range(REPS):
        start = time.perf_counter()
        fused.run_steady(iterations)
        fused_best = min(fused_best, time.perf_counter() - start)

    firings = sum(f for _, f in baseline.schedule.firing_order())
    return {
        "iterations_per_rep": iterations,
        "firings_per_iteration": firings,
        "interp_firings_per_sec": firings * iterations / base_best,
        "fused_firings_per_sec": firings * iterations / fused_best,
        "speedup": base_best / fused_best,
    }


def _bench_vectorized(spec):
    """Scalar-fused vs vectorized-fused at a boosted schedule
    multiplier (real data, ``check_rates=False``), floor-timed."""
    blueprint = spec.blueprint(scale=SCALE)
    input_fn = spec.input_fn

    def build(vectorize):
        def make():
            graph = blueprint()
            schedule = make_schedule(graph, multiplier=VECTOR_MULTIPLIER)
            return GraphInterpreter(graph, schedule=schedule,
                                    check_rates=False, vectorize=vectorize)
        return make

    scalar_per, scalar_iters, probe = _measure_steady(
        build(False), input_fn, expect_mode="scalar")
    vector_per, vector_iters, _ = _measure_steady(
        build(True), input_fn, expect_mode="vectorized")

    firings = sum(f for _, f in probe.schedule.firing_order())
    return {
        "multiplier": VECTOR_MULTIPLIER,
        "iterations_per_rep": {"scalar": scalar_iters,
                               "vectorized": vector_iters},
        "firings_per_iteration": firings,
        "scalar_firings_per_sec": firings / scalar_per,
        "vectorized_firings_per_sec": firings / vector_per,
        "speedup": scalar_per / vector_per,
    }


def _bench_codegen(spec):
    """Vectorized step dispatch vs the generated per-blob kernel at a
    small-batch multiplier, floor-timed."""
    blueprint = spec.blueprint(scale=SCALE)
    input_fn = spec.input_fn

    def build(codegen):
        def make():
            graph = blueprint()
            schedule = make_schedule(graph, multiplier=CODEGEN_MULTIPLIER)
            return GraphInterpreter(graph, schedule=schedule,
                                    check_rates=False, vectorize=True,
                                    codegen=codegen)
        return make

    vector_per, vector_iters, _ = _measure_steady(
        build(False), input_fn, expect_mode="vectorized")
    codegen_per, codegen_iters, interp = _measure_steady(
        build(True), input_fn, expect_mode="codegen")

    plan = interp._fused
    assert plan.codegen_error is None, plan.codegen_error
    kernel = plan._codegen
    # Scalar fallbacks appear exactly where batch kernels are absent.
    expected_fallbacks = sum(
        1 for worker in interp.graph.workers
        if not worker.supports_work_batch)
    assert kernel.fallback_steps == expected_fallbacks, \
        (kernel.fallback_steps, expected_fallbacks)

    firings = sum(f for _, f in interp.schedule.firing_order())
    return {
        "multiplier": CODEGEN_MULTIPLIER,
        "iterations_per_rep": {"vectorized": vector_iters,
                               "codegen": codegen_iters},
        "firings_per_iteration": firings,
        "backend": kernel.backend,
        "fallback_steps": kernel.fallback_steps,
        "vectorized_firings_per_sec": firings / vector_per,
        "codegen_firings_per_sec": firings / codegen_per,
        "speedup": vector_per / codegen_per,
    }


def _parallel_blueprint():
    stages = []
    for stage in range(PARALLEL_STAGES):
        for fir in range(PARALLEL_FIRS):
            stages.append(FIRFilter([1.0 / PARALLEL_TAPS] * PARALLEL_TAPS,
                                    name="fir%d_%d" % (stage, fir)))
    return Pipeline(*stages).flatten()


def _parallel_input(i):
    return math.sin(i * 0.01)


def _bench_parallel():
    """Self-speedup of the parallel blob executor: the 4-blob FIR
    pipeline with 1 thread vs PARALLEL_THREADS threads."""
    def build(threads):
        def make():
            graph = _parallel_blueprint()
            schedule = make_schedule(graph, multiplier=PARALLEL_MULTIPLIER)
            topo = list(graph.topological_order())
            size = len(topo) // PARALLEL_BLOBS
            partition = [topo[i * size:(i + 1) * size]
                         for i in range(PARALLEL_BLOBS)]
            partition[-1].extend(topo[PARALLEL_BLOBS * size:])
            return ParallelBlobExecutor(graph, partition, schedule=schedule,
                                        threads=threads)
        return make

    serial_per, serial_iters, _ = _measure_steady(
        build(1), _parallel_input)
    parallel_per, parallel_iters, _ = _measure_steady(
        build(PARALLEL_THREADS), _parallel_input)

    cpu_count = os.cpu_count() or 1
    return {
        "blobs": PARALLEL_BLOBS,
        "threads": PARALLEL_THREADS,
        "multiplier": PARALLEL_MULTIPLIER,
        "stages": PARALLEL_STAGES,
        "firs_per_stage": PARALLEL_FIRS,
        "taps": PARALLEL_TAPS,
        "cpu_count": cpu_count,
        "gated": cpu_count >= PARALLEL_THREADS,
        "iterations_per_rep": {"serial": serial_iters,
                               "parallel": parallel_iters},
        "serial_iteration_ms": serial_per * 1e3,
        "parallel_iteration_ms": parallel_per * 1e3,
        "self_speedup": serial_per / parallel_per,
    }


def _blocked_partition(graph, n_blobs):
    topo = list(graph.topological_order())
    size = len(topo) // n_blobs
    partition = [topo[i * size:(i + 1) * size] for i in range(n_blobs)]
    partition[-1].extend(topo[n_blobs * size:])
    return partition


def _assert_identical_to_oracle(build_executor, blueprint, input_fn,
                                label):
    """run_on byte-identity against the scalar rate-checked oracle."""
    graph = blueprint()
    schedule = make_schedule(graph)
    head = graph.head
    head_extra = max(head.peek_rates[0] - head.pop_rates[0], 0)
    n = (schedule.init_in + IDENTITY_ITERATIONS * schedule.steady_in
         + head_extra)
    items = [input_fn(i) for i in range(n)]
    expected = GraphInterpreter(blueprint(), check_rates=True).run_on(
        list(items))
    executor = build_executor(graph, schedule)
    try:
        got = executor.run_on(list(items))
    finally:
        close = getattr(executor, "close", None)
        if close is not None:
            close()
    assert got == expected, \
        "%s output diverged from the scalar oracle" % label


def _bench_process():
    """Self-speedup of the process executor: the same 4-blob FIR
    pipeline, 1 process vs PARALLEL_THREADS forked processes over
    shared-memory rings — after a byte-identity oracle check."""
    _assert_identical_to_oracle(
        lambda graph, schedule: ProcessBlobExecutor(
            graph, _blocked_partition(graph, PARALLEL_BLOBS),
            schedule=schedule, processes=PARALLEL_THREADS),
        _parallel_blueprint, _parallel_input, "process executor")

    executors = []

    def build(processes):
        def make():
            graph = _parallel_blueprint()
            schedule = make_schedule(graph, multiplier=PARALLEL_MULTIPLIER)
            executor = ProcessBlobExecutor(
                graph, _blocked_partition(graph, PARALLEL_BLOBS),
                schedule=schedule, processes=processes)
            executors.append(executor)
            return executor
        return make

    try:
        serial_per, serial_iters, _ = _measure_steady(
            build(1), _parallel_input)
        process_per, process_iters, _ = _measure_steady(
            build(PARALLEL_THREADS), _parallel_input)
    finally:
        for executor in executors:
            executor.close()

    cpu_count = os.cpu_count() or 1
    return {
        "blobs": PARALLEL_BLOBS,
        "processes": PARALLEL_THREADS,
        "multiplier": PARALLEL_MULTIPLIER,
        "cpu_count": cpu_count,
        "gated": cpu_count >= PARALLEL_THREADS,
        "iterations_per_rep": {"serial": serial_iters,
                               "process": process_iters},
        "serial_iteration_ms": serial_per * 1e3,
        "process_iteration_ms": process_per * 1e3,
        "self_speedup": serial_per / process_per,
    }


class GILBoundScale(ScaleFilter):
    """A scale filter whose batch kernel is a pure-Python loop: it
    never releases the GIL, so thread-level blob parallelism gains
    nothing while process-level parallelism still scales.  The output
    is exactly ``item * factor`` — identical to :meth:`work` — so the
    oracle identity check still holds."""

    def work_batch(self, inputs, outputs, n_firings) -> None:
        data = inputs[0]
        out = outputs[0]
        factor = self.factor
        waste = 0.0
        for i in range(n_firings):
            x = float(data[i])
            for _ in range(GIL_ROUNDS):
                waste += x * 1e-9
            out[i] = x * factor


def _scalar_blueprint():
    return Pipeline(*[GILBoundScale(1.0 + 0.001 * i, name="pyscale%d" % i)
                      for i in range(SCALAR_WORKERS)]).flatten()


def _bench_scalar_parallel():
    """Thread pool vs forked processes on GIL-bound batch kernels.

    Both executors get PARALLEL_THREADS workers over the same
    PARALLEL_BLOBS-blob partition of the pure-Python pipeline; the
    ratio is the number the backend-selection table in the README is
    built on."""
    _assert_identical_to_oracle(
        lambda graph, schedule: ProcessBlobExecutor(
            graph, _blocked_partition(graph, PARALLEL_BLOBS),
            schedule=schedule, processes=PARALLEL_THREADS),
        _scalar_blueprint, _parallel_input, "GIL-bound process executor")

    executors = []

    def build(kind):
        def make():
            graph = _scalar_blueprint()
            schedule = make_schedule(graph, multiplier=SCALAR_MULTIPLIER)
            partition = _blocked_partition(graph, PARALLEL_BLOBS)
            if kind == "thread":
                executor = ParallelBlobExecutor(
                    graph, partition, schedule=schedule,
                    threads=PARALLEL_THREADS)
            else:
                executor = ProcessBlobExecutor(
                    graph, partition, schedule=schedule,
                    processes=PARALLEL_THREADS)
            executors.append(executor)
            return executor
        return make

    try:
        thread_per, thread_iters, _ = _measure_steady(
            build("thread"), _parallel_input)
        process_per, process_iters, _ = _measure_steady(
            build("process"), _parallel_input)
    finally:
        for executor in executors:
            close = getattr(executor, "close", None)
            if close is not None:
                close()

    cpu_count = os.cpu_count() or 1
    return {
        "blobs": PARALLEL_BLOBS,
        "workers": PARALLEL_THREADS,
        "pipeline_workers": SCALAR_WORKERS,
        "multiplier": SCALAR_MULTIPLIER,
        "gil_rounds": GIL_ROUNDS,
        "cpu_count": cpu_count,
        "gated": cpu_count >= PARALLEL_THREADS,
        "iterations_per_rep": {"thread": thread_iters,
                               "process": process_iters},
        "thread_iteration_ms": thread_per * 1e3,
        "process_iteration_ms": process_per * 1e3,
        "process_over_thread": thread_per / process_per,
    }


def _bench_cython():
    """The Cython/C emission tier vs the generated-Python backend.

    Byte-identity first: with ``REPRO_CODEGEN_BACKEND=cython`` the
    interpreter's codegen path must emit exactly the python backend's
    output whether the toolchain is present (compiled module) or not
    (silent fallback).  The timing row records requested vs actual
    backend; it is never gated — on runners without a C toolchain the
    actual backend is "python" and the speedup is 1x by construction.
    """
    spec = app_registry()["Synthetic"]
    blueprint = spec.blueprint(scale=SCALE)
    input_fn = spec.input_fn
    available = cython_available()

    def build(backend):
        def make():
            previous = os.environ.get("REPRO_CODEGEN_BACKEND")
            os.environ["REPRO_CODEGEN_BACKEND"] = backend
            try:
                graph = blueprint()
                schedule = make_schedule(graph,
                                         multiplier=CODEGEN_MULTIPLIER)
                return GraphInterpreter(graph, schedule=schedule,
                                        check_rates=False, vectorize=True,
                                        codegen=True)
            finally:
                if previous is None:
                    os.environ.pop("REPRO_CODEGEN_BACKEND", None)
                else:
                    os.environ["REPRO_CODEGEN_BACKEND"] = previous
        return make

    def run_once(backend):
        interp = build(backend)()
        _provision(interp, input_fn, 1 + IDENTITY_ITERATIONS)
        interp.run_init()
        interp.run_steady(1 + IDENTITY_ITERATIONS)
        return interp.take_output()

    assert run_once("cython") == run_once("python"), \
        "cython backend output diverged from the python backend"

    python_per, python_iters, _ = _measure_steady(
        build("python"), input_fn, expect_mode="codegen")
    cython_per, cython_iters, interp = _measure_steady(
        build("cython"), input_fn, expect_mode="codegen")
    actual = interp._fused._codegen.backend

    return {
        "available": available,
        "requested": "cython",
        "actual": actual,
        "multiplier": CODEGEN_MULTIPLIER,
        "iterations_per_rep": {"python": python_iters,
                               "cython": cython_iters},
        "python_iteration_ms": python_per * 1e3,
        "cython_iteration_ms": cython_per * 1e3,
        "speedup": python_per / cython_per,
    }


def _bench_compile(spec, n_blobs=4):
    """Median cold vs best warm plan_configuration wall time (ms).

    Cold models the first-ever compile (empty cache, structure key
    derived from scratch).  Warm models every later compile in a live
    app: :meth:`StreamApp.fresh_graph` stamps the blueprint's known
    structure key onto each rebuild, so the benchmark does the same.
    """
    blueprint = spec.blueprint(scale=SCALE)
    probe = blueprint()
    configuration = partition_even(probe, range(n_blobs), name="bench")
    cost_model = CostModel()

    cold_times = []
    for _ in range(COMPILE_REPS):
        cache = CompilationCache()
        graph = blueprint()
        start = time.perf_counter()
        plan_configuration(graph, configuration, cost_model, cache=cache)
        cold_times.append(time.perf_counter() - start)
    cold = sorted(cold_times)[len(cold_times) // 2]

    # Warm hits are tens of microseconds, so they are timed as a batch
    # (and best-of-REPS batches) to keep timer noise out of the ratio.
    cache = CompilationCache()
    key = structure_key(probe)
    plan_configuration(blueprint(), configuration, cost_model, cache=cache)
    warm = float("inf")
    for _ in range(REPS):
        graphs = [blueprint() for _ in range(WARM_BATCH)]
        for graph in graphs:
            stamp_structure_key(graph, key)
        start = time.perf_counter()
        for graph in graphs:
            plan_configuration(graph, configuration, cost_model, cache=cache)
        warm = min(warm, (time.perf_counter() - start) / WARM_BATCH)
    assert cache.plan_hits == REPS * WARM_BATCH, \
        "warm reps must all hit the cache"

    return {
        "cold_ms": cold * 1e3,
        "warm_ms": warm * 1e3,
        "warm_cold_ratio": warm / cold,
    }


def _geomean(values):
    return math.exp(sum(math.log(v) for v in values) / len(values))


def run():
    registry = app_registry()
    apps = {}
    for name in sorted(registry):
        spec = registry[name]
        print("benchmarking %s ..." % name)
        rate_only = _bench_firing_mode(spec, rate_only=True)
        functional = _bench_firing_mode(spec, rate_only=False)
        vectorized = _bench_vectorized(spec)
        codegen = _bench_codegen(spec)
        compile_row = _bench_compile(spec)
        apps[name] = {
            "rate_only": rate_only,
            "functional": functional,
            "vectorized": vectorized,
            "codegen": codegen,
            "compile": compile_row,
        }
        print("  rate-only %.2fx  functional %.2fx  vectorized %.2fx  "
              "codegen %.2fx  warm/cold %.1f%%"
              % (rate_only["speedup"], functional["speedup"],
                 vectorized["speedup"], codegen["speedup"],
                 100.0 * compile_row["warm_cold_ratio"]))

    print("benchmarking parallel self-speedup ...")
    parallel = _bench_parallel()
    print("  %d blobs, %d threads on %d core(s): %.2fx%s"
          % (parallel["blobs"], parallel["threads"], parallel["cpu_count"],
             parallel["self_speedup"],
             "" if parallel["gated"] else "  (not gated: too few cores)"))

    process = None
    scalar = None
    if process_executor_available():
        print("benchmarking process self-speedup ...")
        process = _bench_process()
        print("  %d blobs, %d processes on %d core(s): %.2fx%s"
              % (process["blobs"], process["processes"],
                 process["cpu_count"], process["self_speedup"],
                 "" if process["gated"]
                 else "  (not gated: too few cores)"))
        print("benchmarking thread vs process on GIL-bound kernels ...")
        scalar = _bench_scalar_parallel()
        print("  process over thread: %.2fx%s"
              % (scalar["process_over_thread"],
                 "" if scalar["gated"]
                 else "  (not gated: too few cores)"))
    else:
        print("process executor unavailable (no fork): tier skipped")

    print("benchmarking cython emission tier ...")
    cython = _bench_cython()
    print("  requested=%s actual=%s: %.2fx over the python backend"
          % (cython["requested"], cython["actual"], cython["speedup"]))

    names = sorted(apps)
    summary = {
        "synthetic_rate_only_speedup": apps["Synthetic"]["rate_only"]["speedup"],
        "geomean_rate_only_speedup": _geomean(
            [apps[n]["rate_only"]["speedup"] for n in names]),
        "geomean_functional_speedup": _geomean(
            [apps[n]["functional"]["speedup"] for n in names]),
        "synthetic_vectorized_speedup": (
            apps["Synthetic"]["vectorized"]["speedup"]),
        "geomean_vectorized_numeric_speedup": _geomean(
            [apps[n]["vectorized"]["speedup"] for n in NUMERIC_APPS]),
        "geomean_vectorized_speedup": _geomean(
            [apps[n]["vectorized"]["speedup"] for n in names]),
        "synthetic_codegen_speedup": apps["Synthetic"]["codegen"]["speedup"],
        "geomean_codegen_numeric_speedup": _geomean(
            [apps[n]["codegen"]["speedup"] for n in NUMERIC_APPS]),
        "geomean_codegen_speedup": _geomean(
            [apps[n]["codegen"]["speedup"] for n in names]),
        "parallel_self_speedup": parallel["self_speedup"],
        "parallel_gated": parallel["gated"],
        "cpu_count": parallel["cpu_count"],
        "process_available": process is not None,
        "process_self_speedup": (process["self_speedup"]
                                 if process else None),
        "process_gated": process["gated"] if process else False,
        "process_over_thread": (scalar["process_over_thread"]
                                if scalar else None),
        "process_over_thread_gated": scalar["gated"] if scalar else False,
        "cython_available": cython["available"],
        "cython_backend": cython["actual"],
        "cython_speedup": cython["speedup"],
        "warm_cold_ratio_mean": (
            sum(apps[n]["compile"]["warm_cold_ratio"] for n in names)
            / len(names)),
    }
    return {"scale": SCALE, "apps": apps, "parallel": parallel,
            "process": process, "scalar_parallel": scalar,
            "cython": cython, "summary": summary}


def gate(result):
    summary = result["summary"]
    checks = [
        ("Synthetic rate-only fused speedup",
         summary["synthetic_rate_only_speedup"], ">=", GATE_SYNTHETIC_SPEEDUP),
        ("geomean rate-only fused speedup",
         summary["geomean_rate_only_speedup"], ">=", GATE_GEOMEAN_SPEEDUP),
        ("Synthetic vectorized speedup",
         summary["synthetic_vectorized_speedup"], ">=",
         GATE_VECTOR_SYNTHETIC_SPEEDUP),
        ("geomean vectorized speedup (numeric apps)",
         summary["geomean_vectorized_numeric_speedup"], ">=",
         GATE_VECTOR_GEOMEAN_SPEEDUP),
        ("Synthetic codegen speedup",
         summary["synthetic_codegen_speedup"], ">=",
         GATE_CODEGEN_SYNTHETIC_SPEEDUP),
        ("geomean codegen speedup (numeric apps)",
         summary["geomean_codegen_numeric_speedup"], ">=",
         GATE_CODEGEN_GEOMEAN_SPEEDUP),
        ("mean warm/cold compile ratio",
         summary["warm_cold_ratio_mean"], "<=", GATE_WARM_COLD_RATIO),
    ]
    if summary["parallel_gated"]:
        checks.append(("parallel self-speedup (4 blobs, 4 threads)",
                       summary["parallel_self_speedup"], ">=",
                       GATE_PARALLEL_SELF_SPEEDUP))
    else:
        print("gate %-38s measured=%.3f SKIPPED (%d core(s) < %d threads)"
              % ("parallel self-speedup (4 blobs, 4 threads)",
                 summary["parallel_self_speedup"],
                 summary["cpu_count"], PARALLEL_THREADS))
    if summary["process_gated"]:
        checks.append(("process self-speedup (4 blobs, 4 processes)",
                       summary["process_self_speedup"], ">=",
                       GATE_PROCESS_SELF_SPEEDUP))
    elif summary["process_available"]:
        print("gate %-38s measured=%.3f SKIPPED (%d core(s) < %d processes)"
              % ("process self-speedup (4 blobs, 4 processes)",
                 summary["process_self_speedup"],
                 summary["cpu_count"], PARALLEL_THREADS))
    else:
        print("gate %-38s SKIPPED (fork unavailable)"
              % "process self-speedup (4 blobs, 4 processes)")
    if summary["process_over_thread_gated"]:
        checks.append(("process over thread (GIL-bound kernels)",
                       summary["process_over_thread"], ">=",
                       GATE_PROCESS_OVER_THREAD))
    elif summary["process_available"]:
        print("gate %-38s measured=%.3f SKIPPED (%d core(s) < %d workers)"
              % ("process over thread (GIL-bound kernels)",
                 summary["process_over_thread"],
                 summary["cpu_count"], PARALLEL_THREADS))
    failures = []
    for label, got, op, limit in checks:
        ok = got >= limit if op == ">=" else got <= limit
        print("gate %-38s measured=%.3f %s %.3f %s"
              % (label, got, op, limit, "OK" if ok else "FAIL"))
        if not ok:
            failures.append("%s: %.3f not %s %.3f" % (label, got, op, limit))
    return failures


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--no-gate", action="store_true",
                        help="measure and write JSON without gating")
    parser.add_argument("--output", default=RESULT_PATH,
                        help="result JSON path (default: %s)" % RESULT_PATH)
    args = parser.parse_args(argv)

    result = run()
    with open(args.output, "w") as handle:
        json.dump(result, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print("wrote %s" % args.output)

    from benchmarks.ci_summary import (markdown_table,
                                       thread_vs_process_table,
                                       write_step_summary)
    summary = result["summary"]
    parallel_row = "%.2fx" % summary["parallel_self_speedup"]
    if not summary["parallel_gated"]:
        parallel_row += " (not gated: %d core(s))" % summary["cpu_count"]
    cython_row = "%.2fx (requested cython, ran %s)" % (
        summary["cython_speedup"], summary["cython_backend"])
    write_step_summary(
        "### Thread vs process blob execution (cpu_count=%d)\n\n"
        % summary["cpu_count"]
        + thread_vs_process_table(result["parallel"], result["process"],
                                  result["scalar_parallel"]))
    if write_step_summary(
            "### Hot-path speedups (fused over per-firing interpreter)\n\n"
            + markdown_table(
                ("metric", "value"),
                [("Synthetic rate-only fused",
                  "%.2fx" % summary["synthetic_rate_only_speedup"]),
                 ("geomean rate-only fused (all apps)",
                  "%.2fx" % summary["geomean_rate_only_speedup"]),
                 ("geomean functional fused",
                  "%.2fx" % summary["geomean_functional_speedup"]),
                 ("Synthetic vectorized over scalar fused",
                  "%.2fx" % summary["synthetic_vectorized_speedup"]),
                 ("geomean vectorized (numeric apps)",
                  "%.2fx" % summary["geomean_vectorized_numeric_speedup"]),
                 ("Synthetic codegen over vectorized",
                  "%.2fx" % summary["synthetic_codegen_speedup"]),
                 ("geomean codegen (numeric apps)",
                  "%.2fx" % summary["geomean_codegen_numeric_speedup"]),
                 ("parallel self-speedup (4 blobs / 4 threads)",
                  parallel_row),
                 ("cython codegen over python codegen", cython_row),
                 ("mean warm/cold compile ratio",
                  "%.1f%%" % (100 * summary["warm_cold_ratio_mean"]))])):
        print("step summary updated")

    if args.no_gate:
        return 0
    failures = gate(result)
    if failures:
        for failure in failures:
            print("FAIL:", failure, file=sys.stderr)
        return 1
    print("hot-path benchmark passed")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
