"""Hot-path benchmark: fused steady-state firing, compile caching,
codegen and multi-core blob execution.

Per-application measurements (every registered app):

1. **Steady-state firing throughput** — firings/sec of the canonical
   per-firing interpreter loop vs the :class:`FusedPlan` fast path.
   The headline mode is ``rate_only`` (what the timing experiments
   run); functional mode (real work functions, ``check_rates=False``)
   is reported as a secondary column.
2. **Vectorized backend throughput** — scalar fused vs vectorized
   fused, both at a boosted schedule multiplier so each batch kernel
   call covers hundreds of firings (the regime the backend exists
   for; at multiplicity 1 a batch call degenerates to one firing).
3. **Codegen backend throughput** — vectorized step dispatch vs the
   generated per-blob kernel at a *small* multiplier (the
   dispatch-bound regime codegen targets; at huge batch sizes the
   NumPy work dominates and the two backends converge).
4. **Cold vs warm compilation** — wall time of
   :func:`plan_configuration` with an empty
   :class:`CompilationCache` (miss: schedule + pseudo-blob
   construction) vs a primed one (hit: rehydration only).

One whole-run measurement:

5. **Parallel self-speedup** — a 4-stage FIR pipeline split into 4
   blobs on the :class:`ParallelBlobExecutor`, 1 thread vs 4 threads.
   Gated only when the machine actually has >= 4 cores (recorded in
   the JSON either way).

Every steady-state tier is timed through :func:`_measure_steady`,
which grows the iteration count until a single measured rep lasts at
least ``MIN_REP_SECONDS`` — a floor on measured duration, so no tier
ever reports numbers from a 2-iteration rep of timer noise.

Writes ``BENCH_hotpath.json`` at the repo root and gates the targets:

* fused speedup >= 2x on Synthetic (rate-only),
* geomean fused speedup >= 1.5x across all apps (rate-only),
* vectorized speedup >= 5x over scalar fused on Synthetic,
* geomean vectorized speedup >= 3x across the numeric apps,
* codegen speedup >= 1.5x over vectorized on Synthetic,
* geomean codegen speedup >= 1.2x across the numeric apps,
* parallel self-speedup >= 2x on the 4-blob pipeline (when >= 4 cores),
* warm phase-1 time <= 10% of cold, averaged across apps.

Usage::

    python benchmarks/bench_hotpath.py            # run + gate
    python benchmarks/bench_hotpath.py --no-gate  # measure only
"""

import argparse
import json
import math
import os
import sys
import time

_REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
for _path in (_REPO_ROOT, os.path.join(_REPO_ROOT, "src")):
    if _path not in sys.path:
        sys.path.insert(0, _path)

from repro.apps import app_registry  # noqa: E402
from repro.compiler.cache import (  # noqa: E402
    CompilationCache,
    stamp_structure_key,
    structure_key,
)
from repro.compiler.cost_model import CostModel  # noqa: E402
from repro.compiler.partition import partition_even  # noqa: E402
from repro.compiler.two_phase import plan_configuration  # noqa: E402
from repro.graph.builders import Pipeline  # noqa: E402
from repro.graph.library import FIRFilter  # noqa: E402
from repro.runtime.interpreter import GraphInterpreter  # noqa: E402
from repro.runtime.parallel import ParallelBlobExecutor  # noqa: E402
from repro.sched.schedule import make_schedule  # noqa: E402

RESULT_PATH = os.path.join(_REPO_ROOT, "BENCH_hotpath.json")

SCALE = 2
REPS = 5
COMPILE_REPS = 7
WARM_BATCH = 20
TARGET_REP_SECONDS = 0.15
#: Floor on each measured steady-state rep: the iteration count grows
#: until one rep lasts at least this long (fixes tiers that previously
#: measured 2 iterations on the slow apps — pure timer noise).
MIN_REP_SECONDS = 0.05
MAX_STEADY_ITERATIONS = 20000
GATE_SYNTHETIC_SPEEDUP = 2.0
GATE_GEOMEAN_SPEEDUP = 1.5
GATE_WARM_COLD_RATIO = 0.10

#: Schedule multiplier for the vectorized tier: each steady iteration
#: fires every worker repetitions x this many times, so one batch call
#: covers hundreds of firings.
VECTOR_MULTIPLIER = 256
#: Schedule multiplier for the codegen tier: small on purpose — the
#: generated kernel removes per-step dispatch, which only matters when
#: batches are small enough that dispatch is a real fraction of the
#: iteration.
CODEGEN_MULTIPLIER = 8
#: Apps whose hot loops are dominated by numeric per-item work (the
#: workloads the vectorized backend targets); the geomean gates run
#: over these.  The remaining apps are measured and reported too.
NUMERIC_APPS = ("BeamFormer", "FMRadio", "FilterBank", "Synthetic")
GATE_VECTOR_SYNTHETIC_SPEEDUP = 5.0
GATE_VECTOR_GEOMEAN_SPEEDUP = 3.0
GATE_CODEGEN_SYNTHETIC_SPEEDUP = 1.5
GATE_CODEGEN_GEOMEAN_SPEEDUP = 1.2

#: Parallel tier: a pipeline of PARALLEL_STAGES x PARALLEL_FIRS FIR
#: filters split into PARALLEL_BLOBS topologically contiguous blobs.
#: Each FIR batch call is TAPS GIL-releasing NumPy accumulations, so
#: pipeline blobs genuinely overlap on real cores.
PARALLEL_STAGES = 4
PARALLEL_FIRS = 3
PARALLEL_TAPS = 32
PARALLEL_BLOBS = 4
PARALLEL_THREADS = 4
PARALLEL_MULTIPLIER = 2048
GATE_PARALLEL_SELF_SPEEDUP = 2.0


def _provision(interp, input_fn, iterations):
    """Buffer enough graph input for init plus ``iterations`` steady
    iterations (plus the head worker's peek-beyond-pop margin)."""
    head = interp.graph.head
    head_extra = (max(head.peek_rates[0] - head.pop_rates[0], 0)
                  if head is not None and head.n_inputs else 0)
    needed = (interp.schedule.init_in + head_extra
              + interp.schedule.steady_in * iterations + 64)
    if input_fn is None:
        interp.push_input([None] * needed)
    else:
        interp.push_input([input_fn(i) for i in range(needed)])


def _steady_per_firing(interp, iterations):
    """The pre-fused steady loop: one firing at a time, in order."""
    order = interp.schedule.firing_order()
    fire = interp.fire
    for _ in range(iterations):
        for worker_id, firings in order:
            for _ in range(firings):
                fire(worker_id)


def _measure_steady(build, input_fn, expect_mode=None):
    """Best-of-REPS per-steady-iteration wall time with a duration floor.

    Grows the iteration count (doubling, then jumping to the estimate)
    until one measured rep lasts at least MIN_REP_SECONDS, then takes
    the best of REPS reps at that count.  Returns
    ``(seconds_per_iteration, iterations_per_rep, engine)``.
    """
    interp = build()
    _provision(interp, input_fn, 2)
    interp.run_init()
    interp.run_steady(1)  # plan built + validated outside the timing
    if expect_mode is not None:
        assert interp._fused.mode == expect_mode, interp._fused.mode
    iterations = 1
    while True:
        _provision(interp, input_fn, iterations)
        start = time.perf_counter()
        interp.run_steady(iterations)
        elapsed = time.perf_counter() - start
        if elapsed >= MIN_REP_SECONDS or iterations >= MAX_STEADY_ITERATIONS:
            break
        per = max(elapsed / iterations, 1e-9)
        iterations = min(max(iterations * 2,
                             int(MIN_REP_SECONDS / per) + 1),
                         MAX_STEADY_ITERATIONS)
    best = elapsed
    for _ in range(REPS - 1):
        _provision(interp, input_fn, iterations)
        start = time.perf_counter()
        interp.run_steady(iterations)
        best = min(best, time.perf_counter() - start)
    return best / iterations, iterations, interp


def _calibrate_iterations(blueprint, input_fn, rate_only):
    """Iterations per timed rep so a rep lasts ~TARGET_REP_SECONDS."""
    interp = GraphInterpreter(blueprint(), check_rates=False,
                              rate_only=rate_only)
    _provision(interp, input_fn, 4)
    interp.run_init()
    start = time.perf_counter()
    _steady_per_firing(interp, 4)
    per_iteration = max((time.perf_counter() - start) / 4, 1e-7)
    return max(3, min(int(TARGET_REP_SECONDS / per_iteration), 2000))


def _bench_firing_mode(spec, rate_only):
    """Best-of-REPS firings/sec, per-firing baseline vs fused."""
    blueprint = spec.blueprint(scale=SCALE)
    input_fn = None if rate_only else spec.input_fn
    iterations = _calibrate_iterations(blueprint, input_fn, rate_only)

    baseline = GraphInterpreter(blueprint(), check_rates=False,
                                rate_only=rate_only)
    _provision(baseline, input_fn, iterations * REPS)
    baseline.run_init()
    base_best = float("inf")
    for _ in range(REPS):
        start = time.perf_counter()
        _steady_per_firing(baseline, iterations)
        base_best = min(base_best, time.perf_counter() - start)

    fused = GraphInterpreter(blueprint(), check_rates=False,
                             rate_only=rate_only)
    _provision(fused, input_fn, iterations * REPS + 1)
    fused.run_init()
    fused.run_steady(1)  # build + validate the plan outside the timing
    fused_best = float("inf")
    for _ in range(REPS):
        start = time.perf_counter()
        fused.run_steady(iterations)
        fused_best = min(fused_best, time.perf_counter() - start)

    firings = sum(f for _, f in baseline.schedule.firing_order())
    return {
        "iterations_per_rep": iterations,
        "firings_per_iteration": firings,
        "interp_firings_per_sec": firings * iterations / base_best,
        "fused_firings_per_sec": firings * iterations / fused_best,
        "speedup": base_best / fused_best,
    }


def _bench_vectorized(spec):
    """Scalar-fused vs vectorized-fused at a boosted schedule
    multiplier (real data, ``check_rates=False``), floor-timed."""
    blueprint = spec.blueprint(scale=SCALE)
    input_fn = spec.input_fn

    def build(vectorize):
        def make():
            graph = blueprint()
            schedule = make_schedule(graph, multiplier=VECTOR_MULTIPLIER)
            return GraphInterpreter(graph, schedule=schedule,
                                    check_rates=False, vectorize=vectorize)
        return make

    scalar_per, scalar_iters, probe = _measure_steady(
        build(False), input_fn, expect_mode="scalar")
    vector_per, vector_iters, _ = _measure_steady(
        build(True), input_fn, expect_mode="vectorized")

    firings = sum(f for _, f in probe.schedule.firing_order())
    return {
        "multiplier": VECTOR_MULTIPLIER,
        "iterations_per_rep": {"scalar": scalar_iters,
                               "vectorized": vector_iters},
        "firings_per_iteration": firings,
        "scalar_firings_per_sec": firings / scalar_per,
        "vectorized_firings_per_sec": firings / vector_per,
        "speedup": scalar_per / vector_per,
    }


def _bench_codegen(spec):
    """Vectorized step dispatch vs the generated per-blob kernel at a
    small-batch multiplier, floor-timed."""
    blueprint = spec.blueprint(scale=SCALE)
    input_fn = spec.input_fn

    def build(codegen):
        def make():
            graph = blueprint()
            schedule = make_schedule(graph, multiplier=CODEGEN_MULTIPLIER)
            return GraphInterpreter(graph, schedule=schedule,
                                    check_rates=False, vectorize=True,
                                    codegen=codegen)
        return make

    vector_per, vector_iters, _ = _measure_steady(
        build(False), input_fn, expect_mode="vectorized")
    codegen_per, codegen_iters, interp = _measure_steady(
        build(True), input_fn, expect_mode="codegen")

    plan = interp._fused
    assert plan.codegen_error is None, plan.codegen_error
    kernel = plan._codegen
    # Scalar fallbacks appear exactly where batch kernels are absent.
    expected_fallbacks = sum(
        1 for worker in interp.graph.workers
        if not worker.supports_work_batch)
    assert kernel.fallback_steps == expected_fallbacks, \
        (kernel.fallback_steps, expected_fallbacks)

    firings = sum(f for _, f in interp.schedule.firing_order())
    return {
        "multiplier": CODEGEN_MULTIPLIER,
        "iterations_per_rep": {"vectorized": vector_iters,
                               "codegen": codegen_iters},
        "firings_per_iteration": firings,
        "backend": kernel.backend,
        "fallback_steps": kernel.fallback_steps,
        "vectorized_firings_per_sec": firings / vector_per,
        "codegen_firings_per_sec": firings / codegen_per,
        "speedup": vector_per / codegen_per,
    }


def _parallel_blueprint():
    stages = []
    for stage in range(PARALLEL_STAGES):
        for fir in range(PARALLEL_FIRS):
            stages.append(FIRFilter([1.0 / PARALLEL_TAPS] * PARALLEL_TAPS,
                                    name="fir%d_%d" % (stage, fir)))
    return Pipeline(*stages).flatten()


def _parallel_input(i):
    return math.sin(i * 0.01)


def _bench_parallel():
    """Self-speedup of the parallel blob executor: the 4-blob FIR
    pipeline with 1 thread vs PARALLEL_THREADS threads."""
    def build(threads):
        def make():
            graph = _parallel_blueprint()
            schedule = make_schedule(graph, multiplier=PARALLEL_MULTIPLIER)
            topo = list(graph.topological_order())
            size = len(topo) // PARALLEL_BLOBS
            partition = [topo[i * size:(i + 1) * size]
                         for i in range(PARALLEL_BLOBS)]
            partition[-1].extend(topo[PARALLEL_BLOBS * size:])
            return ParallelBlobExecutor(graph, partition, schedule=schedule,
                                        threads=threads)
        return make

    serial_per, serial_iters, _ = _measure_steady(
        build(1), _parallel_input)
    parallel_per, parallel_iters, _ = _measure_steady(
        build(PARALLEL_THREADS), _parallel_input)

    cpu_count = os.cpu_count() or 1
    return {
        "blobs": PARALLEL_BLOBS,
        "threads": PARALLEL_THREADS,
        "multiplier": PARALLEL_MULTIPLIER,
        "stages": PARALLEL_STAGES,
        "firs_per_stage": PARALLEL_FIRS,
        "taps": PARALLEL_TAPS,
        "cpu_count": cpu_count,
        "gated": cpu_count >= PARALLEL_THREADS,
        "iterations_per_rep": {"serial": serial_iters,
                               "parallel": parallel_iters},
        "serial_iteration_ms": serial_per * 1e3,
        "parallel_iteration_ms": parallel_per * 1e3,
        "self_speedup": serial_per / parallel_per,
    }


def _bench_compile(spec, n_blobs=4):
    """Median cold vs best warm plan_configuration wall time (ms).

    Cold models the first-ever compile (empty cache, structure key
    derived from scratch).  Warm models every later compile in a live
    app: :meth:`StreamApp.fresh_graph` stamps the blueprint's known
    structure key onto each rebuild, so the benchmark does the same.
    """
    blueprint = spec.blueprint(scale=SCALE)
    probe = blueprint()
    configuration = partition_even(probe, range(n_blobs), name="bench")
    cost_model = CostModel()

    cold_times = []
    for _ in range(COMPILE_REPS):
        cache = CompilationCache()
        graph = blueprint()
        start = time.perf_counter()
        plan_configuration(graph, configuration, cost_model, cache=cache)
        cold_times.append(time.perf_counter() - start)
    cold = sorted(cold_times)[len(cold_times) // 2]

    # Warm hits are tens of microseconds, so they are timed as a batch
    # (and best-of-REPS batches) to keep timer noise out of the ratio.
    cache = CompilationCache()
    key = structure_key(probe)
    plan_configuration(blueprint(), configuration, cost_model, cache=cache)
    warm = float("inf")
    for _ in range(REPS):
        graphs = [blueprint() for _ in range(WARM_BATCH)]
        for graph in graphs:
            stamp_structure_key(graph, key)
        start = time.perf_counter()
        for graph in graphs:
            plan_configuration(graph, configuration, cost_model, cache=cache)
        warm = min(warm, (time.perf_counter() - start) / WARM_BATCH)
    assert cache.plan_hits == REPS * WARM_BATCH, \
        "warm reps must all hit the cache"

    return {
        "cold_ms": cold * 1e3,
        "warm_ms": warm * 1e3,
        "warm_cold_ratio": warm / cold,
    }


def _geomean(values):
    return math.exp(sum(math.log(v) for v in values) / len(values))


def run():
    registry = app_registry()
    apps = {}
    for name in sorted(registry):
        spec = registry[name]
        print("benchmarking %s ..." % name)
        rate_only = _bench_firing_mode(spec, rate_only=True)
        functional = _bench_firing_mode(spec, rate_only=False)
        vectorized = _bench_vectorized(spec)
        codegen = _bench_codegen(spec)
        compile_row = _bench_compile(spec)
        apps[name] = {
            "rate_only": rate_only,
            "functional": functional,
            "vectorized": vectorized,
            "codegen": codegen,
            "compile": compile_row,
        }
        print("  rate-only %.2fx  functional %.2fx  vectorized %.2fx  "
              "codegen %.2fx  warm/cold %.1f%%"
              % (rate_only["speedup"], functional["speedup"],
                 vectorized["speedup"], codegen["speedup"],
                 100.0 * compile_row["warm_cold_ratio"]))

    print("benchmarking parallel self-speedup ...")
    parallel = _bench_parallel()
    print("  %d blobs, %d threads on %d core(s): %.2fx%s"
          % (parallel["blobs"], parallel["threads"], parallel["cpu_count"],
             parallel["self_speedup"],
             "" if parallel["gated"] else "  (not gated: too few cores)"))

    names = sorted(apps)
    summary = {
        "synthetic_rate_only_speedup": apps["Synthetic"]["rate_only"]["speedup"],
        "geomean_rate_only_speedup": _geomean(
            [apps[n]["rate_only"]["speedup"] for n in names]),
        "geomean_functional_speedup": _geomean(
            [apps[n]["functional"]["speedup"] for n in names]),
        "synthetic_vectorized_speedup": (
            apps["Synthetic"]["vectorized"]["speedup"]),
        "geomean_vectorized_numeric_speedup": _geomean(
            [apps[n]["vectorized"]["speedup"] for n in NUMERIC_APPS]),
        "geomean_vectorized_speedup": _geomean(
            [apps[n]["vectorized"]["speedup"] for n in names]),
        "synthetic_codegen_speedup": apps["Synthetic"]["codegen"]["speedup"],
        "geomean_codegen_numeric_speedup": _geomean(
            [apps[n]["codegen"]["speedup"] for n in NUMERIC_APPS]),
        "geomean_codegen_speedup": _geomean(
            [apps[n]["codegen"]["speedup"] for n in names]),
        "parallel_self_speedup": parallel["self_speedup"],
        "parallel_gated": parallel["gated"],
        "cpu_count": parallel["cpu_count"],
        "warm_cold_ratio_mean": (
            sum(apps[n]["compile"]["warm_cold_ratio"] for n in names)
            / len(names)),
    }
    return {"scale": SCALE, "apps": apps, "parallel": parallel,
            "summary": summary}


def gate(result):
    summary = result["summary"]
    checks = [
        ("Synthetic rate-only fused speedup",
         summary["synthetic_rate_only_speedup"], ">=", GATE_SYNTHETIC_SPEEDUP),
        ("geomean rate-only fused speedup",
         summary["geomean_rate_only_speedup"], ">=", GATE_GEOMEAN_SPEEDUP),
        ("Synthetic vectorized speedup",
         summary["synthetic_vectorized_speedup"], ">=",
         GATE_VECTOR_SYNTHETIC_SPEEDUP),
        ("geomean vectorized speedup (numeric apps)",
         summary["geomean_vectorized_numeric_speedup"], ">=",
         GATE_VECTOR_GEOMEAN_SPEEDUP),
        ("Synthetic codegen speedup",
         summary["synthetic_codegen_speedup"], ">=",
         GATE_CODEGEN_SYNTHETIC_SPEEDUP),
        ("geomean codegen speedup (numeric apps)",
         summary["geomean_codegen_numeric_speedup"], ">=",
         GATE_CODEGEN_GEOMEAN_SPEEDUP),
        ("mean warm/cold compile ratio",
         summary["warm_cold_ratio_mean"], "<=", GATE_WARM_COLD_RATIO),
    ]
    if summary["parallel_gated"]:
        checks.append(("parallel self-speedup (4 blobs, 4 threads)",
                       summary["parallel_self_speedup"], ">=",
                       GATE_PARALLEL_SELF_SPEEDUP))
    else:
        print("gate %-38s measured=%.3f SKIPPED (%d core(s) < %d threads)"
              % ("parallel self-speedup (4 blobs, 4 threads)",
                 summary["parallel_self_speedup"],
                 summary["cpu_count"], PARALLEL_THREADS))
    failures = []
    for label, got, op, limit in checks:
        ok = got >= limit if op == ">=" else got <= limit
        print("gate %-38s measured=%.3f %s %.3f %s"
              % (label, got, op, limit, "OK" if ok else "FAIL"))
        if not ok:
            failures.append("%s: %.3f not %s %.3f" % (label, got, op, limit))
    return failures


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--no-gate", action="store_true",
                        help="measure and write JSON without gating")
    parser.add_argument("--output", default=RESULT_PATH,
                        help="result JSON path (default: %s)" % RESULT_PATH)
    args = parser.parse_args(argv)

    result = run()
    with open(args.output, "w") as handle:
        json.dump(result, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print("wrote %s" % args.output)

    from benchmarks.ci_summary import markdown_table, write_step_summary
    summary = result["summary"]
    parallel_row = "%.2fx" % summary["parallel_self_speedup"]
    if not summary["parallel_gated"]:
        parallel_row += " (not gated: %d core(s))" % summary["cpu_count"]
    if write_step_summary(
            "### Hot-path speedups (fused over per-firing interpreter)\n\n"
            + markdown_table(
                ("metric", "value"),
                [("Synthetic rate-only fused",
                  "%.2fx" % summary["synthetic_rate_only_speedup"]),
                 ("geomean rate-only fused (all apps)",
                  "%.2fx" % summary["geomean_rate_only_speedup"]),
                 ("geomean functional fused",
                  "%.2fx" % summary["geomean_functional_speedup"]),
                 ("Synthetic vectorized over scalar fused",
                  "%.2fx" % summary["synthetic_vectorized_speedup"]),
                 ("geomean vectorized (numeric apps)",
                  "%.2fx" % summary["geomean_vectorized_numeric_speedup"]),
                 ("Synthetic codegen over vectorized",
                  "%.2fx" % summary["synthetic_codegen_speedup"]),
                 ("geomean codegen (numeric apps)",
                  "%.2fx" % summary["geomean_codegen_numeric_speedup"]),
                 ("parallel self-speedup (4 blobs / 4 threads)",
                  parallel_row),
                 ("mean warm/cold compile ratio",
                  "%.1f%%" % (100 * summary["warm_cold_ratio_mean"]))])):
        print("step summary updated")

    if args.no_gate:
        return 0
    failures = gate(result)
    if failures:
        for failure in failures:
            print("FAIL:", failure, file=sys.stderr)
        return 1
    print("hot-path benchmark passed")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
