"""Figure 13: online autotuning with live reconfiguration.

Paper: an online autotuner explores program variants on eight nodes;
throughput varies as variants are tried, but Gloss reconfigures
between them with zero downtime, so the program does useful work
throughout the tuning session.
"""

from benchmarks.conftest import run_experiment
from repro.experiments import format_rows, make_experiment_app, write_result
from repro.tuning import ConfigurationSpace, OnlineAutotuner

TRIALS = 5


def _tune(app_name, seed):
    experiment = make_experiment_app(app_name, initial_nodes=range(8))
    space = ConfigurationSpace(experiment.blueprint, seed=seed)
    tuner = OnlineAutotuner(experiment.app, space, measure_seconds=15.0)
    process = experiment.env.process(tuner.run(trials=TRIALS))
    experiment.run_until(experiment.env.now + 1200.0)
    if not process.triggered:
        raise RuntimeError("tuning session did not finish")
    downtimes = [r.downtime
                 for r in experiment.app.analyze_all(horizon_after=45.0)]
    return {
        "history": [(point.describe(), throughput)
                    for point, throughput in tuner.history],
        "best": tuner.best[1],
        "downtimes": downtimes,
    }


def _run():
    return {
        "BeamFormer": _tune("BeamFormer", seed=42),
        "FMRadio": _tune("FMRadio", seed=43),
    }


def test_fig13_online_autotuning(benchmark):
    results = run_experiment(benchmark, _run)
    rows = []
    for app_name, result in results.items():
        for i, (point, throughput) in enumerate(result["history"]):
            rows.append((app_name, "trial %d" % i, point,
                         "%.0f" % throughput))
        rows.append((app_name, "best", "", "%.0f" % result["best"]))
    write_result("fig13_autotuning", format_rows(
        ("application", "step", "variant", "items/s"), rows,
        title="Figure 13: online autotuning excerpt (%d trials, "
              "adaptive reconfiguration)" % TRIALS))
    for app_name, result in results.items():
        throughputs = [t for _, t in result["history"]]
        # The tuner genuinely explored: variants differ in throughput.
        assert max(throughputs) > 1.1 * min(throughputs), app_name
        # Best-so-far is the maximum of the history.
        assert result["best"] >= max(throughputs) * 0.999, app_name
        # Zero downtime across every reconfiguration the tuner issued.
        assert result["downtimes"], app_name
        assert all(d == 0.0 for d in result["downtimes"]), (
            app_name, result["downtimes"])
