"""CI smoke benchmark: fast-mode figure runs with a regression gate.

Runs the Figure 4 (stop-and-copy) and Figure 5 (two-phase) benchmark
bodies once each with tracing enabled, then

1. validates the exported Chrome-trace JSON artifacts (loadable,
   ``traceEvents`` present, required reconfiguration phase spans in
   place), and
2. gates the headline metrics against ``benchmarks/ci_baseline.json``:
   stop-and-copy downtime and two-phase visible-recompile time must
   not regress more than ``TOLERANCE`` (20%) over the checked-in
   baseline.  The simulation is deterministic, so in practice the
   measurements reproduce the baseline exactly; the tolerance absorbs
   intentional cost-model tweaks.
3. gates duplicated output: ``merger.duplicate_emitted`` (canonical
   indices forwarded downstream twice) must be exactly zero in both
   fault-free runs — it is the merger's seamlessness trip-wire, and a
   non-zero value is a correctness bug, not a regression to tolerate.
4. runs a functional (real-data) adaptive reconfiguration with the
   vectorized NumPy backend forced on, and gates that every blob
   actually vectorized and the merger again emitted zero duplicates —
   the backend must not perturb the seamless splice.
5. repeats that reconfiguration with ``REPRO_CODEGEN=1`` on top, and
   gates that every blob ran its generated kernel (no inactive blobs,
   no scalar fallbacks, zero fallback steps) with zero duplicates —
   the compiled-all-the-way-down path must be just as seamless.
6. repeats it once more with ``REPRO_PARALLEL=process``, so every blob
   executes in a forked worker over shared-memory rings, and gates
   zero duplicates, at least one actually-forked blob, and zero leaked
   ``/dev/shm`` segments after every instance is torn down.  Skipped
   (all-zero metrics) on platforms without the ``fork`` start method.

Usage::

    python benchmarks/smoke_ci.py                    # run + gate
    python benchmarks/smoke_ci.py --update-baseline  # refresh baseline

Exit status is non-zero on any validation or gate failure.
"""

import argparse
import json
import os
import sys

_REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
for _path in (_REPO_ROOT, os.path.join(_REPO_ROOT, "src")):
    if _path not in sys.path:
        sys.path.insert(0, _path)

BASELINE_PATH = os.path.join(_REPO_ROOT, "benchmarks", "ci_baseline.json")
TOLERANCE = 0.20

#: metric key -> (benchmark name, human label). Gated metrics are the
#: paper's headline numbers: stop-and-copy downtime (Figure 4) and the
#: visible phase-2 recompilation time (Figure 5).
GATED = {
    "fig04_downtime_seconds": ("fig04_stop_and_copy",
                               "stop-and-copy downtime"),
    "fig05_phase2_seconds": ("fig05_two_phase",
                             "two-phase visible recompile time"),
}

#: metric key -> (benchmark name, human label).  Lower-bound gates:
#: these must not *fall* below baseline * (1 - TOLERANCE).  The fig05
#: run ends with a warm recompile of the adaptive target, so its
#: compile-cache hit rate dropping means phase-1 memoization broke
#: (every tuner revisit would pay a cold compile again).
MIN_GATED = {
    "fig05_cache_hit_rate": ("fig05_two_phase",
                             "compile-cache hit rate"),
}

#: spans every traced reconfiguration of that strategy must contain.
REQUIRED_SPANS = {
    "fig04_stop_and_copy": {"stop_and_copy", "drain", "compile.full",
                            "discard-old", "init"},
    "fig05_two_phase": {"adaptive", "compile.phase1", "compile.phase2",
                        "overlap", "discard-old"},
}


def _trace_span_names(path):
    with open(path) as handle:
        trace = json.load(handle)
    events = trace.get("traceEvents")
    if not isinstance(events, list) or not events:
        raise SystemExit("FAIL: %s has no traceEvents" % path)
    return {e["name"] for e in events if e.get("ph") == "X"}


def run_benchmarks(trace_dir):
    os.environ["REPRO_TRACE"] = "1"
    os.environ["REPRO_TRACE_DIR"] = trace_dir
    from benchmarks.bench_fig04_stop_and_copy import _run as run_fig04
    from benchmarks.bench_fig05_two_phase import _run as run_fig05

    print("running fig04 (stop-and-copy) ...")
    fig04 = run_fig04()
    print("  %s" % {k: round(v, 3) for k, v in fig04.items()})
    print("running fig05 (two-phase) ...")
    fig05 = run_fig05()
    print("  %s" % {k: round(v, 3) for k, v in fig05.items()})
    print("running vectorized-backend functional reconfiguration ...")
    vector = run_vectorized_smoke()
    print("  %s" % {k: round(v, 3) for k, v in vector.items()})
    print("running codegen-backend functional reconfiguration ...")
    codegen = run_codegen_smoke()
    print("  %s" % {k: round(v, 3) for k, v in codegen.items()})
    print("running process-backend functional reconfiguration ...")
    process = run_process_smoke()
    print("  %s" % {k: round(v, 3) for k, v in process.items()})
    return {
        "fig04_downtime_seconds": fig04["downtime"],
        "fig05_phase2_seconds": fig05["phase2"],
        "fig04_duplicate_emitted": fig04["dup_emitted"],
        "fig05_duplicate_emitted": fig05["dup_emitted"],
        "fig05_cache_hit_rate": fig05["cache_hit_rate"],
        "vector_duplicate_emitted": vector["dup_emitted"],
        "vector_scalar_blobs": vector["scalar_blobs"],
        "codegen_duplicate_emitted": codegen["dup_emitted"],
        "codegen_scalar_blobs": codegen["scalar_blobs"],
        "codegen_inactive_blobs": codegen["inactive_blobs"],
        "codegen_fallback_steps": codegen["fallback_steps"],
        "process_duplicate_emitted": process["dup_emitted"],
        "process_leaked_segments": process["leaked_segments"],
    }


def run_vectorized_smoke():
    """Functional adaptive reconfiguration with the vectorized backend.

    A small FMRadio cluster run moving real data (``check_rates=False``)
    with ``REPRO_VECTORIZE=1`` forcing the NumPy backend on every
    capable blob, live-reconfigured from two nodes to three with the
    adaptive strategy.  Returns the merger's duplicate count and how
    many blobs fell back to the scalar backend (both must be zero).
    """
    from repro import Cluster, StreamApp, partition_even
    from repro.apps import get_app
    from repro.compiler.cost_model import CostModel

    previous = os.environ.get("REPRO_VECTORIZE")
    os.environ["REPRO_VECTORIZE"] = "1"
    try:
        spec = get_app("FMRadio")
        blueprint = spec.blueprint(scale=1)
        cost_model = CostModel().scaled(node_speed=2_500.0,
                                        interp_slowdown=8.0,
                                        init_iterations=2.5)
        cluster = Cluster(n_nodes=3, cores_per_node=4,
                          cost_model=cost_model)
        app = StreamApp(cluster, blueprint, input_fn=spec.input_fn,
                        name="FMRadio", collect_output=True,
                        check_rates=False)
        app.launch(partition_even(blueprint(), [0, 1], multiplier=4,
                                  name="A"))
        cluster.run(until=40.0)
        if app.current is None or app.current.status != "running":
            raise SystemExit("FAIL: vectorized smoke app never reached "
                             "steady state")
        done = app.reconfigure(
            partition_even(blueprint(), [0, 1, 2], multiplier=4,
                           name="B"),
            strategy="adaptive")
        cluster.run(until=110.0)
        if not (done.triggered and done.ok):
            raise SystemExit("FAIL: vectorized smoke reconfiguration "
                             "did not complete: %r" % (done.value,))
        scalar_blobs = sum(
            1 for process in app.current.blob_procs.values()
            if not process.runtime.vectorized)
        if not app.merger.items:
            raise SystemExit("FAIL: vectorized smoke produced no output")
        return {
            "dup_emitted": float(app.merger.duplicate_emitted),
            "scalar_blobs": float(scalar_blobs),
            "output_items": float(len(app.merger.items)),
        }
    finally:
        if previous is None:
            os.environ.pop("REPRO_VECTORIZE", None)
        else:
            os.environ["REPRO_VECTORIZE"] = previous


def run_codegen_smoke():
    """Functional adaptive reconfiguration with generated kernels.

    The same FMRadio cluster run as :func:`run_vectorized_smoke`, but
    with ``REPRO_CODEGEN=1`` on top of ``REPRO_VECTORIZE=1`` so every
    capable blob compiles its steady iteration into one generated
    kernel.  Returns the merger's duplicate count plus three codegen
    health counters (scalar fallback blobs, blobs whose kernel never
    activated, scalar fallback steps inside active kernels) — all of
    which must be zero for this graph.
    """
    from repro import Cluster, StreamApp, partition_even
    from repro.apps import get_app
    from repro.compiler.cost_model import CostModel

    saved = {key: os.environ.get(key)
             for key in ("REPRO_VECTORIZE", "REPRO_CODEGEN")}
    os.environ["REPRO_VECTORIZE"] = "1"
    os.environ["REPRO_CODEGEN"] = "1"
    try:
        spec = get_app("FMRadio")
        blueprint = spec.blueprint(scale=1)
        cost_model = CostModel().scaled(node_speed=2_500.0,
                                        interp_slowdown=8.0,
                                        init_iterations=2.5)
        cluster = Cluster(n_nodes=3, cores_per_node=4,
                          cost_model=cost_model)
        app = StreamApp(cluster, blueprint, input_fn=spec.input_fn,
                        name="FMRadio", collect_output=True,
                        check_rates=False)
        app.launch(partition_even(blueprint(), [0, 1], multiplier=4,
                                  name="A"))
        cluster.run(until=40.0)
        if app.current is None or app.current.status != "running":
            raise SystemExit("FAIL: codegen smoke app never reached "
                             "steady state")
        done = app.reconfigure(
            partition_even(blueprint(), [0, 1, 2], multiplier=4,
                           name="B"),
            strategy="adaptive")
        cluster.run(until=110.0)
        if not (done.triggered and done.ok):
            raise SystemExit("FAIL: codegen smoke reconfiguration "
                             "did not complete: %r" % (done.value,))
        runtimes = [process.runtime
                    for process in app.current.blob_procs.values()]
        scalar_blobs = sum(1 for r in runtimes if not r.vectorized)
        inactive_blobs = sum(1 for r in runtimes if not r.codegen_active)
        fallback_steps = sum(r.codegen_fallback_steps for r in runtimes)
        if not app.merger.items:
            raise SystemExit("FAIL: codegen smoke produced no output")
        return {
            "dup_emitted": float(app.merger.duplicate_emitted),
            "scalar_blobs": float(scalar_blobs),
            "inactive_blobs": float(inactive_blobs),
            "fallback_steps": float(fallback_steps),
            "output_items": float(len(app.merger.items)),
        }
    finally:
        for key, value in saved.items():
            if value is None:
                os.environ.pop(key, None)
            else:
                os.environ[key] = value


def run_process_smoke():
    """Functional adaptive reconfiguration on the process backend.

    The FMRadio cluster run once more, with ``REPRO_PARALLEL=process``
    forking one worker per blob over shared-memory rings.  The run
    must fork real children (at least one blob proxied), splice with
    zero duplicated output, and leave ``/dev/shm`` empty once every
    instance is torn down.  On platforms without ``fork`` the smoke
    returns all-zero metrics, which the gates read as a clean skip.
    """
    from repro import Cluster, StreamApp, partition_even
    from repro.apps import get_app
    from repro.compiler.cost_model import CostModel
    from repro.runtime import process_executor_available, shm_open_segments

    if not process_executor_available():
        print("  fork unavailable: process smoke skipped")
        return {"dup_emitted": 0.0, "forked_blobs": 0.0,
                "leaked_segments": 0.0}

    saved = {key: os.environ.get(key)
             for key in ("REPRO_VECTORIZE", "REPRO_PARALLEL")}
    os.environ["REPRO_VECTORIZE"] = "1"
    os.environ["REPRO_PARALLEL"] = "process"
    try:
        spec = get_app("FMRadio")
        blueprint = spec.blueprint(scale=1)
        cost_model = CostModel().scaled(node_speed=2_500.0,
                                        interp_slowdown=8.0,
                                        init_iterations=2.5)
        cluster = Cluster(n_nodes=3, cores_per_node=4,
                          cost_model=cost_model)
        app = StreamApp(cluster, blueprint, input_fn=spec.input_fn,
                        name="FMRadio", collect_output=True,
                        check_rates=False)
        app.launch(partition_even(blueprint(), [0, 1], multiplier=4,
                                  name="A"))
        cluster.run(until=40.0)
        if app.current is None or app.current.status != "running":
            raise SystemExit("FAIL: process smoke app never reached "
                             "steady state")
        forked = len(app.current._proc_proxies)
        if forked == 0:
            raise SystemExit("FAIL: process smoke forked no blob "
                             "workers (backend fell back)")
        done = app.reconfigure(
            partition_even(blueprint(), [0, 1, 2], multiplier=4,
                           name="B"),
            strategy="adaptive")
        cluster.run(until=110.0)
        if not (done.triggered and done.ok):
            raise SystemExit("FAIL: process smoke reconfiguration "
                             "did not complete: %r" % (done.value,))
        if not app.merger.items:
            raise SystemExit("FAIL: process smoke produced no output")
        dup = float(app.merger.duplicate_emitted)
        for instance in app.instances:
            if instance.alive:
                instance.abandon()
        return {
            "dup_emitted": dup,
            "forked_blobs": float(forked),
            "leaked_segments": float(len(shm_open_segments())),
        }
    finally:
        for key, value in saved.items():
            if value is None:
                os.environ.pop(key, None)
            else:
                os.environ[key] = value


def validate_traces(trace_dir):
    failures = []
    for name, required in sorted(REQUIRED_SPANS.items()):
        path = os.path.join(trace_dir, name + ".trace.json")
        if not os.path.exists(path):
            failures.append("missing trace artifact: %s" % path)
            continue
        names = _trace_span_names(path)
        missing = required - names
        if missing:
            failures.append("%s lacks spans %s (has %s)"
                            % (path, sorted(missing), sorted(names)))
        else:
            print("trace ok: %s (%d span names)" % (path, len(names)))
    return failures


#: metric key -> (benchmark name, human label).  Exact-zero gates: any
#: duplicated output item forwarded downstream breaks output
#: equivalence outright, so no tolerance applies.
ZERO_GATED = {
    "fig04_duplicate_emitted": ("fig04_stop_and_copy",
                                "stop-and-copy duplicated output items"),
    "fig05_duplicate_emitted": ("fig05_two_phase",
                                "two-phase duplicated output items"),
    "vector_duplicate_emitted": ("vectorized_smoke",
                                 "vectorized-backend duplicated output"),
    "vector_scalar_blobs": ("vectorized_smoke",
                            "vectorized-backend scalar fallbacks"),
    "codegen_duplicate_emitted": ("codegen_smoke",
                                  "codegen-backend duplicated output"),
    "codegen_scalar_blobs": ("codegen_smoke",
                             "codegen-backend scalar fallbacks"),
    "codegen_inactive_blobs": ("codegen_smoke",
                               "blobs whose generated kernel never ran"),
    "codegen_fallback_steps": ("codegen_smoke",
                               "scalar fallback steps in generated kernels"),
    "process_duplicate_emitted": ("process_smoke",
                                  "process-backend duplicated output"),
    "process_leaked_segments": ("process_smoke",
                                "leaked /dev/shm segments after teardown"),
}


def gate(measured, baseline):
    # Every failure line names the benchmark and carries both sides of
    # the comparison (expected/limit and measured), so a red CI log is
    # diagnosable without re-running locally.
    failures = []
    for key, (bench, label) in sorted(ZERO_GATED.items()):
        got = measured[key]
        status = "OK" if got == 0 else "CORRECTNESS FAILURE"
        print("gate %-35s must be 0, measured=%d %s"
              % (label, int(got), status))
        if got != 0:
            failures.append(
                "%s[%s]: expected 0, measured %d (output items emitted "
                "twice)" % (bench, key, int(got)))
    for key, (bench, label) in sorted(GATED.items()):
        if key not in baseline:
            failures.append("%s[%s]: baseline missing; run "
                            "--update-baseline" % (bench, key))
            continue
        base, got = baseline[key], measured[key]
        limit = base * (1.0 + TOLERANCE)
        status = "OK" if got <= limit else "REGRESSION"
        print("gate %-11s %-35s baseline=%.3fs measured=%.3fs "
              "limit=%.3fs %s" % (bench, label, base, got, limit, status))
        if got > limit:
            failures.append(
                "%s[%s]: %s regressed: measured %.3fs exceeds limit %.3fs "
                "(baseline %.3fs +%d%%)"
                % (bench, key, label, got, limit, base,
                   int(TOLERANCE * 100)))
    for key, (bench, label) in sorted(MIN_GATED.items()):
        if key not in baseline:
            failures.append("%s[%s]: baseline missing; run "
                            "--update-baseline" % (bench, key))
            continue
        base, got = baseline[key], measured[key]
        floor = base * (1.0 - TOLERANCE)
        status = "OK" if got >= floor else "REGRESSION"
        print("gate %-11s %-35s baseline=%.3f  measured=%.3f  "
              "floor=%.3f  %s" % (bench, label, base, got, floor, status))
        if got < floor:
            failures.append(
                "%s[%s]: %s regressed: measured %.3f fell below floor %.3f "
                "(baseline %.3f -%d%%)"
                % (bench, key, label, got, floor, base,
                   int(TOLERANCE * 100)))
    return failures


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--update-baseline", action="store_true",
                        help="rewrite %s from this run" % BASELINE_PATH)
    parser.add_argument("--trace-dir", default=None,
                        help="where trace artifacts land "
                             "(default: $REPRO_TRACE_DIR or results/)")
    args = parser.parse_args(argv)

    trace_dir = (args.trace_dir or os.environ.get("REPRO_TRACE_DIR")
                 or os.path.join(_REPO_ROOT, "results"))
    measured = run_benchmarks(trace_dir)

    failures = validate_traces(trace_dir)
    if args.update_baseline:
        with open(BASELINE_PATH, "w") as handle:
            json.dump(measured, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print("baseline updated: %s" % BASELINE_PATH)
    else:
        try:
            with open(BASELINE_PATH) as handle:
                baseline = json.load(handle)
        except FileNotFoundError:
            failures.append("no baseline at %s; run --update-baseline"
                            % BASELINE_PATH)
        else:
            failures.extend(gate(measured, baseline))

    if failures:
        for failure in failures:
            print("FAIL:", failure, file=sys.stderr)
        return 1
    print("smoke benchmarks passed")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
