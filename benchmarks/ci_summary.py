"""GitHub Actions step-summary output for the benchmark harness.

CI jobs surface their headline numbers as a Markdown table in the
run's summary page by appending to the file named by the
``GITHUB_STEP_SUMMARY`` environment variable.  Locally (no such
variable) the helpers are no-ops, so benchmark scripts can call them
unconditionally.
"""

from __future__ import annotations

import os
from typing import Iterable, Sequence

__all__ = ["markdown_table", "thread_vs_process_table",
           "write_step_summary"]


def markdown_table(header: Sequence[str],
                   rows: Iterable[Sequence[object]]) -> str:
    lines = ["| " + " | ".join(str(c) for c in header) + " |",
             "|" + "|".join(" --- " for _ in header) + "|"]
    for row in rows:
        lines.append("| " + " | ".join(str(c) for c in row) + " |")
    return "\n".join(lines)


def thread_vs_process_table(parallel: dict,
                            process: dict = None,
                            scalar: dict = None) -> str:
    """The executor-backend comparison table for the step summary.

    One row per whole-run tier of the hot-path benchmark: the thread
    pool and the forked-process executor on the NumPy FIR pipeline,
    plus the GIL-bound pipeline where only processes can scale.  Rows
    whose tier did not run (no fork support) are omitted.
    """
    def fmt(gated, speedup, cpu_count):
        text = "%.2fx" % speedup
        if not gated:
            text += " (not gated: %d core(s))" % cpu_count
        return text

    rows = [("threads (NumPy FIR pipeline)",
             "%d blobs / %d threads" % (parallel["blobs"],
                                        parallel["threads"]),
             "%.2f ms" % parallel["parallel_iteration_ms"],
             fmt(parallel["gated"], parallel["self_speedup"],
                 parallel["cpu_count"]))]
    if process is not None:
        rows.append(("processes (NumPy FIR pipeline)",
                     "%d blobs / %d processes" % (process["blobs"],
                                                  process["processes"]),
                     "%.2f ms" % process["process_iteration_ms"],
                     fmt(process["gated"], process["self_speedup"],
                         process["cpu_count"])))
    if scalar is not None:
        rows.append(("processes over threads (GIL-bound)",
                     "%d blobs / %d workers" % (scalar["blobs"],
                                                scalar["workers"]),
                     "%.2f ms vs %.2f ms"
                     % (scalar["process_iteration_ms"],
                        scalar["thread_iteration_ms"]),
                     fmt(scalar["gated"], scalar["process_over_thread"],
                         scalar["cpu_count"])))
    return markdown_table(
        ("executor backend", "shape", "steady iteration", "speedup"),
        rows)


def write_step_summary(markdown: str) -> bool:
    """Append a Markdown block to the job's step summary, if in CI.

    Returns True when something was written (useful for logging).
    """
    path = os.environ.get("GITHUB_STEP_SUMMARY")
    if not path:
        return False
    with open(path, "a") as handle:
        handle.write(markdown.rstrip() + "\n\n")
    return True
