"""GitHub Actions step-summary output for the benchmark harness.

CI jobs surface their headline numbers as a Markdown table in the
run's summary page by appending to the file named by the
``GITHUB_STEP_SUMMARY`` environment variable.  Locally (no such
variable) the helpers are no-ops, so benchmark scripts can call them
unconditionally.
"""

from __future__ import annotations

import os
from typing import Iterable, Sequence

__all__ = ["markdown_table", "write_step_summary"]


def markdown_table(header: Sequence[str],
                   rows: Iterable[Sequence[object]]) -> str:
    lines = ["| " + " | ".join(str(c) for c in header) + " |",
             "|" + "|".join(" --- " for _ in header) + "|"]
    for row in rows:
        lines.append("| " + " | ".join(str(c) for c in row) + " |")
    return "\n".join(lines)


def write_step_summary(markdown: str) -> bool:
    """Append a Markdown block to the job's step summary, if in CI.

    Returns True when something was written (useful for logging).
    """
    path = os.environ.get("GITHUB_STEP_SUMMARY")
    if not path:
        return False
    with open(path, "a") as handle:
        handle.write(markdown.rstrip() + "\n\n")
    return True
