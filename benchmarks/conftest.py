"""Shared helpers for the benchmark harness.

Every benchmark regenerates one table or figure of the paper's
evaluation (Section 9): it runs the experiment once under
pytest-benchmark (so ``--benchmark-only`` times the full experiment),
asserts the paper's *qualitative shape*, and writes the measured rows
to ``results/<experiment>.txt`` (summarized in EXPERIMENTS.md).
"""

from __future__ import annotations



def run_experiment(benchmark, fn):
    """Run ``fn`` exactly once under the benchmark timer."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)
