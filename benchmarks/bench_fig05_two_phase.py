"""Figures 5-6: concurrent (two-phase) recompilation.

Paper: phase-1 (the heavy compilation) is hidden behind the running
old instance; only phase-2 is visible, bringing the visible
recompilation time to sub-seconds.  Figure 6 adds AST between the
phases.
"""

from benchmarks.conftest import run_experiment
from repro.experiments import (
    format_rows,
    make_experiment_app,
    maybe_export_trace,
    write_result,
)


def _run():
    experiment = make_experiment_app(
        "BeamFormer", n_nodes=8, initial_nodes=range(8))
    config = experiment.config(range(8), name="cfg2", cut_bias=0.2)
    _, report = experiment.reconfigure_and_run(config, "adaptive",
                                               settle=60.0)
    maybe_export_trace(experiment, "fig05_two_phase")
    timeline = experiment.app.reconfigurations[-1]
    series = experiment.app.series
    phase1 = timeline.phase1_done_at - timeline.requested_at
    phase2 = timeline.phase2_done_at - timeline.state_captured_at
    output_during_phase1 = series.items_between(
        timeline.requested_at, timeline.phase1_done_at)
    ast_wait = timeline.state_captured_at - timeline.phase1_done_at
    # Warm-compile check (after all timings are taken): recompiling the
    # adaptive target must hit the phase-1 cache — the property that
    # lets the Figure 13 tuner revisit configurations cheaply.
    experiment.app.compile(config)
    return {
        "phase1": phase1,
        "phase2": phase2,
        "ast_wait": ast_wait,
        "output_during_phase1": output_during_phase1,
        "downtime": report.downtime,
        "dup_emitted": float(experiment.app.merger.duplicate_emitted),
        "cache_hit_rate": experiment.app.compile_cache.hit_rate(),
    }


def test_fig05_two_phase_compilation(benchmark):
    result = run_experiment(benchmark, _run)
    rows = [
        ("phase-1 (hidden)", "%.2f" % result["phase1"]),
        ("AST wait", "%.2f" % result["ast_wait"]),
        ("phase-2 (visible)", "%.2f" % result["phase2"]),
        ("output items while phase-1 ran",
         "%d" % result["output_during_phase1"]),
        ("downtime", "%.1f" % result["downtime"]),
    ]
    write_result("fig05_two_phase", format_rows(
        ("quantity", "measured (s)"), rows,
        title="Figures 5-6: two-phase recompilation, Beamformer, 8 nodes"))
    # Phase-1 takes seconds but the program kept producing output.
    assert result["phase1"] > 2.0
    assert result["output_during_phase1"] > 0
    # The paper's headline: visible recompilation is sub-second.
    assert result["phase2"] < 1.0
    # AST aims ~3 s ahead (the paper's t).
    assert 1.0 <= result["ast_wait"] <= 10.0
    assert result["downtime"] == 0.0
