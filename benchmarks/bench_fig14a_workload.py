"""Figure 14a: riding out workload fluctuation by adding nodes.

Paper: a benchmark increases the per-item work every 30 seconds
(starting at 100 s).  Without elasticity throughput decays to roughly
half the desired level; with a policy that adds a node whenever
throughput drops below 8,000 items/s, the program holds its target
with only brief disruption.
"""

from benchmarks.conftest import run_experiment
from repro.apps.synthetic import TunableWork
from repro.cluster import Cluster, StreamApp
from repro.compiler import CostModel, partition_even
from repro.experiments import format_rows, write_result
from repro.graph.builders import Pipeline
from repro.graph.library import FIRFilter
from repro.sched import make_schedule

STAGES = 10
BASE_INTENSITY = 30.0
DURATION = 420.0
WORKLOAD_PERIOD = 30.0
WORKLOAD_START = 100.0
WORKLOAD_FACTOR = 1.18
TARGET = 8000.0


def _multiplier_for(blueprint):
    """Re-derive the schedule multiplier for the *current* per-item
    cost — global reoptimization in action: as the workload grows, the
    recompiled schedule shrinks its unrolling to keep iteration work
    (and with it init/drain costs) constant."""
    work = max(make_schedule(blueprint()).steady_work, 1e-9)
    return max(int(15_000.0 / work), 1)


def _make_app(n_nodes):
    """A workload app whose blueprint tracks a mutable intensity."""
    intensity = {"value": BASE_INTENSITY}

    def blueprint():
        elements = []
        for stage in range(STAGES):
            elements.append(TunableWork(intensity["value"],
                                        name="tunable_%d" % stage))
            elements.append(FIRFilter([0.6, 0.4], name="mix_%d" % stage))
        return Pipeline(*elements).flatten()

    cluster = Cluster(n_nodes=n_nodes, cores_per_node=24,
                      cost_model=CostModel())
    app = StreamApp(cluster, blueprint, rate_only=True, name="workload")
    app.launch(partition_even(blueprint(), [0],
                              multiplier=_multiplier_for(blueprint),
                              name="cfg1"))
    return cluster, app, intensity, blueprint


def _workload_driver(env, app, intensity):
    """Raise per-item work every 30 s from t=100 s (paper's schedule)."""
    yield env.timeout(WORKLOAD_START - env.now)
    for _ in range(8):
        intensity["value"] *= WORKLOAD_FACTOR
        for instance in app.instances:
            if instance.status == "running":
                for worker in instance.program.graph.workers:
                    if isinstance(worker, TunableWork):
                        worker.set_intensity(intensity["value"])
        app.note("workload_increase", intensity=intensity["value"])
        yield env.timeout(WORKLOAD_PERIOD)


def _scaling_policy(env, app, blueprint, max_nodes):
    """Add a node (adaptive reconfig) when throughput dips below target."""
    nodes_in_use = 1
    while True:
        yield env.timeout(5.0)
        if app.current is None or app.current.status != "running":
            continue
        recent = app.series.items_between(env.now - 5.0, env.now) / 5.0
        if recent < TARGET and nodes_in_use < max_nodes:
            nodes_in_use += 1
            config = partition_even(
                blueprint(), list(range(nodes_in_use)),
                multiplier=_multiplier_for(blueprint),
                name="%d-nodes" % nodes_in_use)
            done = app.reconfigure(config, strategy="adaptive")
            app.note("node_added", nodes=nodes_in_use)
            yield done


def _run_one(elastic):
    cluster, app, intensity, blueprint = _make_app(n_nodes=4)
    cluster.run(until=60.0)
    cluster.env.process(_workload_driver(cluster.env, app, intensity))
    if elastic:
        cluster.env.process(
            _scaling_policy(cluster.env, app, blueprint, max_nodes=4))
    cluster.run(until=DURATION)
    tail = app.series.items_between(DURATION - 30.0, DURATION) / 30.0
    return {
        "tail_throughput": tail,
        "nodes_added": len(app.event_times("node_added")),
        "downtimes": [r.downtime for r in app.analyze_all(
            horizon_after=30.0)],
    }


def _run():
    return {
        "resource_added": _run_one(elastic=True),
        "no_resource_added": _run_one(elastic=False),
    }


def test_fig14a_workload_fluctuation(benchmark):
    results = run_experiment(benchmark, _run)
    rows = [
        (name, "%.0f" % r["tail_throughput"], r["nodes_added"])
        for name, r in results.items()
    ]
    write_result("fig14a_workload", format_rows(
        ("policy", "final throughput (items/s)", "nodes added"), rows,
        title="Figure 14a: workload increases every %.0f s from %.0f s; "
              "target %.0f items/s" % (WORKLOAD_PERIOD, WORKLOAD_START,
                                       TARGET)))
    with_nodes = results["resource_added"]
    without = results["no_resource_added"]
    # Elastic policy actually scaled out and held (near) the target;
    # the paper's own plot dips below target during transitions, so
    # "held" means within 20%.
    assert with_nodes["nodes_added"] >= 2
    assert with_nodes["tail_throughput"] >= 0.8 * TARGET
    # Without elasticity the program ends well below target...
    assert without["tail_throughput"] < 0.75 * TARGET
    # ...and the elastic run roughly doubles the static one (paper:
    # "slightly more than half of the desired performance level").
    assert with_nodes["tail_throughput"] \
        > 1.4 * without["tail_throughput"]
