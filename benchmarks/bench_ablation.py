"""Ablations of Gloss's design choices (DESIGN.md Section 7).

Not a paper figure: each ablation removes one mechanism and shows the
failure mode it prevents, quantifying why the design needs it.

* two-phase split vs. monolithic recompilation -> visible recompile time
* AST lead time t -> snapshot retries when aimed too close
* fusion / splitter-joiner removal on vs. off -> steady throughput gap
* resource throttling off (= fixed scheme) -> downtime on slow targets
"""


from benchmarks.conftest import run_experiment
from repro.compiler import CostModel
from repro.experiments import format_rows, make_experiment_app, write_result


def _two_phase_vs_monolithic():
    visible = {}
    # Two-phase: visible time is just phase-2.
    experiment = make_experiment_app("BeamFormer", initial_nodes=range(4))
    config = experiment.config(range(4), name="two-phase", cut_bias=0.2)
    experiment.reconfigure_and_run(config, "adaptive", settle=60.0)
    timeline = experiment.app.reconfigurations[-1]
    visible["two_phase"] = timeline.visible_recompilation_seconds
    # Monolithic: stop-and-copy compiles everything on the critical path.
    experiment = make_experiment_app("BeamFormer", initial_nodes=range(4))
    config = experiment.config(range(4), name="monolithic", cut_bias=0.2)
    experiment.reconfigure_and_run(config, "stop_and_copy", settle=60.0)
    timeline = experiment.app.reconfigurations[-1]
    visible["monolithic"] = timeline.visible_recompilation_seconds
    return visible


def _ast_lead_time():
    retries = {}
    for lead in (0.05, 3.0):
        model = CostModel().scaled(ast_lead_time=lead)
        experiment = make_experiment_app(
            "BeamFormer", initial_nodes=range(4), cost_model=model)
        config = experiment.config(range(4), name="lead-%.2f" % lead,
                                   cut_bias=0.15)
        _, report = experiment.reconfigure_and_run(config, "adaptive",
                                                   settle=60.0)
        timeline = experiment.app.reconfigurations[-1]
        retries[lead] = {
            "ast_wait": (timeline.state_captured_at
                         - timeline.phase1_done_at),
            "downtime": report.downtime,
        }
    return retries


def _fusion_ablation():
    from repro.compiler import Configuration
    throughputs = {}
    for fusion in (True, False):
        experiment = make_experiment_app("FilterBank",
                                         initial_nodes=range(2))
        config = experiment.config(range(2), name="fusion-%s" % fusion)
        if not fusion:
            config = Configuration(blobs=config.blobs,
                                   multiplier=config.multiplier,
                                   fusion=False, removal=False,
                                   name=config.name)
        _, report = experiment.reconfigure_and_run(config, "adaptive",
                                                   settle=70.0)
        end = experiment.env.now
        throughputs[fusion] = experiment.throughput_between(end - 20.0, end)
    return throughputs


def _throttling_ablation():
    results = {}
    # Adaptive (throttling on) vs fixed (no throttling, fixed stop).
    for strategy in ("adaptive", "fixed"):
        experiment = make_experiment_app("FMRadio", initial_nodes=range(6))
        config = experiment.config([0, 1], name="slow-%s" % strategy)
        _, report = experiment.reconfigure_and_run(config, strategy,
                                                   settle=90.0)
        results[strategy] = report.downtime
    return results


def _run():
    return {
        "visible_recompilation": _two_phase_vs_monolithic(),
        "ast_lead": _ast_lead_time(),
        "fusion": _fusion_ablation(),
        "throttling_downtime": _throttling_ablation(),
    }


def test_ablations(benchmark):
    results = run_experiment(benchmark, _run)
    rows = [
        ("visible recompilation, two-phase (s)",
         "%.2f" % results["visible_recompilation"]["two_phase"]),
        ("visible recompilation, monolithic (s)",
         "%.2f" % results["visible_recompilation"]["monolithic"]),
        ("AST wait, lead 0.05 s (s)",
         "%.2f" % results["ast_lead"][0.05]["ast_wait"]),
        ("AST wait, lead 3 s (s)",
         "%.2f" % results["ast_lead"][3.0]["ast_wait"]),
        ("throughput with fusion (items/s)",
         "%.0f" % results["fusion"][True]),
        ("throughput without fusion (items/s)",
         "%.0f" % results["fusion"][False]),
        ("slow-target downtime with throttling (s)",
         "%.1f" % results["throttling_downtime"]["adaptive"]),
        ("slow-target downtime without throttling (s)",
         "%.1f" % results["throttling_downtime"]["fixed"]),
    ]
    write_result("ablations", format_rows(
        ("ablation", "value"), rows, title="Design-choice ablations"))
    # Two-phase keeps visible recompilation sub-second; monolithic pays
    # the full compile on the critical path.
    assert results["visible_recompilation"]["two_phase"] < 1.0
    assert results["visible_recompilation"]["monolithic"] > 3.0
    # Both leads succeed (the short lead retries internally with a
    # doubled horizon), and neither causes downtime.
    assert results["ast_lead"][0.05]["downtime"] == 0.0
    assert results["ast_lead"][3.0]["downtime"] == 0.0
    # Fusion + removal buy real steady-state throughput.
    assert results["fusion"][True] > 1.15 * results["fusion"][False]
    # Resource throttling is what eliminates slow-target downtime.
    assert results["throttling_downtime"]["adaptive"] == 0.0
    assert results["throttling_downtime"]["fixed"] > 2.0
