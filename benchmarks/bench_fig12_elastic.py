"""Figure 12: elastic computing — adding and removing nodes live.

Paper: Beamformer and FMRadio on EC2, initially on two nodes; two
nodes are added, two more added, one removed, another removed, one
added — all with adaptive seamless reconfiguration and zero downtime.
Throughput follows the resources.
"""

from benchmarks.conftest import run_experiment
from repro.experiments import format_rows, make_experiment_app, write_result

#: The paper's node schedule: 2 -> 4 -> 6 -> 5 -> 4 -> 5.
NODE_SCHEDULE = (4, 6, 5, 4, 5)


def _elastic(app_name):
    experiment = make_experiment_app(app_name, n_nodes=6,
                                     initial_nodes=[0, 1])
    steps = []
    previous_nodes = 2
    for step, node_count in enumerate(NODE_SCHEDULE):
        before = experiment.env.now
        baseline = experiment.throughput_between(before - 20.0, before)
        config = experiment.config(range(node_count),
                                   name="cfg%d-%dn" % (step + 2, node_count))
        _, report = experiment.reconfigure_and_run(config, "adaptive",
                                                   settle=90.0)
        after = experiment.env.now
        settled = experiment.throughput_between(after - 20.0, after)
        steps.append({
            "nodes_before": previous_nodes,
            "nodes_after": node_count,
            "throughput_before": baseline,
            "throughput_after": settled,
            "downtime": report.downtime,
        })
        previous_nodes = node_count
    return steps


def _run():
    return {
        "BeamFormer": _elastic("BeamFormer"),
        "FMRadio": _elastic("FMRadio"),
    }


def test_fig12_elastic_computing(benchmark):
    results = run_experiment(benchmark, _run)
    rows = []
    for app_name, steps in results.items():
        for step in steps:
            rows.append((
                app_name,
                "%d -> %d" % (step["nodes_before"], step["nodes_after"]),
                "%.0f" % step["throughput_before"],
                "%.0f" % step["throughput_after"],
                "%.1f" % step["downtime"],
            ))
    write_result("fig12_elastic", format_rows(
        ("application", "nodes", "before (items/s)", "after (items/s)",
         "downtime (s)"), rows,
        title="Figure 12: elastic scale-out/in with adaptive "
              "reconfiguration"))
    for app_name, steps in results.items():
        # Zero downtime on every transition — the headline claim.
        for step in steps:
            assert step["downtime"] == 0.0, (app_name, step)
        # Scaling out from 2 to 4 nodes buys substantial throughput.
        first = steps[0]
        assert first["nodes_after"] == 4
        assert first["throughput_after"] \
            > 1.2 * first["throughput_before"], (app_name, first)
        # Beyond that, scaling may saturate (Amdahl: BeamFormer's
        # stateful steering is serial) or be non-monotonic (the
        # nonlinear configuration space that motivates autotuning),
        # but capacity never collapses.
        for step in steps[1:]:
            assert step["throughput_after"] \
                > 0.5 * first["throughput_after"], (app_name, step)
