"""Table 1: throughput-disrupted time and downtime per scheme per app.

Paper (8 nodes, averages over repeated reconfigurations):

    scheme         disrupted (s)  downtime (s)
    stop-and-copy  10.50          8.51
    fixed           5.49          1.92
    adaptive        4.78          0

The qualitative claims we assert: downtime strictly orders
stop-and-copy > fixed > adaptive; adaptive's downtime is exactly zero
for every application; stop-and-copy has the largest disrupted time.
"""


from benchmarks.conftest import run_experiment
from repro.apps import TABLE1_APPS, get_app
from repro.experiments import format_rows, make_experiment_app, write_result

#: Reconfigurations measured per (app, scheme).  The paper uses 100;
#: three keeps the harness fast while still averaging.
RECONFIGS = 3

SCHEMES = ("stop_and_copy", "fixed", "adaptive")

#: Alternating target configurations of comparable capacity, so "full
#: throughput" stays meaningful across repeats.
TARGETS = [
    dict(nodes=range(8), cut_bias=0.15),
    dict(nodes=range(8), cut_bias=-0.15),
    dict(nodes=range(1, 8), cut_bias=0.0),
]


def _measure(app_name, scheme):
    experiment = make_experiment_app(app_name, initial_nodes=range(8))
    disrupted, downtime = [], []
    for i in range(RECONFIGS):
        target = TARGETS[i % len(TARGETS)]
        config = experiment.config(target["nodes"],
                                   name="%s-%d" % (scheme, i),
                                   cut_bias=target["cut_bias"])
        _, report = experiment.reconfigure_and_run(config, scheme,
                                                   settle=75.0)
        disrupted.append(report.disrupted_time)
        downtime.append(report.downtime)
    return (sum(disrupted) / len(disrupted), sum(downtime) / len(downtime))


def _run():
    results = {}
    for app_name in TABLE1_APPS:
        for scheme in SCHEMES:
            results[(app_name, scheme)] = _measure(app_name, scheme)
    return results


def test_table1_scheme_comparison(benchmark):
    results = run_experiment(benchmark, _run)
    rows = []
    for app_name in TABLE1_APPS:
        stateful = "stateful" if get_app(app_name).stateful else "stateless"
        row = [app_name, stateful]
        for scheme in SCHEMES:
            disrupted, downtime = results[(app_name, scheme)]
            row.extend(["%.2f" % disrupted, "%.2f" % downtime])
        rows.append(row)
    averages = ["Average", ""]
    for scheme in SCHEMES:
        values = [results[(a, scheme)] for a in TABLE1_APPS]
        averages.extend([
            "%.2f" % (sum(v[0] for v in values) / len(values)),
            "%.2f" % (sum(v[1] for v in values) / len(values)),
        ])
    rows.append(averages)
    write_result("table1_comparison", format_rows(
        ("application", "state",
         "s&c disrupted", "s&c down",
         "fixed disrupted", "fixed down",
         "adaptive disrupted", "adaptive down"), rows,
        title="Table 1: avg disrupted time / downtime (s), %d reconfigs "
              "per cell, 8 nodes" % RECONFIGS))

    def scheme_average(scheme, index):
        values = [results[(a, scheme)][index] for a in TABLE1_APPS]
        return sum(values) / len(values)

    # Adaptive eliminates downtime for every single application.
    for app_name in TABLE1_APPS:
        assert results[(app_name, "adaptive")][1] == 0.0, app_name
    # Downtime ordering: stop-and-copy > fixed > adaptive (= 0).
    assert scheme_average("stop_and_copy", 1) > scheme_average("fixed", 1)
    assert scheme_average("fixed", 1) > scheme_average("adaptive", 1)
    # Stop-and-copy also disrupts throughput longest on average.
    assert scheme_average("stop_and_copy", 0) >= scheme_average("adaptive", 0)
