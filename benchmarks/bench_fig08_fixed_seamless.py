"""Figure 8: the failure modes of *fixed* seamless reconfiguration.

(a) Moving from a fast configuration to a slow one: the old instance
    finishes its duplicated input before the new one has ramped up —
    downtime appears.
(b) Moving from a slow configuration to a fast one: the new instance's
    held-back output floods out when the old instance stops — an
    output-rate spike.

Both are exactly what adaptive seamless reconfiguration then
eliminates (checked here as the control).
"""

from benchmarks.conftest import run_experiment
from repro.experiments import format_rows, make_experiment_app, write_result


def _high_to_low(strategy):
    experiment = make_experiment_app("FMRadio", initial_nodes=range(6))
    config = experiment.config([0, 1], name="slow-2nodes")
    _, report = experiment.reconfigure_and_run(config, strategy, settle=90.0)
    return report


def _low_to_high(strategy):
    experiment = make_experiment_app("FMRadio", initial_nodes=[0, 1])
    config = experiment.config(range(6), name="fast-6nodes")
    _, report = experiment.reconfigure_and_run(config, strategy, settle=90.0)
    return report


def _run():
    return {
        "fixed_high_low": _high_to_low("fixed"),
        "fixed_low_high": _low_to_high("fixed"),
        "adaptive_high_low": _high_to_low("adaptive"),
        "adaptive_low_high": _low_to_high("adaptive"),
    }


def test_fig08_fixed_seamless_issues(benchmark):
    reports = run_experiment(benchmark, _run)
    rows = []
    for key, report in reports.items():
        rows.append((key, "%.1f" % report.downtime,
                     "%.0f" % report.max_throughput,
                     "%.0f" % report.full_throughput,
                     "yes" if report.has_spike else "no"))
    write_result("fig08_fixed_seamless", format_rows(
        ("scenario", "downtime (s)", "peak (items/s)", "full (items/s)",
         "spike"), rows,
        title="Figure 8: fixed seamless failure modes (FMRadio)"))
    # (a) fast -> slow under the fixed scheme: downtime appears.
    assert reports["fixed_high_low"].downtime > 0.0
    # (b) slow -> fast under the fixed scheme: an output spike.
    assert reports["fixed_low_high"].has_spike
    # Adaptive control: high->low downtime eliminated...
    assert reports["adaptive_high_low"].downtime == 0.0
    # ...and low->high has no held-back flood: its peak stays well
    # below the fixed scheme's spike.
    assert reports["adaptive_low_high"].max_throughput \
        < 0.7 * reports["fixed_low_high"].max_throughput
    assert reports["adaptive_low_high"].downtime == 0.0
