"""Figure 4: time breakdown of stop-and-copy reconfiguration.

Paper: reconfiguring Beamformer (stateful) from two to three nodes
with stop-and-copy spends ~5 s draining, ~6 s compiling and ~3 s
initializing — ~14 s of downtime in total.
"""

from benchmarks.conftest import run_experiment
from repro.experiments import (
    format_rows,
    make_experiment_app,
    maybe_export_trace,
    write_result,
)


def _run():
    experiment = make_experiment_app("BeamFormer", initial_nodes=[0, 1])
    config = experiment.config([0, 1, 2], name="cfg2-3nodes")
    _, report = experiment.reconfigure_and_run(config, "stop_and_copy",
                                               settle=60.0)
    maybe_export_trace(experiment, "fig04_stop_and_copy")
    timeline = experiment.app.reconfigurations[-1]
    drain = timeline.drained_at - timeline.requested_at
    compile_seconds = timeline.phase1_done_at - timeline.drained_at
    first_output = experiment.app.series.first_emission_after(
        timeline.phase1_done_at)
    init = first_output - timeline.phase1_done_at
    return {
        "drain": drain,
        "compile": compile_seconds,
        "init": init,
        "total": first_output - timeline.requested_at,
        "downtime": report.downtime,
        "dup_emitted": float(experiment.app.merger.duplicate_emitted),
    }


def test_fig04_stop_and_copy_breakdown(benchmark):
    result = run_experiment(benchmark, _run)
    rows = [
        ("draining", "5", "%.1f" % result["drain"]),
        ("compilation", "6", "%.1f" % result["compile"]),
        ("initialization", "3", "%.1f" % result["init"]),
        ("total downtime", "14", "%.1f" % result["total"]),
    ]
    write_result("fig04_stop_and_copy", format_rows(
        ("phase", "paper (s)", "measured (s)"), rows,
        title="Figure 4: stop-and-copy breakdown, Beamformer 2->3 nodes"))
    # Shape: every phase contributes seconds; drain and compile dominate.
    assert 2.0 <= result["drain"] <= 12.0
    assert 3.0 <= result["compile"] <= 12.0
    assert 1.0 <= result["init"] <= 8.0
    assert 8.0 <= result["total"] <= 25.0
    assert result["downtime"] >= 5.0
