"""Figure 14b: reconfiguration time vs. program state size.

Paper: on 8 nodes, sweeping the program state from 0.1 MB to 12.8 MB
does not significantly change adaptive reconfiguration time, because
asynchronous state transfer moves the state off the critical path.
"""

from benchmarks.conftest import run_experiment
from repro.experiments import format_rows, make_experiment_app, write_result

#: State sizes in MB (the paper's x axis: 0.1 .. 12.8, powers of two).
STATE_MB = (0.1, 0.4, 1.6, 6.4, 12.8)


def _measure(state_mb):
    state_items = int(state_mb * 1e6 / 8)  # 8 bytes per float
    experiment = make_experiment_app(
        "Synthetic", initial_nodes=range(8),
        blueprint_kwargs={"state_items": state_items})
    config = experiment.config(range(8), name="resize", cut_bias=0.2)
    _, report = experiment.reconfigure_and_run(config, "adaptive",
                                               settle=90.0)
    timeline = experiment.app.reconfigurations[-1]
    return {
        "reconfig_seconds": timeline.total_seconds,
        "state_bytes": timeline.state_bytes,
        "downtime": report.downtime,
    }


def _run():
    return {mb: _measure(mb) for mb in STATE_MB}


def test_fig14b_state_size(benchmark):
    results = run_experiment(benchmark, _run)
    rows = [
        ("%.1f" % mb,
         "%.2f" % (r["state_bytes"] / 1e6),
         "%.2f" % r["reconfig_seconds"],
         "%.1f" % r["downtime"])
        for mb, r in sorted(results.items())
    ]
    write_result("fig14b_state_size", format_rows(
        ("state (MB)", "captured (MB)", "reconfig time (s)",
         "downtime (s)"), rows,
        title="Figure 14b: adaptive reconfiguration time vs state size, "
              "8 nodes"))
    times = [r["reconfig_seconds"] for r in results.values()]
    # The state size really swept two orders of magnitude...
    sizes = [r["state_bytes"] for r in results.values()]
    assert max(sizes) > 30 * min(sizes)
    # ...but reconfiguration time does not significantly change
    # (paper: "the size of the program state does not significantly
    # affect reconfiguration time").
    assert max(times) < 1.8 * min(times)
    for r in results.values():
        assert r["downtime"] == 0.0
