"""Figure 11: Gloss vs. VM live migration (vMotion).

Paper: moving one of a stream program's two nodes to a new physical
host via vMotion causes 21 s (FMRadio) / 27 s (Beamformer) of
downtime — streaming programs dirty memory faster than pre-copy can
converge, triggering stun-during-page-send and a long final
stop-and-copy.  Gloss's adaptive seamless reconfiguration performs the
same move with zero downtime and a positive minimum throughput.
"""

from benchmarks.conftest import run_experiment
from repro.baselines import VMMigrationModel, migrate_instance
from repro.experiments import format_rows, make_experiment_app, write_result


def _vmotion(app_name):
    experiment = make_experiment_app(app_name, n_nodes=3,
                                     initial_nodes=[0, 1])
    model = VMMigrationModel(memory_bytes=24e9, bandwidth=1.25e9,
                             dirty_bytes_per_item=1e6)
    process = experiment.env.process(migrate_instance(experiment.app, model))
    experiment.run_until(experiment.env.now + 200.0)
    if not process.triggered:
        raise RuntimeError("migration did not finish")
    blackout = experiment.app.event_times("migration_blackout_start")[0]
    return experiment.app.analyze(blackout, blackout + 120.0)


def _gloss(app_name):
    experiment = make_experiment_app(app_name, n_nodes=3,
                                     initial_nodes=[0, 1])
    # Move the second node's work to the fresh node 2.
    config = experiment.config([0, 2], name="moved")
    _, report = experiment.reconfigure_and_run(config, "adaptive",
                                               settle=120.0)
    return report


def _run():
    return {
        ("FMRadio", "vmotion"): _vmotion("FMRadio"),
        ("FMRadio", "gloss"): _gloss("FMRadio"),
        ("BeamFormer", "vmotion"): _vmotion("BeamFormer"),
        ("BeamFormer", "gloss"): _gloss("BeamFormer"),
    }


def test_fig11_gloss_vs_vmotion(benchmark):
    reports = run_experiment(benchmark, _run)
    rows = [
        (app, kind, "%.1f" % r.downtime, "%.0f" % r.min_throughput)
        for (app, kind), r in reports.items()
    ]
    write_result("fig11_vs_vmotion", format_rows(
        ("application", "mechanism", "downtime (s)", "min throughput"),
        rows,
        title="Figure 11: vMotion migration vs Gloss adaptive "
              "reconfiguration (paper: 21-27 s vs 0 s downtime)"))
    for app_name in ("FMRadio", "BeamFormer"):
        vmotion = reports[(app_name, "vmotion")]
        gloss = reports[(app_name, "gloss")]
        # vMotion blacks out for many seconds...
        assert vmotion.downtime >= 5.0, app_name
        # ...Gloss keeps producing throughout.
        assert gloss.downtime == 0.0, app_name
        assert gloss.min_throughput > 0.0, app_name
