"""Figure 10: overhead of adaptive seamless reconfiguration.

Paper: FMRadio on 8 nodes, reconfigured three times *into the same
configuration* (so any throughput change is reconfiguration overhead,
not the new configuration's properties).  Old and new instances
overlapped ~7.2 s on average; throughput dipped ~27% during the
process; downtime was zero.
"""

from benchmarks.conftest import run_experiment
from repro.experiments import format_rows, make_experiment_app, write_result


def _run():
    experiment = make_experiment_app("FMRadio", initial_nodes=range(8))
    app = experiment.app
    results = []
    for i in range(3):
        config = experiment.config(range(8), name="same-%d" % (i + 1))
        before = experiment.env.now
        full = experiment.throughput_between(before - 30.0, before)
        start, report = experiment.reconfigure_and_run(
            config, "adaptive", settle=70.0)
        timeline = app.reconfigurations[-1]
        during = experiment.throughput_between(
            timeline.new_started_at, timeline.old_stopped_at) \
            if timeline.overlap_seconds > 0 else full
        results.append({
            "overlap": timeline.overlap_seconds,
            "dip_percent": 100.0 * max(1.0 - during / full, 0.0),
            "downtime": report.downtime,
        })
    return results


def test_fig10_reconfiguration_overhead(benchmark):
    results = run_experiment(benchmark, _run)
    rows = [
        ("reconfig %d" % (i + 1), "%.1f" % r["overlap"],
         "%.0f%%" % r["dip_percent"], "%.1f" % r["downtime"])
        for i, r in enumerate(results)
    ]
    mean_overlap = sum(r["overlap"] for r in results) / len(results)
    mean_dip = sum(r["dip_percent"] for r in results) / len(results)
    rows.append(("average (paper: 7.2 s, 27%%, 0 s)",
                 "%.1f" % mean_overlap, "%.0f%%" % mean_dip, "0.0"))
    write_result("fig10_overhead", format_rows(
        ("event", "overlap (s)", "throughput dip", "downtime (s)"), rows,
        title="Figure 10: adaptive reconfiguration into the same "
              "configuration, FMRadio, 8 nodes"))
    for r in results:
        # No downtime despite recompiling and running two instances.
        assert r["downtime"] == 0.0
        # The instances genuinely overlap...
        assert r["overlap"] > 1.0
        # ...and the dip is noticeable but bounded (paper: 27%).
        assert 3.0 <= r["dip_percent"] <= 60.0
