"""FilterBank: multi-rate analysis/synthesis filter bank (stateless).

The StreamIt benchmark: the signal is duplicated into N bands; each
band is band-pass filtered, decimated, re-expanded and reconstruction
filtered; the bands are summed.  All FIRs peek, so the whole graph is
stateless with substantial peeking-buffer state — a good stress of
implicit state transfer.
"""

from __future__ import annotations

import math
from typing import Callable

from repro.apps import AppSpec
from repro.graph.builders import Pipeline, SplitJoin
from repro.graph.topology import StreamGraph
from repro.graph.workers import DuplicateSplitter, Filter, RoundRobinJoiner
from repro.graph.library import Decimator, Expander, FIRFilter
from repro.apps.fmradio import low_pass_taps

__all__ = ["APP", "blueprint"]


class BandSummer(Filter):
    """Sum N band contributions per output sample."""

    vector_items = True

    def __init__(self, bands: int):
        super().__init__(pop=bands, push=1, work_estimate=0.3 * bands,
                         name="band_summer")
        self.bands = bands

    def work(self, input, output) -> None:
        total = 0.0
        for _ in range(self.bands):
            total += input.pop()
        output.push(total)

    def work_batch(self, inputs, outputs, n_firings) -> None:
        # Per-band accumulation from an explicit zero keeps the scalar
        # loop's left-to-right association (np.sum would reassociate).
        rows = inputs[0].reshape(n_firings, self.bands)
        out = outputs[0]
        out[...] = 0.0
        for band in range(self.bands):
            out += rows[:, band]


def band_pass_taps(center: float, taps: int):
    """Modulated low-pass => band-pass coefficients."""
    base = low_pass_taps(0.3, taps)
    return [
        2.0 * c * math.cos(center * (i - (taps - 1) / 2.0))
        for i, c in enumerate(base)
    ]


def blueprint(scale: int = 1, bands: int = None, taps: int = None,
              decimation: int = 2) -> Callable[[], StreamGraph]:
    n_bands = bands if bands is not None else 6 + 2 * scale
    n_taps = taps if taps is not None else 16 * scale

    def build() -> StreamGraph:
        branches = []
        for band in range(n_bands):
            center = 0.2 + 2.5 * band / n_bands
            branches.append(Pipeline(
                FIRFilter(band_pass_taps(center, n_taps),
                          name="bp_%d" % band),
                Decimator(decimation, name="down_%d" % band),
                Expander(decimation, name="up_%d" % band),
                FIRFilter(low_pass_taps(math.pi / decimation, n_taps),
                          name="recon_%d" % band),
            ))
        return Pipeline(
            SplitJoin(
                DuplicateSplitter(n_bands),
                *branches,
                RoundRobinJoiner(n_bands),
            ),
            BandSummer(n_bands),
        ).flatten()

    return build


APP = AppSpec(
    name="FilterBank",
    blueprint_factory=blueprint,
    stateful=False,
    description="Multi-rate analysis/synthesis filter bank (stateless)",
)
