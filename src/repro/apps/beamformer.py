"""Beamformer: multi-channel sensor-array beam forming (stateful).

The StreamIt beamformer: per-channel coarse/fine decimating FIR
stages, then per-beam steering (complex multiply-accumulate against
beam weights) and detection.  The paper classifies its version as
*stateful*: our steering filters adapt their weights as data flows
(a running gain estimate), so reconfiguration must move real worker
state through asynchronous state transfer.
"""

from __future__ import annotations

import math
from typing import Callable

from repro.apps import AppSpec
from repro.graph.builders import Pipeline, SplitJoin
from repro.graph.topology import StreamGraph
from repro.graph.workers import (
    DuplicateSplitter,
    Filter,
    RoundRobinJoiner,
    RoundRobinSplitter,
    StatefulFilter,
)
from repro.graph.library import FIRFilter

try:
    import numpy as _np
except ImportError:  # pragma: no cover - the toolchain bakes numpy in
    _np = None

__all__ = ["APP", "blueprint"]


class InputConditioner(Filter):
    """Per-channel input conditioning (gain + DC removal, stateless)."""

    vector_items = True

    def __init__(self, channel: int):
        super().__init__(pop=1, push=1, peek=2, work_estimate=1.0,
                         name="condition_%d" % channel)
        self.channel = channel

    def work(self, input, output) -> None:
        current = input.peek(0)
        following = input.peek(1)
        input.pop()
        output.push(current - 0.5 * (current + following) * 0.1
                    + 0.01 * self.channel)

    def work_batch(self, inputs, outputs, n_firings) -> None:
        window = inputs[0]
        current = window[:n_firings]
        following = window[1:n_firings + 1]
        _np.add(current - 0.5 * (current + following) * 0.1,
                0.01 * self.channel, out=outputs[0])


class AdaptiveSteering(StatefulFilter):
    """Beam steering with an adapting gain — the stateful core.

    Keeps a running energy estimate per beam and adapts its gain
    toward a target level; both are explicit worker state that AST
    must capture and transfer.
    """

    state_fields = ("gain", "energy")

    def __init__(self, beam: int, window: int):
        super().__init__(pop=window, push=1, work_estimate=1.5 * window,
                         name="steer_%d" % beam)
        self.beam = beam
        self.window = window
        self.weights = [
            math.cos(2.0 * math.pi * beam * tap / window)
            for tap in range(window)
        ]
        self.gain = 1.0
        self.energy = 0.0

    vector_items = True

    def work(self, input, output) -> None:
        total = 0.0
        for weight in self.weights:
            total += weight * input.pop()
        self.energy = 0.99 * self.energy + 0.01 * total * total
        self.gain += 0.001 * (1.0 - self.energy)
        output.push(total * self.gain)

    def work_batch(self, inputs, outputs, n_firings) -> None:
        # The window dot products (the expensive part) vectorize as
        # per-tap accumulation; the energy/gain recurrence is a cheap
        # sequential chain kept in scalar Python so the adapted state
        # matches the per-firing oracle bit-for-bit.
        rows = inputs[0].reshape(n_firings, self.window)
        totals = _np.zeros(n_firings)
        for tap, weight in enumerate(self.weights):
            totals += weight * rows[:, tap]
        energy = self.energy
        gain = self.gain
        out = outputs[0]
        for row, total in enumerate(totals.tolist()):
            energy = 0.99 * energy + 0.01 * total * total
            gain += 0.001 * (1.0 - energy)
            out[row] = total * gain
        self.energy = energy
        self.gain = gain


class Magnitude(Filter):
    """Beam output detection (stateless)."""

    def __init__(self, beam: int):
        super().__init__(pop=1, push=1, work_estimate=1.0,
                         name="magnitude_%d" % beam)

    vector_items = True

    def work(self, input, output) -> None:
        value = input.pop()
        output.push(abs(value))

    def work_batch(self, inputs, outputs, n_firings) -> None:
        _np.abs(inputs[0], out=outputs[0])


def blueprint(scale: int = 1, channels: int = None,
              beams: int = None) -> Callable[[], StreamGraph]:
    """Beamformer factory.

    ``channels`` sensor channels are conditioned and decimated, then
    ``beams`` beams are steered from the combined stream.
    """
    n_channels = channels if channels is not None else 4 + 2 * scale
    n_beams = beams if beams is not None else 4 + 2 * scale
    coarse_taps = 8 * scale
    fine_taps = 4 * scale

    def build() -> StreamGraph:
        channel_branches = [
            Pipeline(
                InputConditioner(c),
                FIRFilter([1.0 / coarse_taps] * coarse_taps,
                          name="coarse_%d" % c),
                FIRFilter([1.0 / fine_taps] * fine_taps,
                          name="fine_%d" % c),
            )
            for c in range(n_channels)
        ]
        beam_branches = [
            Pipeline(
                AdaptiveSteering(b, window=n_channels),
                Magnitude(b),
            )
            for b in range(n_beams)
        ]
        return Pipeline(
            SplitJoin(
                RoundRobinSplitter(n_channels),
                *channel_branches,
                RoundRobinJoiner(n_channels),
            ),
            SplitJoin(
                DuplicateSplitter(n_beams),
                *beam_branches,
                RoundRobinJoiner(n_beams),
            ),
        ).flatten()

    return build


APP = AppSpec(
    name="BeamFormer",
    blueprint_factory=blueprint,
    stateful=True,
    description="Sensor-array beamformer with adaptive steering (stateful)",
)
