"""The paper's benchmark applications, rebuilt as SDF stream graphs.

Six StreamIt/StreamJIT benchmarks used in Table 1 — Beamformer and
Vocoder (stateful), TDE_PP, FMRadio, SAR and FilterBank (stateless) —
plus the two real-world applications of Section 8 (the LTE-A uplink
transceiver and the DVB-T2 receiver), configurable synthetic
workloads for the state-size and workload-fluctuation experiments,
and a keyed-aggregation app exercising splittable keyed state (the
fluid migration demo).

Each application module exposes a ``blueprint(scale)`` factory
returning a zero-argument graph constructor, plus a module-level
:data:`AppSpec`.  ``scale`` widens the graph (the paper uses "scaled
up versions of the original benchmark applications").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict

from repro.graph.topology import StreamGraph

__all__ = [
    "AppSpec",
    "TABLE1_APPS",
    "app_registry",
    "default_input",
    "get_app",
]


def default_input(index: int) -> float:
    """The deterministic input signal shared by all applications."""
    return ((index * 37 + 11) % 1000) / 1000.0 - 0.5


@dataclass(frozen=True)
class AppSpec:
    """A named, scalable benchmark application."""

    name: str
    blueprint_factory: Callable[..., Callable[[], StreamGraph]]
    stateful: bool
    description: str = ""
    input_fn: Callable[[int], Any] = default_input

    def blueprint(self, scale: int = 1, **kwargs) -> Callable[[], StreamGraph]:
        return self.blueprint_factory(scale=scale, **kwargs)


def app_registry() -> Dict[str, AppSpec]:
    """All registered applications by name."""
    from repro.apps import (
        beamformer, dvbt2, filterbank, fmradio, keyed, lte, sar, synthetic,
        tde, vocoder,
    )
    specs = [
        beamformer.APP,
        vocoder.APP,
        tde.APP,
        fmradio.APP,
        sar.APP,
        filterbank.APP,
        lte.APP,
        dvbt2.APP,
        synthetic.APP,
        keyed.APP,
    ]
    return {spec.name: spec for spec in specs}


#: The six applications of Table 1, in the paper's row order.
TABLE1_APPS = ("BeamFormer", "Vocoder", "TDE_PP", "FMRadio", "SAR",
               "FilterBank")


def get_app(name: str) -> AppSpec:
    registry = app_registry()
    try:
        return registry[name]
    except KeyError:
        raise KeyError(
            "unknown app %r (have: %s)" % (name, ", ".join(sorted(registry)))
        ) from None
