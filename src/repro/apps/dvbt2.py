"""DVB-T2 receiver (paper Section 8.2).

FFT, channel estimator, frequency deinterleaver, cell deinterleaver,
constellation derotation, forward error correction, frame
multiplexer, bit deinterleaver and LDPC-style decoder.  The paper
notes its output is bursty ("produces output in burst for every 2
seconds because of its high peek and pop rates"), which we reproduce
by giving the front stages very large pop rates relative to the rest
of the graph.
"""

from __future__ import annotations

import math
from typing import Callable, List

from repro.apps import AppSpec
from repro.graph.builders import Pipeline
from repro.graph.topology import StreamGraph
from repro.graph.workers import Filter
from repro.graph.library import BlockTransform
from repro.apps.tde import dft

__all__ = ["APP", "blueprint"]


def _channel_estimate(pairs: List[float]) -> List[float]:
    """Flatten the channel using pilot-cell averages (simplified)."""
    energy = sum(p * p for p in pairs) / max(len(pairs), 1)
    gain = 1.0 / math.sqrt(energy + 1e-9)
    return [p * gain for p in pairs]


def _derotate(pairs: List[float]) -> List[float]:
    out: List[float] = []
    for k in range(0, len(pairs), 2):
        re, im = pairs[k], pairs[k + 1]
        angle = -0.25 * math.pi
        out.append(re * math.cos(angle) - im * math.sin(angle))
        out.append(re * math.sin(angle) + im * math.cos(angle))
    return out


def _deinterleave(block: List[float], stride: int) -> List[float]:
    n = len(block)
    return [block[(i * stride) % n] for i in range(n)]


def _fec(block: List[float]) -> List[float]:
    """Forward error correction: 3-sample averaging (rate 1/3)."""
    out: List[float] = []
    for i in range(0, len(block), 3):
        out.append((block[i] + block[i + 1] + block[i + 2]) / 3.0)
    return out


def _ldpc_decode(block: List[float]) -> List[float]:
    """LDPC-style iterative threshold decoding (two sweeps)."""
    beliefs = list(block)
    for _ in range(2):
        beliefs = [
            0.5 * b + 0.25 * beliefs[i - 1] + 0.25 * beliefs[(i + 1) % len(beliefs)]
            for i, b in enumerate(beliefs)
        ]
    return [1.0 if b > 0.0 else 0.0 for b in beliefs]


class FrameMultiplexer(Filter):
    """Select the data PLP out of interleaved frames (high pop rate)."""

    def __init__(self, frames: int, payload: int):
        super().__init__(pop=frames * payload, push=payload,
                         work_estimate=0.2 * frames * payload,
                         name="frame_mux")
        self.frames = frames
        self.payload = payload

    vector_items = True

    def work(self, input, output) -> None:
        kept: List[float] = []
        for frame in range(self.frames):
            for i in range(self.payload):
                value = input.pop()
                if frame == 0:
                    kept.append(value)
        for value in kept:
            output.push(value)

    def work_batch(self, inputs, outputs, n_firings) -> None:
        rows = inputs[0].reshape(n_firings, self.frames * self.payload)
        outputs[0].reshape(n_firings, self.payload)[...] = (
            rows[:, :self.payload])


def blueprint(scale: int = 1, fft: int = None,
              frames: int = None) -> Callable[[], StreamGraph]:
    fft_size = fft if fft is not None else 16
    n_frames = frames if frames is not None else 3 + scale

    def build() -> StreamGraph:
        return Pipeline(
            BlockTransform(pop=fft_size, push=2 * fft_size, fn=dft,
                           work_estimate=2.0 * fft_size * fft_size,
                           name="fft"),
            BlockTransform(pop=2 * fft_size, push=2 * fft_size,
                           fn=_channel_estimate,
                           work_estimate=2.0 * fft_size,
                           name="channel_estimator"),
            BlockTransform(pop=2 * fft_size, push=2 * fft_size,
                           fn=lambda b: _deinterleave(b, 5),
                           work_estimate=1.0 * fft_size,
                           name="frequency_deinterleaver"),
            BlockTransform(pop=2 * fft_size, push=2 * fft_size,
                           fn=lambda b: _deinterleave(b, 9),
                           work_estimate=1.0 * fft_size,
                           name="cell_deinterleaver"),
            BlockTransform(pop=2 * fft_size, push=2 * fft_size,
                           fn=_derotate,
                           work_estimate=2.0 * fft_size,
                           name="constellation_derotation"),
            BlockTransform(pop=6 * fft_size, push=2 * fft_size, fn=_fec,
                           work_estimate=3.0 * fft_size,
                           name="forward_error_correction"),
            FrameMultiplexer(frames=n_frames, payload=2 * fft_size),
            BlockTransform(pop=2 * fft_size, push=2 * fft_size,
                           fn=lambda b: _deinterleave(b, 7),
                           work_estimate=1.0 * fft_size,
                           name="bit_deinterleaver"),
            BlockTransform(pop=2 * fft_size, push=2 * fft_size,
                           fn=_ldpc_decode,
                           work_estimate=6.0 * fft_size,
                           name="ldpc_decoder"),
        ).flatten()

    return build


APP = AppSpec(
    name="DVB-T2",
    blueprint_factory=blueprint,
    stateful=False,
    description="DVB-T2 receiver with bursty high-rate front end",
)
