"""Synthetic workloads for the controlled experiments.

* :func:`blueprint` — a parameterizable pipeline whose per-item cost
  (``intensity``) and state size (``state_items``) are free knobs.
  Drives the state-size experiment (paper Figure 14b).
* :class:`TunableWork` — a stateless filter whose work estimate can be
  raised *while the program runs*, modelling the workload increases of
  the workload-fluctuation experiment (paper Figure 14a, "increases
  the work required to process each data item every 30 seconds").
"""

from __future__ import annotations

import math
from typing import Callable, List

from repro.apps import AppSpec
from repro.graph.builders import Pipeline, SplitJoin
from repro.graph.topology import StreamGraph
from repro.graph.workers import Filter, RoundRobinJoiner, RoundRobinSplitter
from repro.graph.library import ArrayStateFilter, FIRFilter, HeavyCompute

__all__ = ["APP", "TunableWork", "blueprint", "workload_blueprint"]


class TunableWork(Filter):
    """Stateless filter whose cost is adjustable at runtime.

    The cluster's cost model reads ``work_estimate`` at every
    iteration, so raising it mid-run immediately slows the hosting
    blob — a clean model of "the work required to process each data
    item" increasing.
    """

    def __init__(self, intensity: float = 1.0, name: str = None):
        super().__init__(pop=1, push=1, work_estimate=intensity,
                         name=name or "tunable")

    vector_items = True

    def set_intensity(self, intensity: float) -> None:
        self.work_estimate = max(intensity, 0.01)

    def work(self, input, output) -> None:
        value = input.pop()
        output.push(value + math.tanh(value))

    def work_batch(self, inputs, outputs, n_firings) -> None:
        # tanh stays a math.tanh loop: NumPy's SIMD tanh rounds
        # differently from libm and would break byte-identity.
        outputs[0][...] = [value + math.tanh(value)
                           for value in inputs[0].tolist()]


def blueprint(scale: int = 1, depth: int = None, lanes: int = None,
              intensity: float = 2.0,
              state_items: int = 0) -> Callable[[], StreamGraph]:
    """A generic pipeline-of-splitjoins synthetic app.

    ``state_items`` > 0 inserts an :class:`ArrayStateFilter` carrying
    ``8 * state_items`` bytes of worker state (the Figure 14b knob).
    """
    n_depth = depth if depth is not None else 3 + scale
    n_lanes = lanes if lanes is not None else 4

    def build() -> StreamGraph:
        elements: List = [FIRFilter([0.25, 0.5, 0.25], name="front")]
        for level in range(n_depth):
            branches = [
                Pipeline(
                    HeavyCompute(intensity, name="work_%d_%d" % (level, lane)),
                    FIRFilter([0.5, 0.5], name="smooth_%d_%d" % (level, lane)),
                )
                for lane in range(n_lanes)
            ]
            elements.append(SplitJoin(
                RoundRobinSplitter(n_lanes),
                *branches,
                RoundRobinJoiner(n_lanes),
            ))
        if state_items > 0:
            elements.append(ArrayStateFilter(state_items, name="big_state"))
        elements.append(HeavyCompute(intensity, name="back"))
        return Pipeline(*elements).flatten()

    return build


def workload_blueprint(scale: int = 1,
                       stages: int = None) -> Callable[[], StreamGraph]:
    """Pipeline of :class:`TunableWork` stages for Figure 14a.

    The returned graphs expose their tunable filters via the
    ``tunable_workers(graph)`` helper so the experiment driver can
    ratchet the intensity up every 30 simulated seconds.
    """
    n_stages = stages if stages is not None else 6 + 2 * scale

    def build() -> StreamGraph:
        elements: List = []
        for stage in range(n_stages):
            elements.append(TunableWork(1.0, name="tunable_%d" % stage))
            elements.append(FIRFilter([0.6, 0.4], name="mix_%d" % stage))
        return Pipeline(*elements).flatten()

    return build


def tunable_workers(graph: StreamGraph) -> List[TunableWork]:
    return [w for w in graph.workers if isinstance(w, TunableWork)]


APP = AppSpec(
    name="Synthetic",
    blueprint_factory=blueprint,
    stateful=False,
    description="Parameterizable synthetic pipeline (state-size knob)",
)
