"""LTE-A uplink transceiver (paper Section 8.1).

Transmitter (turbo-style encoder, outer interleaver, 64-QAM
modulator, FFT, subcarrier mapper, IFFT), a 2x2 MIMO channel with
spatial multiplexing, and the receiver chain (subcarrier demapper,
MIMO equalizer, demodulator, outer deinterleaver, decoder).  The
paper uses it (stateless) for the whole-program migration experiment
(Figure 15a).

The blocks are simplified but genuinely inverse of one another: the
deinterleavers use modular-inverse strides, the equalizer inverts the
deterministic channel matrix, and the FFT/IFFT pairs round-trip — so
the receiver reconstructs the transmitted bits exactly (the QAM
demodulator's level rounding absorbs float error), which the tests
assert end to end.
"""

from __future__ import annotations

import math
from typing import Callable, List

from repro.apps import AppSpec
from repro.graph.builders import Pipeline, SplitJoin
from repro.graph.topology import StreamGraph
from repro.graph.workers import RoundRobinJoiner, RoundRobinSplitter
from repro.graph.library import BlockTransform
from repro.apps.tde import dft, idft

__all__ = ["APP", "blueprint"]


def _encode(block: List[float]) -> List[float]:
    """Rate-1/3 systematic encoding with running parity (stateless)."""
    out: List[float] = []
    parity1 = 0.0
    parity2 = 0.0
    for x in block:
        bit = 1.0 if x > 0.5 else 0.0
        parity1 = (parity1 + bit) % 2.0
        parity2 = (parity2 + bit + 1.0) % 2.0
        out.extend((bit, parity1, parity2))
    return out


def _decode(block: List[float]) -> List[float]:
    """Recover the systematic bits."""
    return [1.0 if block[i] > 0.5 else 0.0 for i in range(0, len(block), 3)]


def _interleave(block: List[float], stride: int) -> List[float]:
    n = len(block)
    return [block[(i * stride) % n] for i in range(n)]


def _qam64_modulate(block: List[float]) -> List[float]:
    """Map 6 bits to one I/Q pair of 8-level amplitudes."""
    out: List[float] = []
    for i in range(0, len(block), 6):
        level_i = block[i] * 4 + block[i + 1] * 2 + block[i + 2] - 3.5
        level_q = block[i + 3] * 4 + block[i + 4] * 2 + block[i + 5] - 3.5
        out.extend((level_i / 3.5, level_q / 3.5))
    return out


def _qam64_demodulate(block: List[float]) -> List[float]:
    out: List[float] = []
    for i in range(0, len(block), 2):
        for level in (block[i], block[i + 1]):
            raw = int(round(level * 3.5 + 3.5))
            raw = min(max(raw, 0), 7)
            out.extend((float(raw >> 2 & 1), float(raw >> 1 & 1),
                        float(raw & 1)))
    return out


#: Deterministic, invertible 2x2 real MIMO channel matrix.
_H = ((0.9, 0.2), (0.1, 0.8))
_DET = _H[0][0] * _H[1][1] - _H[0][1] * _H[1][0]


def _mimo_channel(block: List[float]) -> List[float]:
    """Mix the two antennas' blocks (first half = antenna 0)."""
    half = len(block) // 2
    out = [0.0] * len(block)
    for i in range(half):
        s0, s1 = block[i], block[half + i]
        out[i] = _H[0][0] * s0 + _H[0][1] * s1
        out[half + i] = _H[1][0] * s0 + _H[1][1] * s1
    return out


def _mimo_equalize(block: List[float]) -> List[float]:
    half = len(block) // 2
    out = [0.0] * len(block)
    for i in range(half):
        r0, r1 = block[i], block[half + i]
        out[i] = (_H[1][1] * r0 - _H[0][1] * r1) / _DET
        out[half + i] = (-_H[1][0] * r0 + _H[0][0] * r1) / _DET
    return out


def _subcarrier_map(pairs: List[float], gains: List[float]) -> List[float]:
    out = list(pairs)
    for k, gain in enumerate(gains):
        out[2 * k] *= gain
        out[2 * k + 1] *= gain
    return out


def blueprint(scale: int = 1, symbols: int = None) -> Callable[[], StreamGraph]:
    """LTE-A transceiver factory.

    ``symbols`` sets the FFT size; ``scale`` adds parallel
    resource-block lanes, each a full transceiver chain.
    """
    fft = symbols if symbols is not None else 8
    bits = fft * 6          # bits per pair of OFDM half-symbols at 64-QAM
    streams = 2             # 2x2 MIMO spatial multiplexing
    outer_stride = 7
    outer_inverse = pow(outer_stride, -1, 3 * bits)
    # Symmetric gains (g_k == g_{n-k}) preserve conjugate symmetry, so
    # DFT -> gain -> IDFT keeps the time-domain signal real and the
    # receiver's inverse mapping is exact.
    gains = [1.0 + 0.25 * math.cos(2.0 * math.pi * k / fft)
             for k in range(fft)]

    def make_stages() -> List:
        def antenna_tx(stream: int) -> Pipeline:
            return Pipeline(
                BlockTransform(pop=fft, push=2 * fft, fn=dft,
                               work_estimate=2.0 * fft * fft,
                               name="tx_fft_%d" % stream),
                BlockTransform(pop=2 * fft, push=2 * fft,
                               fn=lambda b: _subcarrier_map(b, gains),
                               work_estimate=1.0 * fft,
                               name="tx_mapper_%d" % stream),
                BlockTransform(pop=2 * fft, push=fft, fn=idft,
                               work_estimate=2.0 * fft * fft,
                               name="tx_ifft_%d" % stream),
            )

        def antenna_rx(stream: int) -> Pipeline:
            inverse = [1.0 / g for g in gains]
            return Pipeline(
                BlockTransform(pop=fft, push=2 * fft, fn=dft,
                               work_estimate=2.0 * fft * fft,
                               name="rx_fft_%d" % stream),
                BlockTransform(pop=2 * fft, push=2 * fft,
                               fn=lambda b: _subcarrier_map(b, inverse),
                               work_estimate=1.0 * fft,
                               name="rx_demapper_%d" % stream),
                BlockTransform(pop=2 * fft, push=fft, fn=idft,
                               work_estimate=2.0 * fft * fft,
                               name="rx_ifft_%d" % stream),
            )

        return [
            BlockTransform(pop=bits, push=3 * bits, fn=_encode,
                           work_estimate=3.0 * bits, name="turbo_encoder"),
            BlockTransform(pop=3 * bits, push=3 * bits,
                           fn=lambda b: _interleave(b, outer_stride),
                           work_estimate=1.0 * bits,
                           name="outer_interleaver"),
            BlockTransform(pop=3 * bits, push=bits, fn=_qam64_modulate,
                           work_estimate=2.0 * bits, name="qam64_modulator"),
            SplitJoin(
                RoundRobinSplitter((fft,) * streams),
                *[antenna_tx(s) for s in range(streams)],
                RoundRobinJoiner((fft,) * streams),
            ),
            BlockTransform(pop=2 * fft, push=2 * fft, fn=_mimo_channel,
                           work_estimate=2.0 * fft, name="mimo_channel"),
            BlockTransform(pop=2 * fft, push=2 * fft, fn=_mimo_equalize,
                           work_estimate=3.0 * fft, name="mimo_equalizer"),
            SplitJoin(
                RoundRobinSplitter((fft,) * streams),
                *[antenna_rx(s) for s in range(streams)],
                RoundRobinJoiner((fft,) * streams),
            ),
            BlockTransform(pop=bits, push=3 * bits, fn=_qam64_demodulate,
                           work_estimate=2.0 * bits,
                           name="qam64_demodulator"),
            BlockTransform(pop=3 * bits, push=3 * bits,
                           fn=lambda b: _interleave(b, outer_inverse),
                           work_estimate=1.0 * bits,
                           name="outer_deinterleaver"),
            BlockTransform(pop=3 * bits, push=bits, fn=_decode,
                           work_estimate=4.0 * bits, name="turbo_decoder"),
        ]

    def build() -> StreamGraph:
        if scale <= 1:
            return Pipeline(*make_stages()).flatten()
        lanes = scale
        return SplitJoin(
            RoundRobinSplitter((bits,) * lanes),
            *[Pipeline(*make_stages()) for _ in range(lanes)],
            RoundRobinJoiner((bits,) * lanes),
        ).flatten()

    return build


def bit_input(index: int) -> float:
    """A deterministic bit stream for the LTE transceiver."""
    return float((index * 2654435761) >> 7 & 1)


APP = AppSpec(
    name="LTE",
    blueprint_factory=blueprint,
    stateful=False,
    description="LTE-A uplink transceiver with 2x2 MIMO (stateless)",
    input_fn=bit_input,
)
