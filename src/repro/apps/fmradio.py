"""FMRadio: software FM receiver with a multi-band equalizer.

The classic StreamIt benchmark: a low-pass front end, an FM
demodulator, and an equalizer built as a duplicate split-join of
band-pass filters (each a pair of low-pass FIR filters subtracted)
whose outputs are summed.  Entirely stateless (the FIRs peek), which
makes it the paper's canonical stateless subject (Figures 10-13).
"""

from __future__ import annotations

import math
from typing import Callable, List

from repro.apps import AppSpec
from repro.graph.builders import Pipeline, SplitJoin
from repro.graph.topology import StreamGraph
from repro.graph.workers import DuplicateSplitter, Filter, RoundRobinJoiner
from repro.graph.library import FIRFilter

try:
    import numpy as _np
except ImportError:  # pragma: no cover - the toolchain bakes numpy in
    _np = None

__all__ = ["APP", "blueprint", "low_pass_taps"]


def low_pass_taps(cutoff: float, taps: int, gain: float = 1.0) -> List[float]:
    """Windowed-sinc low-pass filter coefficients."""
    coefficients = []
    middle = (taps - 1) / 2.0
    for i in range(taps):
        offset = i - middle
        if abs(offset) < 1e-9:
            value = cutoff / math.pi
        else:
            value = math.sin(cutoff * offset) / (math.pi * offset)
        window = 0.54 + 0.46 * math.cos(math.pi * offset / (middle or 1.0))
        coefficients.append(gain * value * window)
    return coefficients


class FMDemodulator(Filter):
    """Differential FM demodulation over a 2-item window (stateless)."""

    def __init__(self, gain: float = 1.0):
        super().__init__(pop=1, push=1, peek=2, work_estimate=2.0,
                         name="fm_demod")
        self.gain = gain

    vector_items = True

    def work(self, input, output) -> None:
        current = input.peek(0)
        nxt = input.peek(1)
        input.pop()
        output.push(self.gain * math.atan(current * nxt))

    def work_batch(self, inputs, outputs, n_firings) -> None:
        # The window product is vectorized; atan stays a math.atan
        # loop because NumPy's arctan rounds differently from libm on
        # some inputs and would break byte-identity with the oracle.
        window = inputs[0]
        products = window[:n_firings] * window[1:n_firings + 1]
        gain = self.gain
        outputs[0][...] = [gain * math.atan(product)
                           for product in products.tolist()]


class BandAmplify(Filter):
    """Subtract two low-pass bands and amplify (the equalizer core)."""

    def __init__(self, gain: float, name: str = None):
        super().__init__(pop=2, push=1, work_estimate=1.0,
                         name=name or "band_amplify")
        self.gain = gain

    vector_items = True

    def work(self, input, output) -> None:
        low = input.pop()
        high = input.pop()
        output.push((high - low) * self.gain)

    def work_batch(self, inputs, outputs, n_firings) -> None:
        rows = inputs[0].reshape(n_firings, 2)
        _np.multiply(rows[:, 1] - rows[:, 0], self.gain, out=outputs[0])


class BandSum(Filter):
    """Sum the equalizer bands back into one sample."""

    def __init__(self, bands: int):
        super().__init__(pop=bands, push=1, work_estimate=0.3 * bands,
                         name="band_sum")
        self.bands = bands

    vector_items = True

    def work(self, input, output) -> None:
        total = 0.0
        for _ in range(self.bands):
            total += input.pop()
        output.push(total)

    def work_batch(self, inputs, outputs, n_firings) -> None:
        # Per-band accumulation from an explicit zero keeps the scalar
        # loop's left-to-right association (np.sum would reassociate).
        rows = inputs[0].reshape(n_firings, self.bands)
        out = outputs[0]
        out[...] = 0.0
        for band in range(self.bands):
            out += rows[:, band]


def blueprint(scale: int = 1, bands: int = None,
              taps: int = None) -> Callable[[], StreamGraph]:
    """FMRadio factory.  ``scale`` widens the equalizer and the FIRs."""
    n_bands = bands if bands is not None else 6 + 2 * scale
    n_taps = taps if taps is not None else 16 * scale

    def build() -> StreamGraph:
        branches = []
        for band in range(n_bands):
            low_cut = 0.10 + 0.70 * band / n_bands
            high_cut = 0.10 + 0.70 * (band + 1) / n_bands
            branches.append(Pipeline(
                SplitJoin(
                    DuplicateSplitter(2),
                    FIRFilter(low_pass_taps(low_cut, n_taps),
                              name="lpf_lo_%d" % band),
                    FIRFilter(low_pass_taps(high_cut, n_taps),
                              name="lpf_hi_%d" % band),
                    RoundRobinJoiner(2),
                ),
                BandAmplify(gain=1.0 + band / n_bands,
                            name="amplify_%d" % band),
            ))
        return Pipeline(
            FIRFilter(low_pass_taps(0.5, n_taps), name="front_lpf"),
            FMDemodulator(gain=2.0),
            SplitJoin(
                DuplicateSplitter(n_bands),
                *branches,
                RoundRobinJoiner(n_bands),
            ),
            BandSum(n_bands),
        ).flatten()

    return build


APP = AppSpec(
    name="FMRadio",
    blueprint_factory=blueprint,
    stateful=False,
    description="FM receiver with multi-band equalizer (stateless)",
)
