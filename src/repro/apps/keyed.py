"""Keyed-aggregation demo application (fluid migration showcase).

A running per-key aggregate behind a small compute pipeline: a
deterministic router cycles each item through a bounded *hot* key set
while the aggregate table also carries a long tail of cold,
pre-populated keys — the Figure 14b-style state-size knob.  Cold keys
never dirty during a migration, so the fluid strategy can move them
early, shard by shard, and the final-cut residual stays proportional
to the hot set.  That skew (a large mostly-idle table with a small
active working set) is the regime Megaphone targets and where
batched migration beats one-shot transfer on tail latency.
"""

from __future__ import annotations

from typing import Callable, List

from repro.apps import AppSpec
from repro.graph.builders import Pipeline, SplitJoin
from repro.graph.keyed import KeyedStateWorker
from repro.graph.topology import StreamGraph
from repro.graph.workers import RoundRobinJoiner, RoundRobinSplitter
from repro.graph.library import FIRFilter, HeavyCompute

__all__ = ["APP", "KeyedAggregate", "blueprint"]


class KeyedAggregate(KeyedStateWorker):
    """Exponentially decayed running sum per key.

    Keys cycle deterministically through ``hot_keys`` of the
    ``n_keys``-entry table; updates are replace-on-write
    (``table[key] = new_value``), as the keyed-state protocol
    requires for dirty tracking.
    """

    state_fields = ("cursor", "table")
    keyed_field = "table"
    vector_items = True

    def __init__(self, n_keys: int = 256, hot_keys: int = None,
                 decay: float = 0.75, name: str = None):
        super().__init__(pop=1, push=1, work_estimate=1.0,
                         name=name or "keyed_aggregate")
        if n_keys < 1:
            raise ValueError("n_keys must be >= 1, got %d" % n_keys)
        self.n_keys = int(n_keys)
        self.hot_keys = min(int(hot_keys) if hot_keys is not None else 64,
                            self.n_keys)
        self.decay = float(decay)
        self.cursor = 0
        # Pre-populated cold tail: deterministic nonzero values so the
        # table's full size is present (and migratable) from launch.
        self.table = {key: (key % 17) / 16.0 for key in range(self.n_keys)}

    def work(self, input, output) -> None:
        item = input.pop()
        key = self.cursor % self.hot_keys
        value = self.table[key] * self.decay + item
        self.table[key] = value
        self.cursor += 1
        output.push(value)


def blueprint(scale: int = 1, n_keys: int = None, hot_keys: int = None,
              lanes: int = None,
              intensity: float = 1.5) -> Callable[[], StreamGraph]:
    """Compute front-end feeding the keyed aggregate.

    ``n_keys`` is the state-size knob (8+ bytes per key); ``hot_keys``
    bounds the active working set and hence the fluid residual.
    """
    keys = n_keys if n_keys is not None else 192 * scale
    n_lanes = lanes if lanes is not None else 2 + scale

    def build() -> StreamGraph:
        branches = [
            Pipeline(
                HeavyCompute(intensity, name="work_%d" % lane),
                FIRFilter([0.5, 0.5], name="smooth_%d" % lane),
            )
            for lane in range(n_lanes)
        ]
        return Pipeline(
            FIRFilter([0.25, 0.5, 0.25], name="front"),
            SplitJoin(
                RoundRobinSplitter(n_lanes),
                *branches,
                RoundRobinJoiner(n_lanes),
            ),
            KeyedAggregate(keys, hot_keys=hot_keys, name="keyed_table"),
            HeavyCompute(intensity, name="back"),
        ).flatten()

    return build


APP = AppSpec(
    name="KeyedAggregate",
    blueprint_factory=blueprint,
    stateful=True,
    description="Per-key running aggregate with a cold-key tail "
                "(keyed-state / fluid migration demo)",
)
