"""TDE_PP: time-delay equalization via overlapped block convolution.

The StreamIt TDE benchmark (from the PCA radar suite): blocks of
samples go through a transform, a per-bin complex multiply against
the equalizer response, and an inverse transform, in a pipelined
(``_PP``) arrangement.  Stateless block processing with large
pop/push rates — it stresses schedule quanta rather than peeking.
"""

from __future__ import annotations

import math
from typing import Callable, List

from repro.apps import AppSpec
from repro.graph.builders import Pipeline
from repro.graph.topology import StreamGraph
from repro.graph.library import BlockTransform

__all__ = ["APP", "blueprint", "dft", "idft"]


def dft(block: List[float]) -> List[float]:
    """Naive real-input DFT returning interleaved (re, im) pairs.

    O(n^2) on small blocks; exactness matters more than speed here
    because the equivalence tests compare float-for-float.
    """
    n = len(block)
    out: List[float] = []
    for k in range(n):
        re = 0.0
        im = 0.0
        for t, x in enumerate(block):
            angle = -2.0 * math.pi * k * t / n
            re += x * math.cos(angle)
            im += x * math.sin(angle)
        out.append(re)
        out.append(im)
    return out


def idft(pairs: List[float]) -> List[float]:
    """Inverse of :func:`dft` (returns real parts)."""
    n = len(pairs) // 2
    out: List[float] = []
    for t in range(n):
        acc = 0.0
        for k in range(n):
            re = pairs[2 * k]
            im = pairs[2 * k + 1]
            angle = 2.0 * math.pi * k * t / n
            acc += re * math.cos(angle) - im * math.sin(angle)
        out.append(acc / n)
    return out


def _equalize(pairs: List[float], response: List[float]) -> List[float]:
    out: List[float] = []
    for k in range(len(pairs) // 2):
        re = pairs[2 * k]
        im = pairs[2 * k + 1]
        h_re = response[2 * k]
        h_im = response[2 * k + 1]
        out.append(re * h_re - im * h_im)
        out.append(re * h_im + im * h_re)
    return out


def blueprint(scale: int = 1, block: int = None,
              stages: int = None) -> Callable[[], StreamGraph]:
    block_size = block if block is not None else 8
    n_stages = stages if stages is not None else 4 + 2 * scale

    def build() -> StreamGraph:
        elements = []
        for stage in range(n_stages):
            response = []
            for k in range(block_size):
                gain = 1.0 / (1.0 + 0.1 * ((k + stage) % block_size))
                phase = 0.1 * stage
                response.append(gain * math.cos(phase))
                response.append(gain * math.sin(phase))
            elements.append(BlockTransform(
                pop=block_size, push=2 * block_size, fn=dft,
                work_estimate=2.0 * block_size * block_size,
                name="dft_%d" % stage))
            elements.append(BlockTransform(
                pop=2 * block_size, push=2 * block_size,
                fn=lambda pairs, r=response: _equalize(pairs, r),
                work_estimate=3.0 * block_size,
                name="equalize_%d" % stage))
            elements.append(BlockTransform(
                pop=2 * block_size, push=block_size, fn=idft,
                work_estimate=2.0 * block_size * block_size,
                name="idft_%d" % stage))
        return Pipeline(*elements).flatten()

    return build


APP = AppSpec(
    name="TDE_PP",
    blueprint_factory=blueprint,
    stateful=False,
    description="Time-delay equalization, pipelined blocks (stateless)",
)
