"""Vocoder: phase vocoder for pitch/speed transformation (stateful).

A bank of analysis channels (short block transforms into per-band
magnitude/phase), per-band *phase unwrapping* — which accumulates
phase across frames and is inherently stateful — followed by
magnitude/phase recombination and synthesis.  The paper lists Vocoder
as one of its two stateful Table 1 subjects.
"""

from __future__ import annotations

import math
from typing import Callable

from repro.apps import AppSpec
from repro.graph.builders import Pipeline, SplitJoin
from repro.graph.topology import StreamGraph
from repro.graph.workers import (
    DuplicateSplitter,
    Filter,
    RoundRobinJoiner,
    StatefulFilter,
)
from repro.graph.library import NUMPY_TRIG_EXACT

try:
    import numpy as _np
except ImportError:  # pragma: no cover - the toolchain bakes numpy in
    _np = None

__all__ = ["APP", "blueprint"]


class AnalysisBand(Filter):
    """Short windowed transform of one analysis band (stateless).

    Peeks a full window, pops a hop of samples, pushes (magnitude,
    phase-proxy) interleaved for ``hop`` bins.
    """

    def __init__(self, band: int, window: int, hop: int):
        super().__init__(pop=hop, push=2 * hop, peek=window,
                         work_estimate=1.0 * window,
                         name="analysis_%d" % band)
        self.band = band
        self.window = window
        self.hop = hop
        self._cos = [math.cos(2 * math.pi * band * i / window)
                     for i in range(window)]
        self._sin = [math.sin(2 * math.pi * band * i / window)
                     for i in range(window)]

    vector_items = True

    def work(self, input, output) -> None:
        real = 0.0
        imag = 0.0
        for i in range(self.window):
            sample = input.peek(i)
            real += sample * self._cos[i]
            imag += sample * self._sin[i]
        for _ in range(self.hop):
            input.pop()
        magnitude = math.sqrt(real * real + imag * imag)
        phase = math.atan2(imag, real + 1e-12)
        for _ in range(self.hop):
            output.push(magnitude / self.window)
            output.push(phase)

    def work_batch(self, inputs, outputs, n_firings) -> None:
        # Overlapping hop-strided windows: tap i of every firing is the
        # strided slice view[i::hop] (length n), accumulated per tap
        # from zero to match the scalar association.  sqrt is exact;
        # atan2 stays a math.atan2 loop (NumPy's arctan2 rounds
        # differently from libm on some inputs).
        window_view = inputs[0]
        hop = self.hop
        span = hop * (n_firings - 1) + 1
        real = _np.zeros(n_firings)
        imag = _np.zeros(n_firings)
        for i, (cos_i, sin_i) in enumerate(zip(self._cos, self._sin)):
            samples = window_view[i:i + span:hop]
            real += samples * cos_i
            imag += samples * sin_i
        magnitudes = _np.sqrt(real * real + imag * imag) / self.window
        phases = [math.atan2(im, re) for im, re
                  in zip(imag.tolist(), (real + 1e-12).tolist())]
        rows = outputs[0].reshape(n_firings, 2 * hop)
        rows[:, 0::2] = magnitudes[:, None]
        rows[:, 1::2] = _np.asarray(phases)[:, None]


class PhaseUnwrapper(StatefulFilter):
    """Accumulate phase differences across frames — the stateful core."""

    state_fields = ("last_phase", "accumulated")

    # Numeric stream, but no batch kernel: the wrap-correction while
    # loop is a genuine sequential dependence, so this worker runs the
    # per-firing scalar fallback inside vectorized blobs.
    vector_items = True

    def __init__(self, band: int):
        super().__init__(pop=2, push=2, work_estimate=2.0,
                         name="unwrap_%d" % band)
        self.last_phase = 0.0
        self.accumulated = 0.0

    def work(self, input, output) -> None:
        magnitude = input.pop()
        phase = input.pop()
        delta = phase - self.last_phase
        while delta > math.pi:
            delta -= 2 * math.pi
        while delta < -math.pi:
            delta += 2 * math.pi
        self.last_phase = phase
        self.accumulated += delta
        output.push(magnitude)
        output.push(self.accumulated)


class Synthesis(Filter):
    """Recombine (magnitude, unwrapped phase) into a sample (stateless)."""

    def __init__(self, bands: int):
        super().__init__(pop=2 * bands, push=1,
                         work_estimate=1.5 * bands, name="synthesis")
        self.bands = bands

    vector_items = True

    def work(self, input, output) -> None:
        total = 0.0
        for _ in range(self.bands):
            magnitude = input.pop()
            phase = input.pop()
            total += magnitude * math.cos(phase)
        output.push(total)

    def work_batch(self, inputs, outputs, n_firings) -> None:
        rows = inputs[0].reshape(n_firings, 2 * self.bands)
        out = outputs[0]
        out[...] = 0.0
        for band in range(self.bands):
            out += rows[:, 2 * band] * _np.cos(rows[:, 2 * band + 1])

    if not NUMPY_TRIG_EXACT:  # pragma: no cover - platform-dependent
        work_batch = None


def blueprint(scale: int = 1, bands: int = None,
              window: int = None) -> Callable[[], StreamGraph]:
    n_bands = bands if bands is not None else 6 + 2 * scale
    n_window = window if window is not None else 8 * scale
    hop = 2

    def build() -> StreamGraph:
        branches = [
            Pipeline(
                AnalysisBand(b, window=n_window, hop=hop),
                PhaseUnwrapper(b),
            )
            for b in range(n_bands)
        ]
        return Pipeline(
            SplitJoin(
                DuplicateSplitter(n_bands),
                *branches,
                RoundRobinJoiner((2,) * n_bands),
            ),
            Synthesis(n_bands),
        ).flatten()

    return build


APP = AppSpec(
    name="Vocoder",
    blueprint_factory=blueprint,
    stateful=True,
    description="Phase vocoder with stateful phase unwrapping",
)
