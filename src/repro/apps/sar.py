"""SAR: synthetic aperture radar image formation (stateless).

Modelled on the StreamIt SAR benchmark: pulses of samples flow through
range compression (matched filtering), azimuth interpolation across
parallel subapertures, and backprojection-style accumulation.  Heavy
stateless block compute with a wide split-join in the middle.
"""

from __future__ import annotations

import math
from typing import Callable, List

from repro.apps import AppSpec
from repro.graph.builders import Pipeline, SplitJoin
from repro.graph.topology import StreamGraph
from repro.graph.workers import RoundRobinJoiner, RoundRobinSplitter
from repro.graph.library import BlockTransform

__all__ = ["APP", "blueprint"]


def _matched_filter(pulse: List[float], chirp: List[float]) -> List[float]:
    n = len(pulse)
    out = []
    for i in range(n):
        acc = 0.0
        for j, c in enumerate(chirp):
            if i - j >= 0:
                acc += pulse[i - j] * c
        out.append(acc)
    return out


def _interpolate(block: List[float]) -> List[float]:
    out = []
    for i in range(len(block)):
        left = block[i]
        right = block[(i + 1) % len(block)]
        out.append(left)
        out.append(0.5 * (left + right))
    return out


def _backproject(block: List[float]) -> List[float]:
    half = len(block) // 2
    return [
        math.sqrt(abs(block[i] * block[i] + block[i + half] * 0.25))
        for i in range(half)
    ]


def blueprint(scale: int = 1, pulse: int = None,
              subapertures: int = None) -> Callable[[], StreamGraph]:
    pulse_size = pulse if pulse is not None else 8
    n_sub = subapertures if subapertures is not None else 4 + 2 * scale
    chirp = [math.cos(0.3 * i) / (1.0 + i) for i in range(4)]

    def build() -> StreamGraph:
        branches = [
            Pipeline(
                BlockTransform(
                    pop=pulse_size, push=pulse_size,
                    fn=lambda p, c=chirp: _matched_filter(p, c),
                    work_estimate=2.0 * pulse_size * len(chirp),
                    name="range_%d" % s),
                BlockTransform(
                    pop=pulse_size, push=2 * pulse_size,
                    fn=_interpolate,
                    work_estimate=2.0 * pulse_size,
                    name="azimuth_%d" % s),
                BlockTransform(
                    pop=2 * pulse_size, push=pulse_size,
                    fn=_backproject,
                    work_estimate=3.0 * pulse_size,
                    name="backproject_%d" % s),
            )
            for s in range(n_sub)
        ]
        return Pipeline(
            BlockTransform(
                pop=pulse_size, push=pulse_size,
                fn=lambda p, c=chirp: _matched_filter(p, c),
                work_estimate=2.0 * pulse_size * len(chirp),
                name="prefilter"),
            SplitJoin(
                RoundRobinSplitter((pulse_size,) * n_sub),
                *branches,
                RoundRobinJoiner((pulse_size,) * n_sub),
            ),
            BlockTransform(
                pop=pulse_size, push=pulse_size,
                fn=lambda block: [x * (1.0 / (1.0 + abs(x))) for x in block],
                work_estimate=1.0 * pulse_size,
                name="normalize"),
        ).flatten()

    return build


APP = AppSpec(
    name="SAR",
    blueprint_factory=blueprint,
    stateful=False,
    description="Synthetic aperture radar image formation (stateless)",
)
