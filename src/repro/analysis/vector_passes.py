"""Vectorized-backend pass family member: batch-kernel conformance.

A worker that declares :meth:`~repro.graph.workers.Worker.work_batch`
promises that one batch call over ``n`` firings fills exactly
``push_rate * n`` output slots per port from exactly
``pop_rate * n`` (+ peek overhang) input slots per port.  A kernel
that breaks the length contract silently corrupts the fused steady
path: the plan sizes the output views from the declared rates, so
unwritten slots ship stale memory downstream.

V001 probes the contract directly: it deep-copies the worker (state
included), hands the copy correctly sized read-only inputs and
NaN-poisoned outputs, runs one multi-firing batch call, and flags any
kernel that raises, writes its inputs, or leaves output slots
unwritten.  The probe never touches the live worker, and it yields
nothing when NumPy is unavailable (the vectorized backend cannot be
selected then either).

V002 extends the probe one level up the compilation stack: it compiles
a deep-copied graph's fused plan into a generated codegen kernel (in
poison mode, so unwritten output slots surface as NaN) and runs it
against the vectorized step path it replaces, flagging divergence or a
kernel crash.  Together the two rules bracket the fast path: V001
checks each kernel against its declared rates, V002 checks the
compiled composition against the interpreter that defines semantics.
"""

from __future__ import annotations

import copy
from typing import Iterable, List

from repro.analysis.contexts import GraphContext, worker_location
from repro.analysis.findings import ERROR, Finding
from repro.analysis.registry import rule

try:
    import numpy as _np
except ImportError:  # pragma: no cover - the toolchain bakes numpy in
    _np = None

__all__ = ["VECTOR_RULES"]

#: Firings per probe call: > 1 so per-firing stride errors (reading
#: row 0 for every firing, writing only the first row) are visible.
PROBE_FIRINGS = 3


def _probe_values(count: int):
    """Deterministic, strictly positive, non-repeating-ish lattice —
    benign for every shipped kernel (no zeros, no huge magnitudes)."""
    return _np.array([0.1 + 0.7 * ((i * 13) % 17) / 17.0
                      for i in range(count)])


@rule("V001", "graph", "Batch-kernel length contract",
      "A worker declaring work_batch must fill exactly push_rate * "
      "n_firings output slots per port from its declared input window. "
      "The pass probes a deep copy of the worker with read-only inputs "
      "and NaN-poisoned outputs; kernels that raise, mutate their "
      "inputs, or leave output slots unwritten are flagged.")
def check_batch_kernel_contract(ctx: GraphContext) -> Iterable[Finding]:
    if _np is None:
        return
    graph = ctx.graph
    for worker in graph.workers:
        if not worker.supports_work_batch:
            continue
        if not worker.vector_items:
            yield Finding(
                rule="V001", severity=ERROR,
                message="%s declares work_batch without vector_items: "
                        "the batch kernel can never be selected, and the "
                        "capability claim is inconsistent" % worker.name,
                location=worker_location(graph, worker.worker_id),
            )
            continue
        try:
            probe = copy.deepcopy(worker)
        except Exception:
            continue  # unprobeable state; nothing to conclude
        inputs = []
        for port in range(worker.n_inputs):
            pop = worker.pop_rates[port]
            peek = worker.peek_rates[port]
            window = pop * PROBE_FIRINGS + max(peek - pop, 0)
            view = _probe_values(window)
            view.flags.writeable = False
            inputs.append(view)
        outputs = [_np.full(worker.push_rates[port] * PROBE_FIRINGS,
                            _np.nan)
                   for port in range(worker.n_outputs)]
        try:
            probe.work_batch(inputs, outputs, PROBE_FIRINGS)
        except Exception as exc:
            yield Finding(
                rule="V001", severity=ERROR,
                message="%s work_batch raised on a %d-firing probe "
                        "(%s: %s): the batch kernel does not honor the "
                        "declared rates" % (worker.name, PROBE_FIRINGS,
                                            type(exc).__name__, exc),
                location=worker_location(graph, worker.worker_id),
            )
            continue
        for port, out in enumerate(outputs):
            unwritten = int(_np.isnan(out).sum())
            if unwritten:
                yield Finding(
                    rule="V001", severity=ERROR,
                    message="%s work_batch left %d of %d output slot(s) "
                            "unwritten on port %d over %d firings: batch "
                            "output cannot equal push_rate * n_firings"
                            % (worker.name, unwritten, out.shape[0],
                               port, PROBE_FIRINGS),
                    location=worker_location(graph, worker.worker_id),
                )


#: Steady iterations driven through the generated kernel by V002.
CODEGEN_PROBE_ITERATIONS = 2


@rule("V002", "graph", "Generated-kernel contract",
      "The codegen backend compiles a fused plan into one generated "
      "kernel per blob; its output must be byte-identical to the "
      "vectorized step path it replaces.  The pass runs both engines "
      "on deep copies of the graph over a deterministic input lattice "
      "— the generated kernel in poison mode (every output region "
      "NaN-filled before each batch call) so under-writing kernels "
      "surface as NaN instead of silently shipping stale memory — and "
      "flags any divergence or kernel crash.")
def check_generated_kernel_contract(ctx: GraphContext) -> Iterable[Finding]:
    if _np is None:
        return
    from repro.runtime.codegen import CodegenKernel, CodegenUnsupported
    from repro.runtime.fastpath import vector_capable
    from repro.runtime.interpreter import GraphInterpreter
    from repro.sched.schedule import make_schedule

    graph = ctx.graph
    if not vector_capable(graph.workers):
        return
    try:
        ref_graph = copy.deepcopy(graph)
        probe_graph = copy.deepcopy(graph)
    except Exception:
        return  # unprobeable state; nothing to conclude
    try:
        schedule = make_schedule(ref_graph)
    except Exception:
        return  # broken rates are G001's finding, not ours
    head = ref_graph.head
    head_extra = max(head.peek_rates[0] - head.pop_rates[0], 0)
    iterations = 1 + CODEGEN_PROBE_ITERATIONS
    feed = [float(v) for v in _probe_values(
        schedule.init_in + iterations * schedule.steady_in + head_extra)]

    # Reference: the vectorized step path, codegen off.  If this graph
    # cannot run on the probe lattice at all (e.g. items are not
    # numbers), there is nothing to compare the generated kernel with.
    ref = GraphInterpreter(ref_graph, schedule=make_schedule(ref_graph),
                           check_rates=False, vectorize=True, codegen=False)
    try:
        ref.push_input(list(feed))
        ref.run_steady(iterations)
    except Exception:
        return
    expected = ref.take_output()

    # Probe: one vectorized warm-up iteration builds the fused plan
    # (and its leftovers), then the generated kernel — compiled from
    # the same plan, in poison mode — drives the remaining iterations.
    probe = GraphInterpreter(probe_graph, schedule=make_schedule(probe_graph),
                             check_rates=False, vectorize=True, codegen=False)
    probe.push_input(list(feed))
    try:
        probe.run_steady(1)
    except Exception:
        return
    plan = probe._fused
    if plan is None or not plan.vectorized:
        return
    try:
        kernel = CodegenKernel(plan, poison=True)
        for _ in range(CODEGEN_PROBE_ITERATIONS):
            if not kernel.run_iteration():
                return  # unsupported shape: the runtime falls back
    except CodegenUnsupported:
        return
    except Exception as exc:
        yield Finding(
            rule="V002", severity=ERROR,
            message="generated kernel raised while executing the steady "
                    "schedule (%s: %s): the codegen backend cannot "
                    "faithfully compile this graph's fused plan"
                    % (type(exc).__name__, exc),
            location="graph %s" % (ctx.name or "<anon>"),
        )
        return
    got = probe.take_output()
    poisoned = sum(1 for v in got if isinstance(v, float) and v != v)
    if poisoned:
        yield Finding(
            rule="V002", severity=ERROR,
            message="generated kernel left %d NaN-poisoned output "
                    "slot(s) over %d steady iteration(s): a batch kernel "
                    "under-writes its output region, so the compiled "
                    "blob would ship stale memory"
                    % (poisoned, CODEGEN_PROBE_ITERATIONS),
            location="graph %s" % (ctx.name or "<anon>"),
        )
    elif got != expected:
        yield Finding(
            rule="V002", severity=ERROR,
            message="generated kernel diverged from the vectorized step "
                    "path over %d steady iteration(s) (%d vs %d items): "
                    "codegen output must be byte-identical"
                    % (CODEGEN_PROBE_ITERATIONS, len(got), len(expected)),
            location="graph %s" % (ctx.name or "<anon>"),
        )


VECTOR_RULES: List[str] = ["V001", "V002"]
