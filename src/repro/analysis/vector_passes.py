"""Vectorized-backend pass family member: batch-kernel conformance.

A worker that declares :meth:`~repro.graph.workers.Worker.work_batch`
promises that one batch call over ``n`` firings fills exactly
``push_rate * n`` output slots per port from exactly
``pop_rate * n`` (+ peek overhang) input slots per port.  A kernel
that breaks the length contract silently corrupts the fused steady
path: the plan sizes the output views from the declared rates, so
unwritten slots ship stale memory downstream.

V001 probes the contract directly: it deep-copies the worker (state
included), hands the copy correctly sized read-only inputs and
NaN-poisoned outputs, runs one multi-firing batch call, and flags any
kernel that raises, writes its inputs, or leaves output slots
unwritten.  The probe never touches the live worker, and it yields
nothing when NumPy is unavailable (the vectorized backend cannot be
selected then either).
"""

from __future__ import annotations

import copy
from typing import Iterable, List

from repro.analysis.contexts import GraphContext, worker_location
from repro.analysis.findings import ERROR, Finding
from repro.analysis.registry import rule

try:
    import numpy as _np
except ImportError:  # pragma: no cover - the toolchain bakes numpy in
    _np = None

__all__ = ["VECTOR_RULES"]

#: Firings per probe call: > 1 so per-firing stride errors (reading
#: row 0 for every firing, writing only the first row) are visible.
PROBE_FIRINGS = 3


def _probe_values(count: int):
    """Deterministic, strictly positive, non-repeating-ish lattice —
    benign for every shipped kernel (no zeros, no huge magnitudes)."""
    return _np.array([0.1 + 0.7 * ((i * 13) % 17) / 17.0
                      for i in range(count)])


@rule("V001", "graph", "Batch-kernel length contract",
      "A worker declaring work_batch must fill exactly push_rate * "
      "n_firings output slots per port from its declared input window. "
      "The pass probes a deep copy of the worker with read-only inputs "
      "and NaN-poisoned outputs; kernels that raise, mutate their "
      "inputs, or leave output slots unwritten are flagged.")
def check_batch_kernel_contract(ctx: GraphContext) -> Iterable[Finding]:
    if _np is None:
        return
    graph = ctx.graph
    for worker in graph.workers:
        if not worker.supports_work_batch:
            continue
        if not worker.vector_items:
            yield Finding(
                rule="V001", severity=ERROR,
                message="%s declares work_batch without vector_items: "
                        "the batch kernel can never be selected, and the "
                        "capability claim is inconsistent" % worker.name,
                location=worker_location(graph, worker.worker_id),
            )
            continue
        try:
            probe = copy.deepcopy(worker)
        except Exception:
            continue  # unprobeable state; nothing to conclude
        inputs = []
        for port in range(worker.n_inputs):
            pop = worker.pop_rates[port]
            peek = worker.peek_rates[port]
            window = pop * PROBE_FIRINGS + max(peek - pop, 0)
            view = _probe_values(window)
            view.flags.writeable = False
            inputs.append(view)
        outputs = [_np.full(worker.push_rates[port] * PROBE_FIRINGS,
                            _np.nan)
                   for port in range(worker.n_outputs)]
        try:
            probe.work_batch(inputs, outputs, PROBE_FIRINGS)
        except Exception as exc:
            yield Finding(
                rule="V001", severity=ERROR,
                message="%s work_batch raised on a %d-firing probe "
                        "(%s: %s): the batch kernel does not honor the "
                        "declared rates" % (worker.name, PROBE_FIRINGS,
                                            type(exc).__name__, exc),
                location=worker_location(graph, worker.worker_id),
            )
            continue
        for port, out in enumerate(outputs):
            unwritten = int(_np.isnan(out).sum())
            if unwritten:
                yield Finding(
                    rule="V001", severity=ERROR,
                    message="%s work_batch left %d of %d output slot(s) "
                            "unwritten on port %d over %d firings: batch "
                            "output cannot equal push_rate * n_firings"
                            % (worker.name, unwritten, out.shape[0],
                               port, PROBE_FIRINGS),
                    location=worker_location(graph, worker.worker_id),
                )


VECTOR_RULES: List[str] = ["V001"]
