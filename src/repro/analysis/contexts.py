"""Context objects handed to analysis passes.

Each pass family receives one context type; contexts carry lazily
computed shared artifacts (repetition vector, schedules) so a family's
passes don't recompute them, and so a failure to compute one artifact
(itself a finding) cleanly disables the checks that depend on it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.compiler.config import Configuration
from repro.graph.topology import StreamGraph
from repro.sched.schedule import Schedule

__all__ = [
    "ConfigurationContext",
    "GraphContext",
    "ReconfigurationContext",
    "worker_location",
]


def worker_location(graph: StreamGraph, worker_id: int) -> str:
    """Stable location string for a worker, e.g. ``worker fir0#3``."""
    if 0 <= worker_id < len(graph.workers):
        return "worker %s#%d" % (graph.worker(worker_id).name, worker_id)
    return "worker #%d" % worker_id


@dataclass
class GraphContext:
    """Input to the ``graph`` pass family."""

    graph: StreamGraph
    name: str = ""
    _repetitions: Optional[Dict[int, int]] = field(
        default=None, repr=False)
    _repetitions_error: Optional[Exception] = field(
        default=None, repr=False)

    def repetitions(self) -> Optional[Dict[int, int]]:
        """The repetition vector, or None when the rates are broken
        (G001 reports the failure; dependent passes skip)."""
        if self._repetitions is None and self._repetitions_error is None:
            from repro.sched.balance import repetition_vector
            try:
                self._repetitions = repetition_vector(self.graph)
            except Exception as exc:
                self._repetitions_error = exc
        return self._repetitions

    def repetitions_error(self) -> Optional[Exception]:
        self.repetitions()
        return self._repetitions_error


@dataclass
class ConfigurationContext:
    """Input to the ``configuration`` pass family.

    ``node_availability`` (node id -> available?) is supplied when a
    cluster is in scope; None means placement is checked structurally
    only.
    """

    graph: StreamGraph
    configuration: Configuration
    name: str = ""
    node_availability: Optional[Dict[int, bool]] = None
    _graph_ctx: Optional[GraphContext] = field(default=None, repr=False)

    def graph_context(self) -> GraphContext:
        if self._graph_ctx is None:
            self._graph_ctx = GraphContext(self.graph, name=self.name)
        return self._graph_ctx

    def repetitions(self) -> Optional[Dict[int, int]]:
        return self.graph_context().repetitions()


@dataclass
class ReconfigurationContext:
    """Input to the ``reconfiguration`` pass family.

    ``old_schedule`` should be the *running* instance's schedule (it
    includes prefill and absorbed initial contents); when absent the
    passes derive a nominal schedule from the old configuration.
    ``cost_model`` enables a dry run of phase-1 planning (R003).
    """

    old_graph: StreamGraph
    old_configuration: Configuration
    new_graph: StreamGraph
    new_configuration: Configuration
    old_schedule: Optional[Schedule] = None
    cost_model: Optional[object] = None
    node_availability: Optional[Dict[int, bool]] = None
    name: str = ""

    def resolved_old_schedule(self) -> Optional[Schedule]:
        if self.old_schedule is not None:
            return self.old_schedule
        from repro.sched.schedule import make_schedule
        try:
            self.old_schedule = make_schedule(
                self.old_graph,
                multiplier=self.old_configuration.multiplier)
        except Exception:
            return None
        return self.old_schedule
