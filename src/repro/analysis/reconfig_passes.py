"""Reconfiguration-safety pass family.

These passes statically vet a *plan* — move the running program from
(old graph, old configuration) to (new graph, new configuration) —
before any strategy touches the live epoch: external-rate
compatibility (output splicing is impossible if the graph quanta
disagree), state-transfer completeness (every stateful worker's state
must have a destination), and the asynchronous-snapshot-cut
preconditions phase-1 planning relies on.  The reconfiguration
manager runs this family before every request so a bad plan aborts
with a diagnostic report instead of corrupting a live epoch.
"""

from __future__ import annotations

from typing import Iterable, List

from repro.analysis.contexts import ReconfigurationContext, worker_location
from repro.analysis.findings import ERROR, INFO, Finding
from repro.analysis.registry import rule
from repro.sched.schedule import make_schedule, structural_leftover

__all__ = ["RECONFIG_RULES"]


@rule("R001", "reconfiguration", "External-rate compatibility",
      "The old and new graphs must consume and produce the same input/"
      "output quanta; otherwise the canonical stream positions cannot "
      "be aligned and the merged output cannot splice seamlessly.")
def check_external_rates(ctx: ReconfigurationContext) -> Iterable[Finding]:
    old_schedule = ctx.resolved_old_schedule()
    try:
        new_schedule = make_schedule(
            ctx.new_graph, multiplier=ctx.new_configuration.multiplier)
    except Exception as exc:
        yield Finding(
            rule="R001", severity=ERROR,
            message="new graph admits no schedule: %s"
                    % str(exc).splitlines()[0],
        )
        return
    if old_schedule is None:
        return  # old side unschedulable: nothing to compare against.
    if old_schedule.input_quantum != new_schedule.input_quantum:
        yield Finding(
            rule="R001", severity=ERROR,
            message="input quantum changes %d -> %d across the "
                    "reconfiguration: duplicated input cannot be aligned"
                    % (old_schedule.input_quantum,
                       new_schedule.input_quantum),
        )
    if old_schedule.output_quantum != new_schedule.output_quantum:
        yield Finding(
            rule="R001", severity=ERROR,
            message="output quantum changes %d -> %d across the "
                    "reconfiguration: output streams cannot splice"
                    % (old_schedule.output_quantum,
                       new_schedule.output_quantum),
        )


@rule("R002", "reconfiguration", "State-transfer completeness",
      "Every stateful worker of the running graph must have a matching "
      "destination worker (same id, same state fields) in the new "
      "graph, and that destination must be covered by the new "
      "configuration — otherwise captured state is silently dropped or "
      "installation crashes mid-transfer.")
def check_state_completeness(ctx: ReconfigurationContext) -> Iterable[Finding]:
    old_graph = ctx.old_graph
    new_graph = ctx.new_graph
    new_workers = {w.worker_id: w for w in new_graph.workers}
    new_covered = set()
    for blob in ctx.new_configuration.blobs:
        new_covered |= blob.workers
    for worker in old_graph.workers:
        if not worker.is_stateful:
            continue
        destination = new_workers.get(worker.worker_id)
        if destination is None:
            yield Finding(
                rule="R002", severity=ERROR,
                message="stateful worker %s#%d has no destination in the "
                        "new graph: its state would be dropped"
                        % (worker.name, worker.worker_id),
                location=worker_location(old_graph, worker.worker_id),
            )
            continue
        if set(destination.state_fields) != set(worker.state_fields):
            yield Finding(
                rule="R002", severity=ERROR,
                message="stateful worker %s#%d declares state fields %r "
                        "but its destination %s declares %r: state "
                        "installation would fail"
                        % (worker.name, worker.worker_id,
                           sorted(worker.state_fields),
                           destination.name,
                           sorted(destination.state_fields)),
                location=worker_location(old_graph, worker.worker_id),
            )
            continue
        if worker.worker_id not in new_covered:
            yield Finding(
                rule="R002", severity=ERROR,
                message="stateful worker %s#%d is not covered by any blob "
                        "of the new configuration: its state has nowhere "
                        "to go" % (worker.name, worker.worker_id),
                location=worker_location(old_graph, worker.worker_id),
            )
    old_ids = {w.worker_id for w in old_graph.workers}
    for worker in new_graph.workers:
        if worker.is_stateful and worker.worker_id not in old_ids:
            yield Finding(
                rule="R002", severity=INFO,
                message="new stateful worker %s#%d has no source state: "
                        "it starts from its initial state"
                        % (worker.name, worker.worker_id),
                location=worker_location(new_graph, worker.worker_id),
            )


@rule("R003", "reconfiguration", "Snapshot-cut preconditions",
      "An asynchronous state transfer snapshots at an iteration "
      "boundary; the boundary edge contents implied by the old schedule "
      "must be non-negative, cover every peeking leftover, and admit a "
      "phase-1 plan of the new configuration (a dry run of the planner).")
def check_snapshot_cut(ctx: ReconfigurationContext) -> Iterable[Finding]:
    if not ctx.old_graph.is_stateful:
        return  # stateless plans use implicit transfer: no snapshot cut.
    old_schedule = ctx.resolved_old_schedule()
    if old_schedule is None:
        return
    from repro.core.planner import boundary_edge_counts
    counts = boundary_edge_counts(old_schedule)
    leftovers = structural_leftover(ctx.old_graph)
    bad = False
    for edge in ctx.old_graph.edges:
        count = counts.get(edge.index, 0)
        if count < 0:
            bad = True
            yield Finding(
                rule="R003", severity=ERROR,
                message="boundary cut on edge %d holds %d items: the old "
                        "schedule over-consumes and no clean snapshot "
                        "exists" % (edge.index, count),
                location="edge %d" % edge.index,
            )
        elif count < leftovers[edge.index]:
            bad = True
            yield Finding(
                rule="R003", severity=ERROR,
                message="boundary cut on edge %d holds %d item(s) but the "
                        "peeking consumer needs %d: the snapshot cannot "
                        "satisfy the new init schedule"
                        % (edge.index, count, leftovers[edge.index]),
                location="edge %d" % edge.index,
            )
    if bad:
        return
    # Dry-run phase-1 planning against the meta state, exactly as the
    # two-phase compiler will: a failure here would otherwise surface
    # as a crash after the reconfiguration already started.
    known_edges = {edge.index for edge in ctx.new_graph.edges}
    stale = sorted(k for k in counts if k >= 0 and k not in known_edges)
    if stale:
        yield Finding(
            rule="R003", severity=ERROR,
            message="boundary state references edges %r that do not exist "
                    "in the new graph" % (stale,),
        )
        return
    try:
        prefill = None
        if ctx.cost_model is not None:
            from repro.compiler.two_phase import _boundary_prefill
            prefill = _boundary_prefill(
                ctx.new_graph, ctx.new_configuration, ctx.cost_model)
        make_schedule(
            ctx.new_graph,
            multiplier=ctx.new_configuration.multiplier,
            initial_contents={k: v for k, v in counts.items() if k >= 0},
            prefill=prefill,
        )
    except Exception as exc:
        yield Finding(
            rule="R003", severity=ERROR,
            message="phase-1 planning of the new configuration fails "
                    "against the boundary state: %s"
                    % str(exc).splitlines()[0],
        )


@rule("R004", "reconfiguration", "Fluid batch-plan completeness",
      "The fluid strategy migrates keyed state in bounded batches; the "
      "batch plan derived from the running graph must cover every "
      "stateful worker exactly once, with keyed-field declarations "
      "that actually shard (field exists, holds a dict, and the "
      "split/merge round-trip is the identity) — otherwise a fluid "
      "migration would drop or duplicate state mid-flight.")
def check_batch_plan(ctx: ReconfigurationContext) -> Iterable[Finding]:
    if not ctx.old_graph.is_stateful:
        return  # nothing to migrate; fluid degenerates to adaptive.
    from repro.compiler.cost_model import CostModel
    from repro.core.migration import plan_migration
    cost_model = ctx.cost_model if ctx.cost_model is not None else CostModel()
    batch_bytes = max(1, int(cost_model.fluid_batch_bytes))
    try:
        plan = plan_migration(ctx.old_graph, batch_bytes)
    except Exception as exc:
        yield Finding(
            rule="R004", severity=ERROR,
            message="fluid batch planning fails: %s"
                    % str(exc).splitlines()[0],
        )
        return
    for problem in plan.validate(ctx.old_graph):
        yield Finding(rule="R004", severity=ERROR, message=problem)
    oversized = [shard for shard in plan.shards
                 if shard.estimated_bytes > batch_bytes]
    if oversized:
        shard = oversized[0]
        yield Finding(
            rule="R004", severity=INFO,
            message="%d shard(s) exceed the %d-byte batch bound (e.g. "
                    "%s#%d shard %d at ~%d bytes): a single key range "
                    "cannot be split further, so its batch will blow "
                    "the latency budget"
                    % (len(oversized), batch_bytes, shard.worker_name,
                       shard.worker_id, shard.shard_index,
                       shard.estimated_bytes),
            location=worker_location(ctx.old_graph, shard.worker_id),
        )


RECONFIG_RULES: List[str] = ["R001", "R002", "R003", "R004"]
