"""Findings and reports — the output side of the static analyzer.

A :class:`Finding` is one diagnostic produced by one rule: a stable
rule id, a severity, a human-readable message, a location string and
optional multi-line details (e.g. a balance-equation ratio chain).
An :class:`AnalysisReport` aggregates the findings of one analysis run
(one graph, one configuration, one reconfiguration plan, or one source
tree) and renders them for humans or as JSON for CI.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Tuple

__all__ = [
    "ERROR",
    "WARNING",
    "INFO",
    "AnalysisError",
    "AnalysisReport",
    "Finding",
]

ERROR = "error"
WARNING = "warning"
INFO = "info"

#: Sort order: most severe first.
_SEVERITY_RANK = {ERROR: 0, WARNING: 1, INFO: 2}


@dataclass(frozen=True)
class Finding:
    """One diagnostic emitted by one analysis rule."""

    rule: str                       # stable id, e.g. "G001"
    severity: str                   # error | warning | info
    message: str                    # one-line human-readable diagnostic
    location: str = ""              # e.g. "worker fir0#3", "edge 2", "a.py:12"
    details: Tuple[str, ...] = ()   # optional multi-line explanation

    def __post_init__(self):
        if self.severity not in _SEVERITY_RANK:
            raise ValueError("unknown severity %r" % (self.severity,))

    @property
    def is_error(self) -> bool:
        return self.severity == ERROR

    def format(self) -> str:
        head = "%s [%s] %s" % (self.severity.upper(), self.rule, self.message)
        if self.location:
            head += "  (at %s)" % self.location
        if self.details:
            head += "\n" + "\n".join("    " + line for line in self.details)
        return head

    def to_dict(self) -> Dict[str, object]:
        return {
            "rule": self.rule,
            "severity": self.severity,
            "message": self.message,
            "location": self.location,
            "details": list(self.details),
        }


@dataclass
class AnalysisReport:
    """All findings of one analysis run, with query/rendering helpers."""

    context: str = ""
    findings: List[Finding] = field(default_factory=list)

    def add(self, finding: Finding) -> None:
        self.findings.append(finding)

    def extend(self, findings: Iterable[Finding]) -> None:
        for finding in findings:
            self.add(finding)

    def merge(self, other: "AnalysisReport") -> "AnalysisReport":
        self.findings.extend(other.findings)
        return self

    # -- queries ----------------------------------------------------------

    @property
    def errors(self) -> List[Finding]:
        return [f for f in self.findings if f.severity == ERROR]

    @property
    def warnings(self) -> List[Finding]:
        return [f for f in self.findings if f.severity == WARNING]

    @property
    def ok(self) -> bool:
        """True when no error-severity finding was produced."""
        return not self.errors

    def by_rule(self, rule: str) -> List[Finding]:
        return [f for f in self.findings if f.rule == rule]

    def rules_fired(self) -> List[str]:
        seen: List[str] = []
        for finding in self.findings:
            if finding.rule not in seen:
                seen.append(finding.rule)
        return seen

    def sorted_findings(self) -> List[Finding]:
        return sorted(
            self.findings,
            key=lambda f: (_SEVERITY_RANK[f.severity], f.rule, f.location),
        )

    # -- rendering --------------------------------------------------------

    def summary(self) -> str:
        return "%d error(s), %d warning(s), %d finding(s) total" % (
            len(self.errors), len(self.warnings), len(self.findings))

    def render(self) -> str:
        lines = []
        if self.context:
            lines.append("== %s ==" % self.context)
        if not self.findings:
            lines.append("clean: no findings")
        else:
            for finding in self.sorted_findings():
                lines.append(finding.format())
            lines.append(self.summary())
        return "\n".join(lines)

    def to_dict(self) -> Dict[str, object]:
        return {
            "context": self.context,
            "errors": len(self.errors),
            "warnings": len(self.warnings),
            "findings": [f.to_dict() for f in self.sorted_findings()],
        }

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent)


class AnalysisError(Exception):
    """An analysis gate rejected an operation; carries the report."""

    def __init__(self, report: AnalysisReport):
        self.report = report
        errors = report.errors
        headline = "; ".join(
            "[%s] %s" % (f.rule, f.message) for f in errors[:3])
        if len(errors) > 3:
            headline += "; and %d more" % (len(errors) - 3)
        super().__init__(
            "static analysis rejected %s: %s"
            % (report.context or "the operation", headline))
