"""glosslint: static verification for Gloss stream programs.

A rule-based static-analysis engine over the three things that can go
wrong before (or instead of) runtime: the stream graph itself, a
configuration of it, and a live-reconfiguration plan — plus an
``ast``-level sim-determinism sanitizer for the simulator's own
sources.  See ``ANALYSIS.md`` at the repo root for the rule catalog.

Typical use::

    from repro.analysis import check_graph, check_reconfiguration
    report = check_graph(graph)
    if not report.ok:
        raise AnalysisError(report)

or from the command line::

    python -m repro.analysis --app FMRadio
    python -m repro.analysis --all-apps --self-lint --json
"""

from repro.analysis.engine import (check_app, check_configuration,
                                   check_graph, check_reconfiguration,
                                   run_family, self_lint)
from repro.analysis.findings import (ERROR, INFO, WARNING, AnalysisError,
                                     AnalysisReport, Finding)
from repro.analysis.registry import AnalysisPass, all_rules, passes_for, rule

__all__ = [
    "ERROR",
    "INFO",
    "WARNING",
    "AnalysisError",
    "AnalysisPass",
    "AnalysisReport",
    "Finding",
    "all_rules",
    "check_app",
    "check_configuration",
    "check_graph",
    "check_reconfiguration",
    "passes_for",
    "rule",
    "run_family",
    "self_lint",
]
