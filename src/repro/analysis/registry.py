"""The pluggable pass registry.

Every analysis rule is a plain function decorated with :func:`rule`,
which attaches the rule's metadata and registers it under a *family*
(``graph``, ``configuration``, ``reconfiguration``, ``determinism``).
The engine runs every registered pass of a family against a context
object and collects the findings; new rules — e.g. the checks a future
optimizer PR needs — plug in by decorating a function, with no changes
to the engine or the CLI.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List

from repro.analysis.findings import Finding

__all__ = ["AnalysisPass", "all_rules", "passes_for", "rule"]

#: family name -> registered passes, in registration order.
_REGISTRY: Dict[str, List["AnalysisPass"]] = {}

FAMILIES = ("graph", "configuration", "reconfiguration", "determinism")


@dataclass(frozen=True)
class AnalysisPass:
    """One registered rule: metadata plus the check function.

    ``check(ctx)`` receives the family's context object and yields (or
    returns an iterable of) :class:`Finding` objects.
    """

    rule_id: str
    family: str
    title: str
    description: str
    check: Callable[[object], Iterable[Finding]]

    def run(self, ctx: object) -> List[Finding]:
        return list(self.check(ctx) or ())


def rule(rule_id: str, family: str, title: str, description: str):
    """Decorator: register a check function as an analysis rule."""
    if family not in FAMILIES:
        raise ValueError(
            "unknown pass family %r (have: %s)"
            % (family, ", ".join(FAMILIES)))

    def decorator(fn: Callable[[object], Iterable[Finding]]):
        passes = _REGISTRY.setdefault(family, [])
        if any(p.rule_id == rule_id for p in passes):
            raise ValueError("duplicate rule id %r" % (rule_id,))
        analysis_pass = AnalysisPass(
            rule_id=rule_id,
            family=family,
            title=title,
            description=description,
            check=fn,
        )
        passes.append(analysis_pass)
        fn.analysis_pass = analysis_pass
        return fn

    return decorator


def passes_for(family: str) -> List[AnalysisPass]:
    """All passes of a family, in registration order."""
    return list(_REGISTRY.get(family, ()))


def all_rules() -> List[AnalysisPass]:
    """Every registered rule across families, for docs and ``--list-rules``."""
    rules: List[AnalysisPass] = []
    for family in FAMILIES:
        rules.extend(passes_for(family))
    return rules
