"""Sim-determinism sanitizer: an ``ast``-module lint for sim code.

The simulation kernel is a deterministic discrete-event machine, and
the regression suite fingerprints entire runs event-by-event
(``tests/test_determinism.py``).  That dynamic check only catches
nondeterminism the scenario happens to exercise; this static
counterpart flags the *sources* of nondeterminism before they ever
fire:

* ``DET001`` — wall-clock reads (``time.time`` and friends,
  ``datetime.now``) in simulated code, where only ``env.now`` is
  meaningful;
* ``DET002`` — unseeded global randomness (module-level ``random.*``
  calls, ``numpy.random.*``) instead of a seeded ``random.Random``;
* ``DET003`` — iteration over sets (literals, ``set()``/``frozenset()``
  calls, or locals bound to them), whose arbitrary order can reorder
  simulated events between runs or interpreters;
* ``DET004`` — ``id()``-based ordering (``sorted(..., key=id)``),
  which varies with memory layout run to run.

Suppression: append ``# glosslint: ignore[DET003]`` to the flagged
line (a bare ``# glosslint: ignore`` suppresses every rule on the
line); a file whose first lines contain ``# glosslint: skip-file`` is
skipped entirely.
"""

from __future__ import annotations

import ast
import os
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.analysis.findings import ERROR, Finding
from repro.analysis.registry import rule

__all__ = ["DETERMINISM_RULES", "lint_paths", "lint_source"]

_WALLCLOCK_TIME_FNS = frozenset({
    "time", "time_ns", "monotonic", "monotonic_ns",
    "perf_counter", "perf_counter_ns", "clock",
})
_WALLCLOCK_DATETIME_FNS = frozenset({"now", "utcnow", "today"})
_SEEDED_RANDOM_FACTORIES = frozenset({
    "Random", "SystemRandom",  # explicit choice, caller owns the seed
})
_SEEDED_NUMPY_FACTORIES = frozenset({
    "default_rng", "RandomState", "Generator", "SeedSequence",
})
#: Wrappers that preserve (dis)order of their first argument.
_ORDER_PRESERVING = frozenset({
    "list", "tuple", "iter", "enumerate", "reversed",
})


class _Imports:
    """Aliases under which the hazardous modules are visible."""

    def __init__(self):
        self.time_modules: set = set()       # import time [as t]
        self.time_functions: set = set()     # from time import time, ...
        self.random_modules: set = set()
        self.random_functions: set = set()
        self.numpy_modules: set = set()
        self.datetime_modules: set = set()   # import datetime [as dt]
        self.datetime_classes: set = set()   # from datetime import datetime

    def collect(self, tree: ast.AST) -> None:
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    top = alias.name.split(".")[0]
                    bound = alias.asname or top
                    if top == "time":
                        self.time_modules.add(bound)
                    elif top == "random":
                        self.random_modules.add(bound)
                    elif top == "numpy":
                        self.numpy_modules.add(bound)
                    elif top == "datetime":
                        self.datetime_modules.add(bound)
            elif isinstance(node, ast.ImportFrom) and node.module:
                top = node.module.split(".")[0]
                for alias in node.names:
                    bound = alias.asname or alias.name
                    if top == "time" and alias.name in _WALLCLOCK_TIME_FNS:
                        self.time_functions.add(bound)
                    elif top == "random":
                        if alias.name not in _SEEDED_RANDOM_FACTORIES:
                            self.random_functions.add(bound)
                    elif top == "datetime" and alias.name == "datetime":
                        self.datetime_classes.add(bound)


def _attribute_chain(node: ast.AST) -> Optional[List[str]]:
    """``a.b.c`` -> ["a", "b", "c"]; None for non-name chains."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        parts.reverse()
        return parts
    return None


def _is_set_producing(node: ast.AST, set_locals: set) -> bool:
    """Does evaluating ``node`` yield an unordered set?"""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Name):
        return node.id in set_locals
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        name = node.func.id
        if name in ("set", "frozenset"):
            return True
        if name in _ORDER_PRESERVING and node.args:
            # list(set(...)) launders the type but not the disorder.
            return _is_set_producing(node.args[0], set_locals)
    return False


def _is_id_key(node: ast.AST) -> bool:
    if isinstance(node, ast.Name) and node.id == "id":
        return True
    if isinstance(node, ast.Lambda):
        body = node.body
        return (isinstance(body, ast.Call)
                and isinstance(body.func, ast.Name)
                and body.func.id == "id")
    return False


class _Sanitizer(ast.NodeVisitor):
    def __init__(self, filename: str, imports: _Imports):
        self.filename = filename
        self.imports = imports
        self.findings: List[Finding] = []
        #: Local names currently known to hold sets, per scope.
        self._scope_stack: List[set] = [set()]

    # -- helpers ----------------------------------------------------------

    def _emit(self, rule_id: str, node: ast.AST, message: str) -> None:
        self.findings.append(Finding(
            rule=rule_id, severity=ERROR, message=message,
            location="%s:%d" % (self.filename, node.lineno),
        ))

    def _set_locals(self) -> set:
        return self._scope_stack[-1]

    # -- scopes -----------------------------------------------------------

    def _visit_scope(self, node: ast.AST) -> None:
        self._scope_stack.append(set())
        self.generic_visit(node)
        self._scope_stack.pop()

    def visit_FunctionDef(self, node):
        self._visit_scope(node)

    def visit_AsyncFunctionDef(self, node):
        self._visit_scope(node)

    def visit_Lambda(self, node):
        self._visit_scope(node)

    def visit_Assign(self, node):
        produces = _is_set_producing(node.value, self._set_locals())
        for target in node.targets:
            if isinstance(target, ast.Name):
                if produces:
                    self._set_locals().add(target.id)
                else:
                    self._set_locals().discard(target.id)
        self.generic_visit(node)

    def visit_AugAssign(self, node):
        # x |= {...} keeps x a set; x += [...] on a tracked name is a
        # type error anyway, so leave the tracking untouched.
        self.generic_visit(node)

    # -- iteration sites (DET003) -----------------------------------------

    def _check_iterable(self, node: ast.AST) -> None:
        if _is_set_producing(node, self._set_locals()):
            self._emit(
                "DET003", node,
                "iteration over an unordered set: the visit order is "
                "arbitrary and can reorder simulated events between "
                "runs; sort it or use a sequence")

    def visit_For(self, node):
        self._check_iterable(node.iter)
        self.generic_visit(node)

    def visit_AsyncFor(self, node):
        self._check_iterable(node.iter)
        self.generic_visit(node)

    def _visit_comprehension(self, node):
        for generator in node.generators:
            self._check_iterable(generator.iter)
        self.generic_visit(node)

    visit_ListComp = _visit_comprehension
    visit_SetComp = _visit_comprehension
    visit_DictComp = _visit_comprehension
    visit_GeneratorExp = _visit_comprehension

    # -- calls (DET001/DET002/DET004) --------------------------------------

    def visit_Call(self, node):
        self._check_wallclock(node)
        self._check_random(node)
        self._check_id_ordering(node)
        self.generic_visit(node)

    def _check_wallclock(self, node: ast.Call) -> None:
        imports = self.imports
        chain = _attribute_chain(node.func)
        if chain is None:
            return
        if (len(chain) == 2 and chain[0] in imports.time_modules
                and chain[1] in _WALLCLOCK_TIME_FNS):
            self._emit("DET001", node,
                       "wall-clock read %s() in simulated code: use the "
                       "simulation clock (env.now)" % ".".join(chain))
        elif (len(chain) == 1 and chain[0] in imports.time_functions):
            self._emit("DET001", node,
                       "wall-clock read %s() in simulated code: use the "
                       "simulation clock (env.now)" % chain[0])
        elif (len(chain) == 3 and chain[0] in imports.datetime_modules
                and chain[1] == "datetime"
                and chain[2] in _WALLCLOCK_DATETIME_FNS):
            self._emit("DET001", node,
                       "wall-clock read %s() in simulated code"
                       % ".".join(chain))
        elif (len(chain) == 2 and chain[0] in imports.datetime_classes
                and chain[1] in _WALLCLOCK_DATETIME_FNS):
            self._emit("DET001", node,
                       "wall-clock read %s() in simulated code"
                       % ".".join(chain))

    def _check_random(self, node: ast.Call) -> None:
        imports = self.imports
        chain = _attribute_chain(node.func)
        if chain is None:
            return
        if (len(chain) == 2 and chain[0] in imports.random_modules
                and chain[1] not in _SEEDED_RANDOM_FACTORIES):
            self._emit("DET002", node,
                       "unseeded global randomness %s(): use a seeded "
                       "random.Random instance" % ".".join(chain))
        elif len(chain) == 1 and chain[0] in imports.random_functions:
            self._emit("DET002", node,
                       "unseeded global randomness %s(): use a seeded "
                       "random.Random instance" % chain[0])
        elif (len(chain) == 3 and chain[0] in imports.numpy_modules
                and chain[1] == "random"
                and chain[2] not in _SEEDED_NUMPY_FACTORIES):
            self._emit("DET002", node,
                       "unseeded numpy randomness %s(): use a seeded "
                       "Generator (numpy.random.default_rng(seed))"
                       % ".".join(chain))

    def _check_id_ordering(self, node: ast.Call) -> None:
        orders = False
        if isinstance(node.func, ast.Name):
            orders = node.func.id in ("sorted", "min", "max")
        elif isinstance(node.func, ast.Attribute):
            orders = node.func.attr == "sort"
        if not orders:
            return
        for keyword in node.keywords:
            if keyword.arg == "key" and _is_id_key(keyword.value):
                self._emit(
                    "DET004", node,
                    "id()-based ordering: object addresses vary run to "
                    "run; key on a stable field instead")


def _suppressed(line: str, rule_id: str) -> bool:
    marker = line.partition("# glosslint:")[2]
    if not marker:
        return False
    marker = marker.strip()
    if marker == "ignore":
        return True
    return marker.startswith("ignore[") and rule_id in marker


def lint_source(source: str, filename: str = "<string>") -> List[Finding]:
    """Lint one file's source text; returns the findings."""
    lines = source.splitlines()
    for line in lines[:5]:
        if "# glosslint: skip-file" in line:
            return []
    try:
        tree = ast.parse(source, filename=filename)
    except SyntaxError as exc:
        return [Finding(
            rule="DET000", severity=ERROR,
            message="file does not parse: %s" % (exc,),
            location="%s:%d" % (filename, exc.lineno or 0),
        )]
    imports = _Imports()
    imports.collect(tree)
    sanitizer = _Sanitizer(filename, imports)
    sanitizer.visit(tree)
    kept = []
    for finding in sanitizer.findings:
        lineno = int(finding.location.rsplit(":", 1)[1])
        line = lines[lineno - 1] if 0 < lineno <= len(lines) else ""
        if not _suppressed(line, finding.rule):
            kept.append(finding)
    return kept


def _python_files(paths: Sequence[str]) -> List[str]:
    files: List[str] = []
    for path in paths:
        if os.path.isdir(path):
            for dirpath, dirnames, filenames in os.walk(path):
                dirnames[:] = sorted(
                    d for d in dirnames if d != "__pycache__")
                for name in sorted(filenames):
                    if name.endswith(".py"):
                        files.append(os.path.join(dirpath, name))
        elif path.endswith(".py"):
            files.append(path)
    return files


def lint_paths(paths: Sequence[str],
               relative_to: Optional[str] = None) -> List[Finding]:
    """Lint every ``*.py`` under ``paths`` (deterministic file order)."""
    findings: List[Finding] = []
    for path in _python_files(paths):
        display = path
        if relative_to:
            display = os.path.relpath(path, relative_to)
        with open(path, "r", encoding="utf-8") as handle:
            source = handle.read()
        findings.extend(lint_source(source, filename=display))
    return findings


# The registry entries make the sanitizer's rules visible to
# ``--list-rules`` and the docs; each check dispatches a shared walk,
# so the registered functions filter one rule out of a full lint.
def _family_pass(rule_id: str):
    def check(ctx) -> Iterable[Finding]:
        # ctx is a (paths, relative_to) pair prepared by the engine.
        paths, relative_to = ctx
        return [f for f in lint_paths(paths, relative_to)
                if f.rule == rule_id]
    return check


_DET_RULES: Tuple[Tuple[str, str, str], ...] = (
    ("DET001", "No wall-clock reads in sim code",
     "time.time()/monotonic()/perf_counter() and datetime.now() read "
     "the host clock; simulated code must use env.now."),
    ("DET002", "No unseeded global randomness",
     "Module-level random.*() and numpy.random.*() draw from an "
     "unseeded global generator; use a seeded random.Random / "
     "numpy default_rng."),
    ("DET003", "No iteration over unordered sets",
     "Set iteration order is arbitrary; feeding it into event "
     "scheduling makes runs diverge. Sort, or keep a sequence."),
    ("DET004", "No id()-based ordering",
     "sorted(..., key=id) orders by memory address, which varies "
     "between runs and interpreters."),
)

for _rule_id, _title, _description in _DET_RULES:
    rule(_rule_id, "determinism", _title, _description)(
        _family_pass(_rule_id))

DETERMINISM_RULES: List[str] = [r[0] for r in _DET_RULES]
