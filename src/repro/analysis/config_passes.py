"""Configuration pass family: validity of one (graph, configuration).

Extends ``Configuration.validate`` with diagnostics instead of a
single exception: partition coverage, cross-blob cycle detection with
the offending cycle named, node-placement and blob-connectivity
validity, and steady-state buffer-capacity bounds derived from the
repetition vector.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

from repro.analysis.contexts import ConfigurationContext
from repro.analysis.findings import ERROR, WARNING, Finding
from repro.analysis.registry import rule

__all__ = ["CONFIG_RULES"]

#: Per-edge steady buffer capacity beyond which we warn (items).
HUGE_BUFFER_ITEMS = 1 << 20
#: Schedule multipliers beyond this explode buffering and drain time.
HUGE_MULTIPLIER = 4096


@rule("C001", "configuration", "Partition coverage",
      "Blobs must exactly partition the graph's workers: no empty or "
      "duplicated blobs, no worker left out, none assigned twice, no "
      "unknown workers, and a schedule multiplier >= 1.")
def check_partition_coverage(ctx: ConfigurationContext) -> Iterable[Finding]:
    configuration = ctx.configuration
    graph = ctx.graph
    if configuration.multiplier < 1:
        yield Finding(
            rule="C001", severity=ERROR,
            message="schedule multiplier must be >= 1, got %d"
                    % configuration.multiplier,
        )
    if not configuration.blobs:
        yield Finding(
            rule="C001", severity=ERROR,
            message="configuration has no blobs",
        )
        return
    seen_blob_ids: Dict[int, int] = {}
    covered: Dict[int, int] = {}
    for blob in configuration.blobs:
        if blob.blob_id in seen_blob_ids:
            yield Finding(
                rule="C001", severity=ERROR,
                message="blob id %d declared twice" % blob.blob_id,
                location="blob %d" % blob.blob_id,
            )
        seen_blob_ids[blob.blob_id] = blob.blob_id
        if not blob.workers:
            yield Finding(
                rule="C001", severity=ERROR,
                message="blob %d is empty" % blob.blob_id,
                location="blob %d" % blob.blob_id,
            )
        for worker_id in sorted(blob.workers):
            if worker_id in covered:
                yield Finding(
                    rule="C001", severity=ERROR,
                    message="worker %d assigned to blobs %d and %d"
                            % (worker_id, covered[worker_id], blob.blob_id),
                    location="worker #%d" % worker_id,
                )
            covered[worker_id] = blob.blob_id
    all_workers = {w.worker_id for w in graph.workers}
    missing = sorted(all_workers - set(covered))
    if missing:
        yield Finding(
            rule="C001", severity=ERROR,
            message="workers not assigned to any blob: %r" % (missing,),
        )
    extra = sorted(set(covered) - all_workers)
    if extra:
        yield Finding(
            rule="C001", severity=ERROR,
            message="configuration names unknown workers: %r" % (extra,),
        )


def _blob_edges(ctx: ConfigurationContext) -> Optional[List[tuple]]:
    """Distinct cross-blob (src_blob, dst_blob) pairs, in edge order.

    None when the worker->blob mapping is incomplete (C001 reports it).
    """
    mapping = ctx.configuration.worker_to_blob()
    pairs: List[tuple] = []
    for edge in ctx.graph.edges:
        if edge.src not in mapping or edge.dst not in mapping:
            return None
        src_blob = mapping[edge.src]
        dst_blob = mapping[edge.dst]
        if src_blob != dst_blob and (src_blob, dst_blob) not in pairs:
            pairs.append((src_blob, dst_blob))
    return pairs


@rule("C002", "configuration", "Cross-blob acyclicity",
      "The blob-level graph must stay acyclic: a cycle of blobs "
      "deadlocks the software pipeline. The finding names one cycle.")
def check_blob_acyclicity(ctx: ConfigurationContext) -> Iterable[Finding]:
    pairs = _blob_edges(ctx)
    if pairs is None:
        return
    successors: Dict[int, List[int]] = {}
    for src_blob, dst_blob in pairs:
        successors.setdefault(src_blob, []).append(dst_blob)
    # Iterative DFS with colors, deterministic over sorted blob ids.
    color: Dict[int, int] = {}  # 0 absent/white, 1 gray, 2 black
    for start in sorted(b.blob_id for b in ctx.configuration.blobs):
        if color.get(start):
            continue
        stack = [(start, iter(successors.get(start, ())))]
        color[start] = 1
        path = [start]
        while stack:
            node, children = stack[-1]
            advanced = False
            for child in children:
                if color.get(child) == 1:
                    cycle = path[path.index(child):] + [child]
                    yield Finding(
                        rule="C002", severity=ERROR,
                        message="blob graph contains a cycle: %s"
                                % " -> ".join("blob %d" % b for b in cycle),
                    )
                    return
                if not color.get(child):
                    color[child] = 1
                    path.append(child)
                    stack.append((child, iter(successors.get(child, ()))))
                    advanced = True
                    break
            if not advanced:
                color[node] = 2
                path.pop()
                stack.pop()


@rule("C003", "configuration", "Node placement validity",
      "Every blob must name a plausible node; when a cluster is in "
      "scope, unknown nodes are errors and retired/crashed nodes are "
      "warnings (the plan may be racing a recovery).")
def check_node_placement(ctx: ConfigurationContext) -> Iterable[Finding]:
    availability = ctx.node_availability
    for blob in ctx.configuration.blobs:
        if blob.node_id < 0:
            yield Finding(
                rule="C003", severity=ERROR,
                message="blob %d placed on invalid node id %d"
                        % (blob.blob_id, blob.node_id),
                location="blob %d" % blob.blob_id,
            )
            continue
        if availability is None:
            continue
        if blob.node_id not in availability:
            yield Finding(
                rule="C003", severity=ERROR,
                message="blob %d placed on unknown node %d (cluster has "
                        "nodes %r)" % (blob.blob_id, blob.node_id,
                                       sorted(availability)),
                location="blob %d" % blob.blob_id,
            )
        elif not availability[blob.node_id]:
            yield Finding(
                rule="C003", severity=WARNING,
                message="blob %d placed on unavailable node %d"
                        % (blob.blob_id, blob.node_id),
                location="blob %d" % blob.blob_id,
            )


@rule("C004", "configuration", "Blob connectivity",
      "Each blob's workers should form a weakly connected subgraph; a "
      "disconnected blob fuses unrelated work onto one node and defeats "
      "the partitioner's locality assumptions.")
def check_blob_connectivity(ctx: ConfigurationContext) -> Iterable[Finding]:
    graph = ctx.graph
    known = {w.worker_id for w in graph.workers}
    for blob in ctx.configuration.blobs:
        members = sorted(blob.workers & known)
        if len(members) <= 1:
            continue
        member_set = set(members)
        reached = {members[0]}
        frontier = [members[0]]
        while frontier:
            current = frontier.pop()
            for edge in (graph.out_edges(current) + graph.in_edges(current)):
                for neighbor in (edge.src, edge.dst):
                    if neighbor in member_set and neighbor not in reached:
                        reached.add(neighbor)
                        frontier.append(neighbor)
        unreached = sorted(member_set - reached)
        if unreached:
            yield Finding(
                rule="C004", severity=WARNING,
                message="blob %d is not connected: workers %r have no "
                        "intra-blob path to workers %r"
                        % (blob.blob_id, unreached,
                           sorted(member_set - set(unreached))),
                location="blob %d" % blob.blob_id,
            )


@rule("C005", "configuration", "Steady-state buffer-capacity bounds",
      "Steady buffer capacities derived from the repetition vector and "
      "multiplier must be positive and bounded: a non-positive capacity "
      "means the schedule is infeasible, an enormous one means the "
      "multiplier or rates will exhaust memory.")
def check_buffer_capacities(ctx: ConfigurationContext) -> Iterable[Finding]:
    repetitions = ctx.repetitions()
    if repetitions is None:
        return  # graph-level G001 reports the rate failure.
    configuration = ctx.configuration
    if configuration.multiplier > HUGE_MULTIPLIER:
        yield Finding(
            rule="C005", severity=WARNING,
            message="schedule multiplier %d is enormous: buffering and "
                    "drain time scale with it" % configuration.multiplier,
        )
    if configuration.multiplier < 1:
        return  # C001 reports it; capacities would be nonsense.
    from repro.sched.schedule import steady_buffer_capacities
    try:
        capacities = steady_buffer_capacities(
            ctx.graph, repetitions, multiplier=configuration.multiplier)
    except Exception as exc:
        yield Finding(
            rule="C005", severity=ERROR,
            message="steady buffer capacities are not computable: %r"
                    % (exc,),
        )
        return
    for edge in ctx.graph.edges:
        capacity = capacities[edge.index]
        if capacity <= 0:
            yield Finding(
                rule="C005", severity=ERROR,
                message="edge %d has non-positive steady buffer capacity "
                        "%d: the schedule starves it" % (edge.index, capacity),
                location="edge %d" % edge.index,
            )
        elif capacity > HUGE_BUFFER_ITEMS:
            yield Finding(
                rule="C005", severity=WARNING,
                message="edge %d needs a %d-item steady buffer "
                        "(multiplier %d): likely to exhaust memory"
                        % (edge.index, capacity, configuration.multiplier),
                location="edge %d" % edge.index,
            )


CONFIG_RULES: List[str] = ["C001", "C002", "C003", "C004", "C005"]
