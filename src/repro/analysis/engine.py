"""The analysis engine: run pass families over concrete inputs.

Entry points mirror the things the runtime wants vetted:

* :func:`check_graph` — the ``graph`` family over one stream graph;
* :func:`check_configuration` — the ``configuration`` family over one
  (graph, configuration) pair;
* :func:`check_reconfiguration` — graph + configuration families over
  the *new* side, plus the ``reconfiguration`` family over the whole
  plan (this is what the reconfiguration manager gates on);
* :func:`check_app` — everything above for one shipped application
  and its default configurations;
* :func:`self_lint` — the sim-determinism sanitizer over a source
  tree (``src/repro`` by default).

Each returns an :class:`~repro.analysis.findings.AnalysisReport`;
callers that want hard failure raise
:class:`~repro.analysis.findings.AnalysisError` when ``report.ok`` is
false.
"""

from __future__ import annotations

import os
from typing import Dict, List, Optional, Sequence

from repro.analysis.contexts import (ConfigurationContext, GraphContext,
                                     ReconfigurationContext)
from repro.analysis.findings import AnalysisReport, Finding
from repro.analysis.registry import passes_for

# Importing the pass modules registers their rules.
from repro.analysis import graph_passes  # noqa: F401
from repro.analysis import vector_passes  # noqa: F401
from repro.analysis import shm_passes  # noqa: F401
from repro.analysis import config_passes  # noqa: F401
from repro.analysis import reconfig_passes  # noqa: F401
from repro.analysis import determinism

__all__ = [
    "check_app",
    "check_configuration",
    "check_graph",
    "check_reconfiguration",
    "run_family",
    "self_lint",
]


def run_family(family: str, ctx: object) -> List[Finding]:
    """Run every registered pass of ``family`` against ``ctx``."""
    findings: List[Finding] = []
    for analysis_pass in passes_for(family):
        findings.extend(analysis_pass.run(ctx))
    return findings


def check_graph(graph, name: str = "") -> AnalysisReport:
    """Vet one stream graph's SDF properties."""
    ctx = GraphContext(graph, name=name)
    report = AnalysisReport(context=name or "graph")
    report.extend(run_family("graph", ctx))
    return report


def check_configuration(graph, configuration,
                        name: str = "",
                        node_availability: Optional[Dict[int, bool]] = None,
                        ) -> AnalysisReport:
    """Vet one configuration against its graph."""
    ctx = ConfigurationContext(
        graph, configuration, name=name,
        node_availability=node_availability)
    report = AnalysisReport(
        context=name or ("configuration %s" % (configuration.name or "?")))
    report.extend(run_family("configuration", ctx))
    return report


def check_reconfiguration(old_graph, old_configuration,
                          new_graph, new_configuration,
                          old_schedule=None,
                          cost_model=None,
                          node_availability: Optional[Dict[int, bool]] = None,
                          name: str = "") -> AnalysisReport:
    """Vet a full reconfiguration plan.

    Runs the graph and configuration families over the *new* side (a
    broken target graph or partition must be caught here, not after
    draining started), then the reconfiguration family over the
    old -> new transition.
    """
    report = AnalysisReport(context=name or "reconfiguration plan")
    report.extend(run_family(
        "graph", GraphContext(new_graph, name=name)))
    report.extend(run_family(
        "configuration",
        ConfigurationContext(new_graph, new_configuration, name=name,
                             node_availability=node_availability)))
    ctx = ReconfigurationContext(
        old_graph=old_graph,
        old_configuration=old_configuration,
        new_graph=new_graph,
        new_configuration=new_configuration,
        old_schedule=old_schedule,
        cost_model=cost_model,
        node_availability=node_availability,
        name=name,
    )
    report.extend(run_family("reconfiguration", ctx))
    return report


def check_app(app_name: str, scale: int = 1,
              nodes: int = 2) -> AnalysisReport:
    """Vet one shipped application end to end.

    Checks the graph, the default configurations every experiment
    starts from (single blob, even partition, optimal partition), and
    a representative reconfiguration plan (single blob -> partitioned)
    so the reconfiguration family runs against real programs too.
    """
    from repro.apps import get_app
    from repro.compiler.cost_model import CostModel
    from repro.compiler.partition import (partition_even,
                                          single_blob_configuration)
    from repro.compiler.optimizer import partition_optimal

    spec = get_app(app_name)
    graph = spec.blueprint(scale=scale)()
    label = "%s (scale %d)" % (spec.name, scale)
    report = check_graph(graph, name=label)

    node_ids = list(range(nodes))
    cost_model = CostModel()
    single = single_blob_configuration(graph, node_id=node_ids[0])
    even = partition_even(graph, node_ids)
    optimal = partition_optimal(graph, node_ids, cost_model=cost_model)
    for configuration in (single, even, optimal):
        report.merge(check_configuration(
            graph, configuration,
            name="%s / %s" % (label, configuration.name)))
    report.merge(check_reconfiguration(
        graph, single, spec.blueprint(scale=scale)(), even,
        cost_model=cost_model,
        name="%s / %s -> %s" % (label, single.name, even.name)))
    return report


def _default_lint_root() -> str:
    import repro
    return os.path.dirname(os.path.abspath(repro.__file__))


def self_lint(paths: Optional[Sequence[str]] = None) -> AnalysisReport:
    """Run the sim-determinism sanitizer over a source tree."""
    if paths is None:
        root = _default_lint_root()
        paths = [root]
        relative_to = os.path.dirname(root)
    else:
        paths = list(paths)
        relative_to = os.getcwd()
    report = AnalysisReport(
        context="determinism lint: %s" % ", ".join(paths))
    report.extend(determinism.lint_paths(paths, relative_to=relative_to))
    return report
