"""Graph pass family: SDF properties of a stream graph in isolation.

These passes subsume (and extend) the old ``graph/inspect.py``
``rate_audit`` heuristics: balance-equation consistency with a full
implied-ratio-chain explanation, initialization-schedule feasibility /
deadlock detection, and peek-vs-pop buffer-requirement checks.
"""

from __future__ import annotations

from typing import Iterable, List

from repro.analysis.contexts import GraphContext, worker_location
from repro.analysis.findings import ERROR, WARNING, Finding
from repro.analysis.registry import rule
from repro.sched.balance import RateInconsistencyError

__all__ = ["GRAPH_RULES"]

#: Peek-to-pop ratio beyond which the peeking buffer is flagged.
HUGE_PEEK_RATIO = 64
#: Repetition-vector entries beyond this make iterations enormous.
HUGE_REPETITIONS = 4096


@rule("G001", "graph", "SDF balance-equation consistency",
      "The declared push/pop rates must admit a steady-state repetition "
      "vector. On failure the finding carries the implied-ratio chains "
      "of both conflicting derivation paths, naming every edge involved.")
def check_balance_equations(ctx: GraphContext) -> Iterable[Finding]:
    error = ctx.repetitions_error()
    if error is None:
        return
    if isinstance(error, RateInconsistencyError):
        location = "" if error.edge is None else "edge %d" % error.edge.index
        yield Finding(
            rule="G001", severity=ERROR,
            message="balance equations unsolvable: %s"
                    % str(error).splitlines()[0],
            location=location,
            details=error.chain,
        )
    else:
        yield Finding(
            rule="G001", severity=ERROR,
            message="balance equations unsolvable: %s" % (error,),
        )


@rule("G002", "graph", "Init-schedule feasibility and deadlock freedom",
      "A cold-start initialization schedule must exist, leave every edge "
      "holding at least its structural peeking leftover, and the steady "
      "schedule must be net-zero on every edge (no unbounded growth, no "
      "starvation deadlock).")
def check_init_feasibility(ctx: GraphContext) -> Iterable[Finding]:
    graph = ctx.graph
    order = graph.topological_order()
    if len(order) != len(graph.workers):
        in_cycle = sorted(
            w.worker_id for w in graph.workers if w.worker_id not in order)
        yield Finding(
            rule="G002", severity=ERROR,
            message="graph contains a cycle through workers %r: no "
                    "topological schedule exists (deadlock)" % (in_cycle,),
        )
        return
    repetitions = ctx.repetitions()
    if repetitions is None:
        return  # G001 already reported the rate failure.
    from repro.sched.schedule import (init_repetitions,
                                      structural_leftover)
    try:
        init = init_repetitions(graph)
    except Exception as exc:
        yield Finding(
            rule="G002", severity=ERROR,
            message="initialization schedule is not computable: %r" % (exc,),
        )
        return
    leftovers = structural_leftover(graph)
    for edge in graph.edges:
        src = graph.worker(edge.src)
        dst = graph.worker(edge.dst)
        after_init = (src.push_rates[edge.src_port] * init[edge.src]
                      - dst.pop_rates[edge.dst_port] * init[edge.dst])
        if after_init < leftovers[edge.index]:
            yield Finding(
                rule="G002", severity=ERROR,
                message="init schedule leaves %d item(s) on edge %d but "
                        "%s needs %d leftover to peek: the first steady "
                        "iteration deadlocks"
                        % (after_init, edge.index, dst.name,
                           leftovers[edge.index]),
                location="edge %d" % edge.index,
            )
        produced = src.push_rates[edge.src_port] * repetitions[edge.src]
        consumed = dst.pop_rates[edge.dst_port] * repetitions[edge.dst]
        if produced != consumed:
            yield Finding(
                rule="G002", severity=ERROR,
                message="steady iteration is not net-zero on edge %d: "
                        "%d produced vs %d consumed per iteration"
                        % (edge.index, produced, consumed),
                location="edge %d" % edge.index,
            )


@rule("G003", "graph", "Peek-vs-pop buffer requirements",
      "A connected input that never pops accumulates upstream data "
      "forever; a peek rate far above the pop rate forces an enormous "
      "peeking buffer.")
def check_peek_buffers(ctx: GraphContext) -> Iterable[Finding]:
    graph = ctx.graph
    for worker in graph.workers:
        for port, (peek, pop) in enumerate(
                zip(worker.peek_rates, worker.pop_rates)):
            if pop == 0 and graph.in_edge(worker.worker_id, port):
                yield Finding(
                    rule="G003", severity=ERROR,
                    message="%s input %d never consumes (pop 0): upstream "
                            "data accumulates forever"
                            % (worker.name, port),
                    location=worker_location(graph, worker.worker_id),
                )
            elif peek > HUGE_PEEK_RATIO * max(pop, 1):
                yield Finding(
                    rule="G003", severity=WARNING,
                    message="%s input %d peeks %dx its pop rate: enormous "
                            "peeking buffer"
                            % (worker.name, port, peek // max(pop, 1)),
                    location=worker_location(graph, worker.worker_id),
                )


@rule("G004", "graph", "Work estimates and repetition-vector size",
      "Zero-work workers are invisible to load balancing; repetition "
      "vectors with huge entries make every iteration, drain and init "
      "enormous.")
def check_work_and_repetitions(ctx: GraphContext) -> Iterable[Finding]:
    graph = ctx.graph
    for worker in graph.workers:
        if worker.work_estimate == 0 and not worker.builtin:
            yield Finding(
                rule="G004", severity=WARNING,
                message="%s declares zero work: load balancing will "
                        "ignore it" % worker.name,
                location=worker_location(graph, worker.worker_id),
            )
    repetitions = ctx.repetitions()
    if repetitions:
        largest = max(repetitions.values())
        if largest > HUGE_REPETITIONS:
            worst = max(repetitions, key=repetitions.__getitem__)
            yield Finding(
                rule="G004", severity=WARNING,
                message="repetition vector peaks at %d: rate mismatch "
                        "will make iterations enormous" % largest,
                location=worker_location(graph, worst),
            )


GRAPH_RULES: List[str] = ["G001", "G002", "G003", "G004"]
