"""Command-line front end: ``python -m repro.analysis``.

Examples::

    python -m repro.analysis --app FMRadio
    python -m repro.analysis --all-apps --self-lint --json -o report.json
    python -m repro.analysis --lint src/repro/core
    python -m repro.analysis --list-rules

Exit status is 1 when any error-severity finding is produced (CI
gates on this), 0 otherwise.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from repro.analysis.engine import check_app, self_lint
from repro.analysis.findings import AnalysisReport
from repro.analysis.registry import all_rules


def _resolve_app_name(name: str) -> str:
    from repro.apps import app_registry
    registry = app_registry()
    for known in registry:
        if known.lower() == name.lower():
            return known
    raise SystemExit(
        "unknown app %r (have: %s)" % (name, ", ".join(sorted(registry))))


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="glosslint: static verification of stream graphs, "
                    "configurations, reconfiguration plans, and the "
                    "simulator's own determinism.")
    parser.add_argument(
        "--app", action="append", default=[], metavar="NAME",
        help="analyze one shipped application (case-insensitive; "
             "repeatable)")
    parser.add_argument(
        "--all-apps", action="store_true",
        help="analyze every registered application")
    parser.add_argument(
        "--scale", type=int, default=1,
        help="application scale factor (default 1)")
    parser.add_argument(
        "--nodes", type=int, default=2,
        help="cluster size assumed for default configurations (default 2)")
    parser.add_argument(
        "--self-lint", action="store_true",
        help="run the sim-determinism sanitizer over src/repro")
    parser.add_argument(
        "--lint", action="append", default=[], metavar="PATH",
        help="run the sanitizer over a file or directory (repeatable)")
    parser.add_argument(
        "--json", action="store_true", dest="as_json",
        help="emit a JSON report instead of text")
    parser.add_argument(
        "--output", "-o", metavar="FILE",
        help="write the report to FILE as well as stdout")
    parser.add_argument(
        "--list-rules", action="store_true",
        help="print the rule catalog and exit")
    return parser


def _list_rules() -> str:
    lines = []
    for analysis_pass in all_rules():
        lines.append("%-7s %-16s %s" % (
            analysis_pass.rule_id, analysis_pass.family, analysis_pass.title))
        lines.append("        %s" % analysis_pass.description)
    return "\n".join(lines)


def main(argv: Optional[List[str]] = None) -> int:
    parser = _build_parser()
    args = parser.parse_args(argv)

    if args.list_rules:
        print(_list_rules())
        return 0

    reports: List[AnalysisReport] = []
    app_names = [_resolve_app_name(name) for name in args.app]
    if args.all_apps:
        from repro.apps import app_registry
        app_names = list(app_registry())
    for name in app_names:
        reports.append(check_app(name, scale=args.scale, nodes=args.nodes))
    if args.self_lint:
        reports.append(self_lint())
    if args.lint:
        reports.append(self_lint(args.lint))

    if not reports:
        parser.error("nothing to do: pass --app/--all-apps, --self-lint, "
                     "--lint or --list-rules")

    errors = sum(len(r.errors) for r in reports)
    warnings = sum(len(r.warnings) for r in reports)
    if args.as_json:
        payload = {
            "errors": errors,
            "warnings": warnings,
            "reports": [r.to_dict() for r in reports],
        }
        text = json.dumps(payload, indent=2)
    else:
        chunks = [r.render() for r in reports]
        chunks.append("total: %d error(s), %d warning(s) across %d "
                      "report(s)" % (errors, warnings, len(reports)))
        text = "\n\n".join(chunks)

    print(text)
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(text + "\n")
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main())
