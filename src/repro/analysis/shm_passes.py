"""Shared-memory channel lifecycle: no leaked ``/dev/shm`` segments.

The process executor backs every boundary edge (and the head's graph
input) with a :class:`~repro.runtime.channels.ShmArrayChannel` — a
named POSIX shared-memory segment.  Unlike ordinary memory, a segment
outlives the process that forgot it: a ring that is closed but never
unlinked stays in ``/dev/shm`` until reboot, and a long-lived serving
process that reconfigures thousands of times would bleed the host dry
one 4 KiB segment at a time.

V003 probes the lifecycle dynamically, the way V001/V002 probe kernel
contracts: it builds a :class:`~repro.runtime.procexec
.ProcessBlobExecutor` over a deep copy of the graph, runs it, and shuts
it down on both the orderly path (drain, then ``close``) and the abort
path (``close`` mid-run, workers still live, nothing drained) — then
flags any segment the executor created but left linked.  The probe
cleans up leaked segments after flagging them, so a failing pass does
not itself pollute the host.

Like V001 yields nothing without NumPy (the vectorized backend cannot
be selected then either), V003 yields nothing unless ``REPRO_PARALLEL``
selects the process backend: forking four probe processes per graph
check is only worth paying where the lifecycle under scrutiny can
actually run.  The CI static-analysis job sets the variable so every
shipped app is vetted there.
"""

from __future__ import annotations

import copy
from typing import Iterable, List

from repro.analysis.contexts import GraphContext
from repro.analysis.findings import ERROR, Finding
from repro.analysis.registry import rule

try:
    import numpy as _np
except ImportError:  # pragma: no cover - the toolchain bakes numpy in
    _np = None

__all__ = ["SHM_RULES"]

#: Steady iterations run before the orderly and abort teardowns.
LIFECYCLE_PROBE_ITERATIONS = 2


def _probe_values(count: int):
    """Same benign deterministic lattice the V001/V002 probes feed."""
    return [0.1 + 0.7 * ((i * 13) % 17) / 17.0 for i in range(count)]


def _halves_partition(graph) -> List[List[int]]:
    """Topo-order prefix/suffix split — convex by construction."""
    topo = list(graph.topological_order())
    mid = max(1, len(topo) // 2)
    return [topo[:mid], topo[mid:]]


def _close_executor(executor) -> None:
    """Teardown hook probed by the pass (tests monkeypatch this to
    simulate an executor that forgets its segments)."""
    executor.close()


def _leaked(before: set) -> List[str]:
    from repro.runtime.channels import shm_open_segments
    return [name for name in shm_open_segments() if name not in before]


def _reclaim(names: Iterable[str]) -> None:
    """Unlink segments a failing teardown left behind: the pass
    reports the leak, it must not reproduce it."""
    from multiprocessing import shared_memory
    for name in names:
        try:
            segment = shared_memory.SharedMemory(name=name)
            segment.close()
            segment.unlink()
        except Exception:  # pragma: no cover - already gone
            pass
    from repro.runtime.channels import _shm_created
    for name in names:
        _shm_created.discard(name)


@rule("V003", "graph", "Shared-memory channel lifecycle",
      "Every ShmArrayChannel a process executor creates must be closed "
      "and unlinked on shutdown and abort paths alike — a linked "
      "segment outlives the process in /dev/shm.  The pass runs a "
      "ProcessBlobExecutor over a deep copy of the graph and tears it "
      "down both orderly (drain then close) and abruptly (close "
      "mid-run with live workers), flagging any segment left linked. "
      "Probes only when REPRO_PARALLEL selects the process backend.")
def check_shm_channel_lifecycle(ctx: GraphContext) -> Iterable[Finding]:
    if _np is None:
        return
    from repro.runtime.channels import shm_open_segments
    from repro.runtime.fastpath import vector_capable
    from repro.runtime.parallel import parallel_backend
    from repro.runtime.procexec import (ProcessBlobExecutor,
                                        process_executor_available)
    from repro.sched.schedule import make_schedule

    graph = ctx.graph
    if parallel_backend() != "process":
        return  # the lifecycle under scrutiny cannot be selected
    if not process_executor_available():
        return
    if len(graph.workers) < 2 or not vector_capable(graph.workers):
        return
    try:
        schedule = make_schedule(graph)
    except Exception:
        return  # broken rates are G001's finding, not ours
    head = graph.head
    head_extra = max(head.peek_rates[0] - head.pop_rates[0], 0)
    feed_len = (schedule.init_in
                + LIFECYCLE_PROBE_ITERATIONS * schedule.steady_in
                + head_extra)

    location = "graph %s" % (ctx.name or "<anon>")
    for mode in ("orderly", "abort"):
        try:
            probe_graph = copy.deepcopy(graph)
        except Exception:
            return  # unprobeable state; nothing to conclude
        before = set(shm_open_segments())
        try:
            executor = ProcessBlobExecutor(
                probe_graph, _halves_partition(probe_graph), processes=2)
        except (RuntimeError, ValueError):
            return  # platform or graph not eligible: nothing to probe
        try:
            executor.push_input(_probe_values(feed_len))
            if not executor.initialized:
                executor.run_init()
            executor.run_steady(LIFECYCLE_PROBE_ITERATIONS)
            if mode == "orderly":
                executor.drain()
            # abort mode: workers may still be live, nothing drained —
            # the close path must tear the segments down regardless.
        except Exception as exc:
            _close_executor(executor)
            leaked = _leaked(before)
            _reclaim(leaked)
            yield Finding(
                rule="V003", severity=ERROR,
                message="process executor raised during the %s lifecycle "
                        "probe (%s: %s)%s"
                        % (mode, type(exc).__name__, exc,
                           ", leaking %d shared-memory segment(s)"
                           % len(leaked) if leaked else ""),
                location=location,
            )
            return
        _close_executor(executor)
        leaked = _leaked(before)
        if leaked:
            _reclaim(leaked)
            yield Finding(
                rule="V003", severity=ERROR,
                message="%s teardown left %d shared-memory segment(s) "
                        "linked (%s): every ShmArrayChannel must be "
                        "closed and unlinked on %s paths, or /dev/shm "
                        "fills over the process lifetime"
                        % (mode, len(leaked), ", ".join(sorted(leaked)),
                           "shutdown" if mode == "orderly" else "abort"),
                location=location,
            )


SHM_RULES: List[str] = ["V003"]
