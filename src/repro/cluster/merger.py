"""The output merger (paper Figure 7, Sections 7.1-7.2).

During concurrent execution, both graph instances emit output for the
duplicated input.  Every emission arrives tagged with its *canonical
output index* (the instance's output offset plus its local count), so
merging is exact: the merger forwards each canonical index once, in
order, and discards duplicates.

Two modes reproduce the two seamless schemes:

* **fixed** — the old (primary) instance's output is forwarded; the
  new (secondary) instance's output is *held back* until the old
  instance stops, then flushed at once.  This is what creates the
  output-rate spike of Figure 8b when the new configuration is
  faster.
* **adaptive** — both instances' output merges by index as it
  arrives; the moment the new instance's frontier catches the old
  one's, ``caught_up`` fires so the controller can abandon the old
  instance (adaptive merging).
"""

from __future__ import annotations

import math
from typing import Any, Dict, List, Optional, Tuple

from repro.metrics.series import ThroughputSeries
from repro.sim.kernel import Environment, Event

__all__ = ["OutputMerger"]


class OutputMerger:
    """Splices instance output streams into the program output."""

    #: Trace counter sampling granularity (the paper's one-second
    #: measurement buckets, Section 9).
    TRACE_BUCKET = 1.0

    def __init__(self, env: Environment, collect_items: bool = False):
        self.env = env
        self.tracer = env.tracer
        self.series = ThroughputSeries()
        self.collect_items = collect_items
        self.items: List[Any] = []
        self.next_index = 0
        self.mode = "single"
        self.primary_id: Optional[int] = None
        self.secondary_id: Optional[int] = None
        self.caught_up: Optional[Event] = None
        self._holdback: List[Tuple[int, List[Any]]] = []
        self._frontiers: Dict[int, int] = {}
        #: Output items received more than once (the duplicated input's
        #: redundant output, discarded during splicing).
        self.duplicate_items = 0
        #: Canonical indices *forwarded downstream* more than once.
        #: Structurally zero — the merger advances ``next_index``
        #: monotonically — so any nonzero value is a splicing bug; the
        #: CI smoke gate asserts it stays 0 in fault-free runs.
        self.duplicate_emitted = 0
        self._emit_watermark = 0
        self._trace_bucket_start = 0.0
        self._trace_bucket_count = 0

    # -- mode control ------------------------------------------------------

    def set_primary(self, instance_id: int) -> None:
        self.mode = "single"
        self.primary_id = instance_id
        self.secondary_id = None
        self._holdback = []

    def begin_transition(self, old_id: int, new_id: int, mode: str) -> None:
        """Enter concurrent-execution merging ('fixed' or 'adaptive')."""
        if mode not in ("fixed", "adaptive"):
            raise ValueError("bad merge mode %r" % (mode,))
        self.mode = mode
        self.primary_id = old_id
        self.secondary_id = new_id
        self.caught_up = self.env.event()
        self._holdback = []
        self._frontiers.setdefault(old_id, self.next_index)
        self._frontiers.setdefault(new_id, 0)
        self.tracer.instant("merger", "begin_transition", mode=mode,
                            old=old_id, new=new_id)

    def abort_transition(self) -> None:
        """Reconfiguration rollback: drop the new instance's output.

        The held-back output (fixed mode) is discarded — those
        canonical indices will be re-emitted by the surviving old
        instance, which is exactly why splicing by index makes
        rollback safe.  Output the secondary already merged (adaptive
        mode) was identical to the old instance's by construction, so
        nothing needs rewinding.
        """
        if self.secondary_id is None:
            return
        dropped = sum(len(items) for _, items in self._holdback)
        demoted = self.secondary_id
        self.tracer.instant("merger", "abort_transition",
                            demoted=demoted, dropped_items=dropped)
        self.set_primary(self.primary_id)
        self.caught_up = None

    def finish_transition(self) -> None:
        """The old instance stopped: flush held-back output, promote new.

        The flush happens at a single instant — for the fixed scheme
        with a faster new configuration this is the output spike.
        """
        if self.secondary_id is None:
            return
        flushed = sum(len(items) for _, items in self._holdback)
        for start, items in self._holdback:
            self._emit_range(start, items)
        self._holdback = []
        self.tracer.instant("merger", "finish_transition",
                            promoted=self.secondary_id,
                            flushed_items=flushed)
        self.set_primary(self.secondary_id)

    # -- data path ------------------------------------------------------------

    def receive(self, instance_id: int, start_index: int, items: List[Any]) -> None:
        """Accept a contiguous output range from an instance."""
        end = start_index + len(items)
        frontier = self._frontiers.get(instance_id, 0)
        self._frontiers[instance_id] = max(frontier, end)
        if self.mode == "fixed" and instance_id == self.secondary_id:
            if end > self.next_index:
                self._holdback.append((start_index, items))
        else:
            self._emit_range(start_index, items)
        self._check_caught_up()

    def _emit_range(self, start: int, items: List[Any]) -> None:
        end = start + len(items)
        if end <= self.next_index:
            self.duplicate_items += len(items)
            return  # fully redundant (duplicated input's output)
        if start > self.next_index:
            raise RuntimeError(
                "output sequence gap: have %d, received range starting %d"
                % (self.next_index, start)
            )
        fresh = end - self.next_index
        self.duplicate_items += len(items) - fresh
        if self.collect_items:
            self.items.extend(items[len(items) - fresh:])
        # Invariant trip-wire: the freshly forwarded range must start
        # at (not before) the highest index ever forwarded.
        if self.next_index < self._emit_watermark:
            self.duplicate_emitted += min(end, self._emit_watermark) - self.next_index
        self.next_index = end
        self._emit_watermark = max(self._emit_watermark, end)
        self.series.record(self.env.now, fresh)
        if self.tracer.enabled:
            self._trace_output(fresh)

    # -- trace sampling -------------------------------------------------------

    def _trace_output(self, fresh: int) -> None:
        """Aggregate emissions into per-bucket trace counter samples.

        One counter event at most per simulated second keeps the trace
        compact while still letting analysis reconstruct the output
        series to within one measurement bucket.
        """
        now = self.env.now
        width = self.TRACE_BUCKET
        if now >= self._trace_bucket_start + width:
            self._flush_trace_bucket()
            self._trace_bucket_start = math.floor(now / width) * width
        self._trace_bucket_count += fresh

    def _flush_trace_bucket(self) -> None:
        if self._trace_bucket_count > 0:
            # Stamp the sample at the bucket midpoint: bucketized
            # re-analysis then bins it into the right second.
            self.tracer.counter(
                "output", "items", self._trace_bucket_count,
                track="output",
                time=self._trace_bucket_start + self.TRACE_BUCKET / 2.0,
            )
            self._trace_bucket_count = 0

    def flush_trace_output(self) -> None:
        """Flush the trailing partial sampling bucket (export hygiene)."""
        if self.tracer.enabled:
            self._flush_trace_bucket()

    def _check_caught_up(self) -> None:
        if (self.caught_up is None or self.caught_up.triggered
                or self.secondary_id is None):
            return
        new_frontier = self._frontiers.get(self.secondary_id, 0)
        old_frontier = self._frontiers.get(self.primary_id, 0)
        if new_frontier >= old_frontier and new_frontier > 0:
            self.tracer.instant("merger", "caught_up",
                                frontier=new_frontier)
            self.caught_up.succeed(new_frontier)
