"""The simulated distributed runtime.

Reproduces StreamJIT's distributed runtime (paper Section 2,
Figure 2): a controller node orchestrating blobs hosted across
cluster nodes, data channels between blobs, and a control channel to
each node — all on top of the discrete-event kernel so that
reconfiguration timing (downtime, overlap, catch-up) is measured in
simulated wall-clock seconds while the actual SDF computation runs
functionally underneath.
"""

from repro.cluster.app import Cluster, StreamApp
from repro.cluster.instance import BlobProcess, GraphInstance
from repro.cluster.links import DataLink
from repro.cluster.merger import OutputMerger
from repro.cluster.node import SimNode
from repro.cluster.source import InputSource, InputView

__all__ = [
    "BlobProcess",
    "Cluster",
    "DataLink",
    "GraphInstance",
    "InputSource",
    "InputView",
    "OutputMerger",
    "SimNode",
    "StreamApp",
]
