"""Graph instances and blob processes.

A :class:`GraphInstance` is one compiled program executing on the
cluster: one :class:`BlobProcess` per blob, data links between them,
an input view into the shared source, and canonical input/output
offsets that make its output stream spliceable.

A :class:`BlobProcess` is the simulated lifecycle of one blob
(paper Section 2): single-threaded initialization, then the
multithreaded steady-state loop — wait for input, execute one
schedule iteration (simulated duration from the cost model, actual
firings from the functional runtime), ship outputs, synchronize at
the barrier.  The barrier is also where control takes effect: stop
requests, drain requests, and asynchronous state transfer snapshots.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from repro.compiler.compiled import CompiledBlob, CompiledProgram
from repro.runtime.channels import GRAPH_INPUT, GRAPH_OUTPUT
from repro.runtime.state import ProgramState, estimate_bytes
from repro.sim.kernel import Environment, Event, Interrupt
from repro.cluster.links import DataLink
from repro.cluster.node import SimNode
from repro.cluster.source import InputView

__all__ = ["BlobProcess", "GraphInstance", "ASTRequest"]


@dataclass
class ASTRequest:
    """An asynchronous-state-transfer request for one blob.

    The default shape (``kind="full"``) is the paper's AST: snapshot
    the blob's whole state share at an iteration boundary.  The fluid
    strategy adds ``kind="keyed_shard"`` — capture one key-range shard
    of one keyed worker's table — and ``residual=True`` on its final
    full cut, which makes keyed workers under migration report deltas
    instead of full tables.
    """

    iteration: int
    reply: Event
    kind: str = "full"
    residual: bool = False
    worker_id: int = -1
    shard_index: int = 0
    n_shards: int = 1


class BlobProcess:
    """Simulated execution of one blob of one instance."""

    def __init__(self, instance: "GraphInstance", blob: CompiledBlob,
                 node: SimNode):
        self.instance = instance
        self.env: Environment = instance.env
        self.blob = blob
        self.runtime = blob.runtime
        self.node = node
        self.out_links: Dict[int, DataLink] = {}
        self.in_links: List[DataLink] = []
        self._wake: Optional[Event] = None
        self.stop_at: Optional[int] = None
        self.drain_reply: Optional[Event] = None
        self.ast: Optional[ASTRequest] = None
        self.done: Event = self.env.event()
        self.process = None
        self.last_iteration_seconds = 0.0
        #: Fault injection: the blob executes nothing before this time.
        self.stall_until = 0.0

    # -- control ----------------------------------------------------------------

    def notify(self) -> None:
        if self._wake is not None and not self._wake.triggered:
            self._wake.succeed()

    def request_stop_at(self, iteration: int) -> None:
        self.stop_at = iteration
        self.notify()

    def request_drain(self, reply: Event) -> None:
        self.drain_reply = reply
        self.notify()

    def cancel_stop(self) -> None:
        """Withdraw a pending stop request (reconfiguration rollback)."""
        self.stop_at = None
        self.notify()

    def stall(self, until: float) -> None:
        """Fault injection: freeze the steady loop until ``until``."""
        self.stall_until = max(self.stall_until, until)

    def request_ast(self, iteration: int, reply: Event,
                    residual: bool = False) -> bool:
        """Ask for a state snapshot at the given iteration boundary.

        Returns False when the boundary has already passed (the
        controller predicted too little lead time and must retry with
        a later boundary — the reason the paper aims three seconds
        ahead).
        """
        return self.request_snapshot(
            ASTRequest(iteration=iteration, reply=reply, residual=residual))

    def request_snapshot(self, request: ASTRequest) -> bool:
        """Install an :class:`ASTRequest` (full or keyed-shard)."""
        if self.runtime.iteration + 2 > request.iteration:
            # Too close: the blob may be mid-iteration and would sail
            # past the boundary before seeing the request.
            return False
        self.ast = request
        self.notify()
        return True

    def _control_pending(self) -> bool:
        return (
            self.drain_reply is not None
            or (self.stop_at is not None
                and self.runtime.iteration >= self.stop_at)
            or (self.ast is not None
                and self.runtime.iteration >= self.ast.iteration)
        )

    # -- helpers -------------------------------------------------------------------

    def _wait(self, predicate: Callable[[], bool]):
        while not predicate():
            self._wake = self.env.event()
            yield self._wake
            self._wake = None

    def _cores(self) -> float:
        return self.node.cores_for(self.instance.instance_id) * self.node.speed

    def _ship(self, staged: Dict[int, List]):
        for key, items in staged.items():
            if key == GRAPH_OUTPUT:
                self.instance.emit_output(items)
            else:
                yield from self.out_links[key].send(items)

    def _fill_input(self, init: bool):
        """Head blob only: pull items from the instance's input view."""
        runtime = self.runtime
        if not runtime.has_head:
            return
        requirements = (runtime.init_shortfall if init
                        else runtime.steady_shortfall)
        while True:
            shortfall = requirements().get(GRAPH_INPUT, 0)
            if shortfall <= 0:
                return
            if self.drain_reply is not None:
                return  # draining: no new input
            if (self.stop_at is not None
                    and self.runtime.iteration >= self.stop_at):
                return  # past the stop boundary: no new input
            items, retry = self.instance.input_view.take(shortfall, self.env.now)
            if items:
                runtime.deliver(GRAPH_INPUT, items)
            if len(items) < shortfall:
                yield self.env.timeout(max(retry - self.env.now, 1e-6))

    def _incoming_in_flight(self) -> int:
        return sum(link.in_flight for link in self.in_links)

    # -- lifecycle ------------------------------------------------------------------

    def start(self) -> None:
        self.process = self.env.process(self._run())

    def _run(self):
        try:
            yield from self._init_phase()
            yield from self._steady_loop()
        except Interrupt:
            pass
        finally:
            if not self.done.triggered:
                self.done.succeed()

    def _init_phase(self):
        runtime = self.runtime
        with self.env.tracer.span(
                "blob", "blob.init", track="node%d" % self.node.node_id,
                instance=self.instance.instance_id,
                blob=self.blob.spec.blob_id):
            yield from self._fill_input(init=True)
            yield from self._wait(runtime.ready_for_init)
            # Initialization is single-threaded, but it still contends
            # for the node with whatever else runs there (the old
            # instance, compile jobs): scale by the node's current share.
            contention = min(max(
                1.0 / max(self.node.share_of(self.instance.instance_id),
                          1e-3),
                1.0), 8.0)
            duration = self.blob.init_seconds() * contention / self.node.speed
            if duration > 0:
                yield self.env.timeout(duration)
            staged = runtime.run_init()
            yield from self._ship(staged)
        self.instance._blob_initialized(self)

    def _steady_loop(self):
        runtime = self.runtime
        env = self.env
        while True:
            if self.drain_reply is not None:
                yield from self._drain()
                return
            if self.stop_at is not None and runtime.iteration >= self.stop_at:
                self.instance._blob_stopped(self)
                return
            if self.ast is not None:
                if runtime.iteration == self.ast.iteration:
                    yield from self._ast_snapshot()
                elif runtime.iteration > self.ast.iteration:
                    # Defensive: a missed boundary must not wedge the
                    # blob; report failure so the controller retries.
                    request, self.ast = self.ast, None
                    if not request.reply.triggered:
                        request.reply.fail(
                            RuntimeError("AST boundary missed"))
            while self.instance.paused:
                yield self.instance.resume_event
            if self.stall_until > env.now:
                # Injected worker stall: hold the loop, then re-dispatch
                # (control requests may have arrived while frozen).
                yield env.timeout(self.stall_until - env.now)
                continue
            yield from self._fill_input(init=False)
            if not runtime.ready_for_steady():
                yield from self._wait(
                    lambda: runtime.ready_for_steady() or self._control_pending()
                )
                continue  # re-dispatch on control flags
            duration = self.blob.iteration_seconds(self._cores())
            self.last_iteration_seconds = duration
            pool = self.instance.pool
            if pool is not None:
                # Real parallelism (REPRO_PARALLEL=1): the functional
                # iteration runs on a pool thread while the simulated
                # clock advances, so independent blobs genuinely
                # overlap on real cores.  The join happens before
                # shipping and before any barrier-time control
                # (snapshots, drains), preserving the simulation's
                # ordering exactly.
                future = pool.submit(runtime.run_steady)
                yield env.timeout(duration)
                staged = future.result()
            else:
                yield env.timeout(duration)
                staged = runtime.run_steady()
            yield from self._ship(staged)
            for link in self.in_links:
                link.notify_sender()

    def _upstream_procs(self):
        return [link.producer for link in self.in_links
                if link.producer is not None]

    def _drain(self):
        """Switch to the interpreter and flush everything flushable.

        The blob drains what it has (at interpreter speed), keeps
        consuming whatever upstream blobs flush toward it, and is done
        once nothing can fire, nothing is in flight, and every
        upstream blob has finished draining.
        """
        runtime = self.runtime
        upstream = self._upstream_procs()
        for producer in upstream:
            if producer.done.callbacks is not None:
                producer.done.callbacks.append(lambda _ev: self.notify())

        def _quiescent() -> bool:
            return (self._incoming_in_flight() == 0
                    and all(p.done.triggered for p in upstream))

        total_firings = 0
        with self.env.tracer.span(
                "blob", "blob.drain", track="node%d" % self.node.node_id,
                instance=self.instance.instance_id,
                blob=self.blob.spec.blob_id) as span:
            while True:
                firings, staged = runtime.drain_pass()
                if firings:
                    total_firings += firings
                    duration = (self.blob.drain_seconds(firings)
                                / self.node.speed)
                    yield self.env.timeout(duration)
                    yield from self._ship(staged)
                    continue
                if not _quiescent():
                    yield from self._wait(_quiescent)
                    continue
                break
            state = runtime.capture_state()
            pause = self.instance.cost_model.snapshot_seconds(
                state.size_bytes())
            if pause > 0:
                yield self.env.timeout(pause)
            span.annotate(firings=total_firings,
                          state_bytes=state.size_bytes())
        self.instance._blob_stopped(self)
        self.drain_reply.succeed(state)

    def _ast_snapshot(self):
        """Capture state at the barrier without stopping (paper 6.2)."""
        request = self.ast
        runtime = self.runtime
        tracer = self.env.tracer
        track = "node%d" % self.node.node_id
        if request.kind == "keyed_shard":
            yield from self._shard_snapshot(request)
            return
        expected = self.instance.expected_cut(self.blob, request.iteration)
        with tracer.span("blob", "ast.snapshot", track=track,
                         instance=self.instance.instance_id,
                         blob=self.blob.spec.blob_id,
                         boundary=request.iteration):
            yield from self._wait(lambda: all(
                runtime.channels[key].total_pushed >= pushed
                for key, (pushed, _) in expected.items()
            ))
            cut_lengths = {key: cut for key, (_, cut) in expected.items()}
            state = runtime.capture_state(cut_lengths=cut_lengths,
                                          residual=request.residual)
            # The blob is paused while the snapshot is cut; the pause
            # scales with the captured bytes (zero by default) — the
            # latency spike fluid migration bounds per batch.
            pause = self.instance.cost_model.snapshot_seconds(
                state.size_bytes())
            if pause > 0:
                yield self.env.timeout(pause)
        self.ast = None
        # The transfer to the controller happens off the critical path:
        # the blob keeps executing while the state travels.
        self._async_transfer(state, state.size_bytes(), request.reply)

    def _shard_snapshot(self, request: ASTRequest):
        """Fluid migration: capture one key-range shard at the barrier.

        No edge cut is involved — the shard is a pure worker-state
        read, so the blob pauses only for the shard's own snapshot
        cost and keeps running while the shard travels.
        """
        worker = self.runtime.graph.worker(request.worker_id)
        track = "node%d" % self.node.node_id
        session = getattr(worker, "key_migration", None)
        if session is None:
            # Not retryable (unlike a missed boundary): the strategy
            # aborts rather than loop — hence LookupError, which the
            # shard_capture retry loop does not swallow.
            self.ast = None
            if not request.reply.triggered:
                request.reply.fail(LookupError(
                    "no active key migration on worker %d"
                    % request.worker_id))
            return
        with self.env.tracer.span(
                "blob", "shard.snapshot", track=track,
                instance=self.instance.instance_id,
                blob=self.blob.spec.blob_id, worker=request.worker_id,
                shard=request.shard_index, boundary=request.iteration):
            shard = session.capture_shard(request.shard_index,
                                          request.n_shards)
            n_bytes = estimate_bytes(shard)
            pause = self.instance.cost_model.snapshot_seconds(n_bytes)
            if pause > 0:
                yield self.env.timeout(pause)
        self.ast = None
        self._async_transfer(shard, n_bytes, request.reply)

    def _async_transfer(self, payload, n_bytes: int, reply: Event) -> None:
        """Ship a snapshot to the controller off the critical path."""
        tracer = self.env.tracer
        delay = self.instance.cost_model.transfer_seconds(n_bytes)
        transfer = tracer.begin("state", "state.transfer",
                                track="node%d" % self.node.node_id,
                                blob=self.blob.spec.blob_id,
                                bytes=n_bytes, async_=True)
        arrival = self.env.timeout(delay)

        def _complete(_event, reply=reply, payload=payload, span=transfer):
            span.finish()
            if not reply.triggered:
                reply.succeed(payload)

        arrival.callbacks.append(_complete)


class GraphInstance:
    """One compiled program instance executing on the cluster."""

    def __init__(
        self,
        app: "StreamApp",  # noqa: F821 - forward reference
        instance_id: int,
        program: CompiledProgram,
        input_view: InputView,
        input_offset: int,
        output_offset: int,
        label: str = "",
    ):
        self.app = app
        self.env: Environment = app.env
        self.cost_model = app.cost_model
        self.instance_id = instance_id
        self.program = program
        self.schedule = program.schedule
        self.input_view = input_view
        self.input_offset = input_offset
        self.output_offset = output_offset
        self.label = label or "cfg%d" % instance_id

        self.blob_procs: Dict[int, BlobProcess] = {}
        #: Thread pool for real blob parallelism (REPRO_PARALLEL and
        #: a multi-blob program); ``None`` keeps the serial sim path.
        self.pool = None
        #: Forked blob workers (REPRO_PARALLEL=process) and the
        #: shared-memory rings backing their boundary channels.  Both
        #: torn down — rings closed *and* unlinked — on every stop,
        #: abandon and fail path (glosslint V003 probes this).
        self._proc_proxies: List = []
        self._shm_channels: List = []
        self.status = "created"
        self.draining = False
        self.paused = False
        self.resume_event: Event = self.env.event()
        self.running_event: Event = self.env.event()
        self.stopped_event: Event = self.env.event()
        #: Fires (with the failure cause) if the instance dies from an
        #: injected fault rather than an orderly stop/abandon.
        self.failed_event: Event = self.env.event()
        self.failure_cause: Optional[object] = None
        self.emitted_local = 0
        self._initialized_count = 0
        self._stopped_count = 0
        self.started_at: Optional[float] = None
        self._init_span = None

    # -- construction -------------------------------------------------------------

    def _build(self) -> None:
        for blob in self.program.blobs:
            node = self.app.cluster.node(blob.spec.node_id)
            self.blob_procs[blob.spec.blob_id] = BlobProcess(self, blob, node)
        # Wire data links along boundary edges.
        for blob in self.program.blobs:
            producer = self.blob_procs[blob.spec.blob_id]
            for key, consumer_blob_id in self.program.consumers(
                    blob.spec.blob_id).items():
                consumer = self.blob_procs[consumer_blob_id]
                capacity = self._link_capacity(consumer, key)
                link = DataLink(self.env, self.cost_model, consumer, key,
                                capacity)
                link.producer = producer
                producer.out_links[key] = link
                consumer.in_links.append(link)
        self._setup_parallel()

    def _setup_parallel(self) -> None:
        """Create the real-parallelism backend REPRO_PARALLEL selects.

        Steady iterations of distinct blobs are pure Python over
        disjoint channel sets, so they can run concurrently while the
        simulation clock advances.  Two backends:

        * ``thread`` — a pool thread per blob iteration; channels
          written by one party and read by another while an iteration
          is in flight (boundary inputs filled by DataLink delivery,
          the head blob's GRAPH_INPUT fed by the source process) are
          swapped to their lock-wrapped shared variants.
        * ``process`` — each blob forks a worker process holding its
          runtime; boundary channels become shared-memory rings and
          the pool threads merely block in the per-blob RPC (releasing
          the GIL), so even scalar-heavy blobs genuinely overlap.
          Falls back to threads when the program is not eligible
          (non-numeric blobs, keyed migration state, no ``fork``).
        """
        from repro.runtime.channels import GRAPH_INPUT, as_shared
        from repro.runtime.parallel import parallel_backend, parallel_workers

        backend = parallel_backend()
        if backend == "off" or len(self.blob_procs) < 2:
            return
        cores = min(process.node.cores for process in self.blob_procs.values())
        workers = parallel_workers(len(self.blob_procs), cores)
        if workers < 2:
            return
        if backend == "process" and not self._setup_process_backend():
            backend = "thread"
        if backend == "thread":
            for process in self.blob_procs.values():
                runtime = process.runtime
                shared_keys = {edge.index for edge in runtime.boundary_in}
                shared_keys.add(GRAPH_INPUT)
                for key in list(runtime.channels):
                    if key in shared_keys:
                        runtime.replace_channel(
                            key, as_shared(runtime.channels[key]))
        from concurrent.futures import ThreadPoolExecutor

        self.pool = ThreadPoolExecutor(
            max_workers=workers,
            thread_name_prefix="blob-%d" % self.instance_id)
        self.env.tracer.instant(
            "parallel", "parallel.pool",
            track="instance%d" % self.instance_id,
            workers=workers, blobs=len(self.blob_procs), cores=cores,
            backend=backend)

    def _setup_process_backend(self) -> bool:
        """Fork one worker process per blob; ``False`` falls back.

        Eligibility: the platform must support ``fork``, every blob
        must be vector-capable (boundary rings carry float64), and no
        worker may be keyed — fluid keyed migration reads shards
        directly off the worker object, which would live in the child.
        Boundary-in channels and the head's graph input are swapped to
        shared-memory rings *before* forking, so parent and children
        observe the same occupancy and lifetime counters.
        """
        from repro.graph.keyed import KeyedStateWorker
        from repro.runtime.channels import GRAPH_INPUT, ShmArrayChannel
        from repro.runtime.procexec import (fork_blob_worker,
                                            process_executor_available,
                                            ring_capacity_for)

        if not process_executor_available():
            return False
        processes = list(self.blob_procs.values())
        for process in processes:
            if not process.runtime.vector_capable:
                return False
            for worker_id in process.runtime.worker_ids:
                if isinstance(process.runtime.graph.worker(worker_id),
                              KeyedStateWorker):
                    return False
        rings = []
        try:
            for process in processes:
                runtime = process.runtime
                for edge in runtime.boundary_in:
                    capacity = ring_capacity_for(
                        runtime, edge.index, 4,
                        extra=self._link_capacity(process, edge.index))
                    ring = ShmArrayChannel.from_channel(
                        runtime.channels[edge.index], capacity=capacity)
                    runtime.replace_channel(edge.index, ring)
                    rings.append(ring)
                if runtime.has_head:
                    capacity = ring_capacity_for(runtime, GRAPH_INPUT, 4)
                    ring = ShmArrayChannel.from_channel(
                        runtime.channels[GRAPH_INPUT], capacity=capacity)
                    runtime.replace_channel(GRAPH_INPUT, ring)
                    rings.append(ring)
        except Exception:
            for ring in rings:
                ring.unlink()
            return False
        self._shm_channels = rings
        env = self.env
        for process in processes:
            proxy = fork_blob_worker(
                process.runtime, process.blob.spec.blob_id, env.tracer,
                lambda: env.now,
                "proc-i%d-b%d" % (self.instance_id,
                                  process.blob.spec.blob_id))
            process.runtime = proxy
            process.blob.runtime = proxy
            self._proc_proxies.append(proxy)
        return True

    def _link_capacity(self, consumer: BlobProcess, key: int) -> int:
        steady = consumer.runtime.steady_input_need(key)
        init = consumer.runtime.init_input_need(key)
        iterations = self.cost_model.channel_capacity_iterations
        return steady * iterations + init + steady + 1

    # -- lifecycle ----------------------------------------------------------------

    def start(self) -> None:
        if self.status != "created":
            raise RuntimeError("instance already started")
        self._build()
        for process in self.blob_procs.values():
            process.node.register_blob(self.instance_id)
        self.status = "starting"
        self.started_at = self.env.now
        self._init_span = self.env.tracer.begin(
            "instance", "init", track="instance%d" % self.instance_id,
            label=self.label, blobs=len(self.blob_procs))
        for process in self.blob_procs.values():
            process.start()

    def _blob_initialized(self, _blob: BlobProcess) -> None:
        self._initialized_count += 1
        if self._initialized_count == len(self.blob_procs):
            self.status = "running"
            self._init_span.finish()
            if not self.running_event.triggered:
                self.running_event.succeed(self.env.now)

    def _blob_stopped(self, _blob: BlobProcess) -> None:
        self._stopped_count += 1
        if self._stopped_count == len(self.blob_procs):
            self._teardown("stopped")

    def _teardown(self, status: str) -> None:
        abort = status in ("abandoned", "failed")
        if abort:
            # A pool thread may be blocked mid-RPC in Connection.recv;
            # terminating the child first turns that into an EOF, so the
            # pool drains promptly instead of waiting out the iteration.
            for proxy in self._proc_proxies:
                if (proxy.live and proxy._process is not None
                        and proxy._process.is_alive()):
                    proxy._process.terminate()
        if self.pool is not None:
            self.pool.shutdown(wait=True)
            self.pool = None
        for proxy in self._proc_proxies:
            proxy.shutdown(abort=abort)
        self._proc_proxies = []
        for ring in self._shm_channels:
            ring.unlink()
        self._shm_channels = []
        for process in self.blob_procs.values():
            process.node.deregister_instance(self.instance_id)
        self.status = status
        if self._init_span is not None:
            self._init_span.finish()
        self.env.tracer.instant("instance", status,
                                track="instance%d" % self.instance_id,
                                instance=self.instance_id)
        if not self.stopped_event.triggered:
            self.stopped_event.succeed(self.env.now)

    @property
    def alive(self) -> bool:
        return self.status in ("created", "starting", "running")

    def nodes_used(self) -> List[int]:
        """Distinct node ids this instance's blobs are placed on."""
        return sorted({blob.spec.node_id for blob in self.program.blobs})

    def abandon(self) -> None:
        """Immediately kill the instance (adaptive merging switchover,
        reconfiguration rollback)."""
        if self.status in ("stopped", "abandoned", "failed"):
            return
        for process in self.blob_procs.values():
            if process.process is not None:
                process.process.interrupt("abandoned")
        self._teardown("abandoned")

    def fail(self, cause: object = None) -> None:
        """Kill the instance because of a fault (e.g. its node crashed).

        Like :meth:`abandon` but records the cause and fires
        ``failed_event`` so a reconfiguration strategy overlapping with
        this instance can observe the death and roll back.
        """
        if self.status in ("stopped", "abandoned", "failed"):
            return
        self.failure_cause = cause
        for process in self.blob_procs.values():
            if process.process is not None:
                process.process.interrupt(cause or "failed")
        self._teardown("failed")
        if not self.failed_event.triggered:
            self.failed_event.succeed(cause)

    def cancel_stop(self) -> None:
        """Withdraw a pending stop request on every blob (rollback)."""
        for process in self.blob_procs.values():
            process.cancel_stop()

    def pause(self) -> None:
        if not self.paused:
            self.paused = True
            self.resume_event = self.env.event()

    def resume(self) -> None:
        if self.paused:
            self.paused = False
            self.resume_event.succeed()

    # -- output -------------------------------------------------------------------

    def emit_output(self, items: List) -> None:
        start = self.output_offset + self.emitted_local
        self.emitted_local += len(items)
        self.app.merger.receive(self.instance_id, start, items)

    # -- counters -----------------------------------------------------------------

    @property
    def consumed_local(self) -> int:
        return self.program.head_blob.runtime.consumed_input

    @property
    def head_iteration(self) -> int:
        return self.program.head_blob.runtime.iteration

    @property
    def max_iteration(self) -> int:
        return max(p.runtime.iteration for p in self.blob_procs.values())

    def consumed_at_boundary(self, iteration: int) -> int:
        """Graph input consumed once every blob reaches ``iteration``."""
        head = self.program.graph.head
        return head.pop_rates[0] * (
            self.schedule.init[head.worker_id]
            + iteration * self.schedule.steady_firings(head.worker_id)
        )

    def emitted_at_boundary(self, iteration: int) -> int:
        tail = self.program.graph.tail
        return tail.push_rates[0] * (
            self.schedule.init[tail.worker_id]
            + iteration * self.schedule.steady_firings(tail.worker_id)
        )

    def expected_cut(self, blob: CompiledBlob, iteration: int) -> Dict[int, tuple]:
        """Per boundary-in edge: (expected total_pushed, cut length).

        Both follow from the static rates — the determinism at the
        heart of asynchronous state transfer: the items produced
        through boundary ``iteration`` minus the items this blob has
        consumed through the same boundary are exactly the edge's
        canonical contents at the cut.
        """
        graph = self.program.graph
        schedule = self.schedule
        result: Dict[int, tuple] = {}
        for edge in blob.runtime.boundary_in:
            src = graph.worker(edge.src)
            dst = graph.worker(edge.dst)
            pushed = (
                schedule.initial_contents.get(edge.index, 0)
                + src.push_rates[edge.src_port] * (
                    schedule.init[edge.src]
                    + iteration * schedule.steady_firings(edge.src))
            )
            popped = dst.pop_rates[edge.dst_port] * (
                schedule.init[edge.dst]
                + iteration * schedule.steady_firings(edge.dst)
            )
            result[edge.index] = (pushed, pushed - popped)
        return result

    # -- cluster-wide control -------------------------------------------------------

    def request_stop_at(self, iteration: int) -> None:
        for process in self.blob_procs.values():
            process.request_stop_at(iteration)

    def set_core_weight(self, weight: float) -> None:
        """Resource throttling, stage 1: shrink the node core share."""
        for process in self.blob_procs.values():
            process.node.set_weight(self.instance_id, weight)
            process.notify()

    def set_overhead_tax(self, fraction: float) -> None:
        """Reserve cores for bookkeeping (checkpointing baselines)."""
        for process in self.blob_procs.values():
            process.node.set_tax(self.instance_id, fraction)
            process.notify()

    def throttle_input(self, rate: float) -> None:
        """Resource throttling, stage 2: restrict the input rate."""
        self.input_view.throttle(rate, self.env.now)

    def estimate_iteration_seconds(self) -> float:
        """Max observed per-blob iteration time (AST lead computation)."""
        observed = [p.last_iteration_seconds for p in self.blob_procs.values()]
        positive = [t for t in observed if t > 0]
        if positive:
            return max(positive)
        return max(
            blob.iteration_seconds(
                self.app.cluster.node(blob.spec.node_id).cores)
            for blob in self.program.blobs
        )

    def drain(self):
        """Controller generator: drain blobs sequentially, collect state.

        Upstream blobs drain before downstream ones (draining is
        inherently sequential, paper Section 6.1); each blob's state
        then travels to the controller over the data network.
        """
        self.draining = True
        tracer = self.env.tracer
        with tracer.span("reconfig", "drain", track="reconfig",
                         instance=self.instance_id) as drain_span:
            # Wake any blob blocked on backpressure: capacity is waived
            # now.
            for process in self.blob_procs.values():
                for link in process.out_links.values():
                    link.notify_sender()
            # Every blob switches to the interpreter at once; data still
            # settles upstream-to-downstream, so replies arrive in
            # roughly topological order.
            replies = {}
            for blob_id, process in self.blob_procs.items():
                replies[blob_id] = self.env.event()
                process.request_drain(replies[blob_id])
            merged = ProgramState()
            for blob_id in self._blob_topo_order():
                blob_state = yield replies[blob_id]
                with tracer.span("state", "state.transfer",
                                 track="reconfig", blob=blob_id,
                                 bytes=blob_state.size_bytes()):
                    yield self.env.timeout(
                        self.cost_model.transfer_seconds(
                            blob_state.size_bytes())
                    )
                merged.merge(blob_state)
            drain_span.annotate(state_bytes=merged.size_bytes())
        return merged

    def _blob_topo_order(self) -> List[int]:
        mapping = self.program.configuration.worker_to_blob()
        order: List[int] = []
        for worker_id in self.program.graph.topological_order():
            blob_id = mapping[worker_id]
            if blob_id not in order:
                order.append(blob_id)
        return order

    def ast_capture(self, residual: bool = False):
        """Controller generator: asynchronous state transfer (paper 6.2).

        Picks a boundary ``ast_lead_time`` seconds ahead from the
        observed consumption rate, asks every blob to snapshot there,
        and merges the replies.  Returns (state, boundary iteration).

        ``residual=True`` is the fluid strategy's final cut: keyed
        workers under migration report deltas instead of full tables
        (see :meth:`BlobRuntime.capture_state`).
        """
        cost_model = self.cost_model
        attempt_lead = cost_model.ast_lead_time
        while True:
            # One control round-trip to learn current progress.
            yield self.env.timeout(cost_model.control_latency)
            iteration_seconds = max(self.estimate_iteration_seconds(), 1e-6)
            lead_iterations = max(
                int(math.ceil(attempt_lead / iteration_seconds)), 3)
            boundary = self.max_iteration + lead_iterations
            yield self.env.timeout(cost_model.control_latency)
            replies: List[Event] = []
            accepted = True
            for process in self.blob_procs.values():
                reply = self.env.event()
                if not process.request_ast(boundary, reply,
                                           residual=residual):
                    accepted = False
                    break
                replies.append(reply)
            if not accepted:
                # A blob was already past the boundary: clear requests
                # and retry with double the lead.
                for process in self.blob_procs.values():
                    process.ast = None
                attempt_lead *= 2.0
                continue
            merged = ProgramState()
            try:
                for reply in replies:
                    blob_state = yield reply
                    merged.merge(blob_state)
            except RuntimeError:
                # A blob missed the boundary after accepting: retry
                # with a longer lead.
                for process in self.blob_procs.values():
                    process.ast = None
                attempt_lead *= 2.0
                continue
            return merged, boundary

    def shard_capture(self, worker_id: int, shard_index: int,
                      n_shards: int):
        """Controller generator: capture one key-range shard (fluid).

        The per-batch analogue of :meth:`ast_capture`, addressed to
        the single blob hosting ``worker_id``: aim a near boundary
        (``fluid_batch_lead`` seconds ahead), request the shard, retry
        with doubled lead on a miss.  Returns (shard dict, boundary).
        The blob keeps processing throughout — that interleaving is
        the point of fluid migration.
        """
        cost_model = self.cost_model
        blob_id = self.program.configuration.worker_to_blob()[worker_id]
        process = self.blob_procs[blob_id]
        attempt_lead = cost_model.fluid_batch_lead
        while True:
            yield self.env.timeout(cost_model.control_latency)
            iteration_seconds = max(self.estimate_iteration_seconds(), 1e-6)
            lead_iterations = max(
                int(math.ceil(attempt_lead / iteration_seconds)), 3)
            boundary = process.runtime.iteration + lead_iterations
            yield self.env.timeout(cost_model.control_latency)
            reply = self.env.event()
            request = ASTRequest(
                iteration=boundary, reply=reply, kind="keyed_shard",
                worker_id=worker_id, shard_index=shard_index,
                n_shards=n_shards)
            if not process.request_snapshot(request):
                attempt_lead *= 2.0
                continue
            try:
                shard = yield reply
            except RuntimeError:
                process.ast = None
                attempt_lead *= 2.0
                continue
            return shard, boundary
