"""Input sources and the input duplicator.

The program input is modelled as an indexed stream: item ``i`` is
``input_fn(i)`` (or a placeholder in rate-only mode).  Each graph
instance reads through an :class:`InputView` positioned at its own
canonical offset.  Because items are addressed by index, *input
duplication* (paper Section 6.1, Figure 7) is just two views with
overlapping positions — exactly the history buffer a real duplicator
keeps, without copying.

Sources may be rate-limited (items become available at a global rate)
and views may be *throttled* (a per-instance rate cap, the second
stage of resource throttling in paper Section 7.2).
"""

from __future__ import annotations

import math
from typing import Any, Callable, List, Optional, Tuple

__all__ = ["InputSource", "InputView"]


class InputSource:
    """An indexed, optionally rate-limited input stream."""

    def __init__(
        self,
        input_fn: Optional[Callable[[int], Any]] = None,
        rate: Optional[float] = None,
        start_time: float = 0.0,
        initial_available: int = 0,
    ):
        self.input_fn = input_fn
        self.rate = rate
        self.start_time = start_time
        self.initial_available = initial_available

    def items(self, start: int, end: int) -> List[Any]:
        if self.input_fn is None:
            return [None] * (end - start)
        return [self.input_fn(i) for i in range(start, end)]

    def available_until(self, now: float) -> float:
        """Highest item index (exclusive) available at time ``now``."""
        if self.rate is None:
            return math.inf
        return self.initial_available + self.rate * max(now - self.start_time, 0.0)

    def time_for_index(self, index: int) -> float:
        """Earliest time at which item ``index`` exists (0 if always)."""
        if self.rate is None:
            return 0.0
        needed = index - self.initial_available
        if needed <= 0:
            return self.start_time
        return self.start_time + needed / self.rate

    def view(self, offset: int) -> "InputView":
        return InputView(self, offset)


class InputView:
    """One instance's read position into the shared input stream."""

    def __init__(self, source: InputSource, offset: int):
        self.source = source
        self.next_index = offset
        # Per-instance throttle: at most `_cap_rate` items/s granted
        # beyond `_cap_base_index` after `_cap_base_time`.
        self._cap_rate: Optional[float] = None
        self._cap_base_index = 0
        self._cap_base_time = 0.0

    @property
    def consumed_from_view(self) -> int:
        return self.next_index

    def throttle(self, rate: float, now: float) -> None:
        """Cap this view's input rate (resource throttling, stage 2)."""
        self._cap_rate = rate
        self._cap_base_index = self.next_index
        self._cap_base_time = now

    def unthrottle(self) -> None:
        self._cap_rate = None

    def _cap_until(self, now: float) -> float:
        if self._cap_rate is None:
            return math.inf
        return self._cap_base_index + self._cap_rate * max(
            now - self._cap_base_time, 0.0)

    def take(self, count: int, now: float) -> Tuple[List[Any], float]:
        """Take up to ``count`` items; return (items, retry_time).

        Grants whatever is available now; ``retry_time`` is when the
        remainder is expected (``now`` if everything was granted).
        """
        limit = min(self.source.available_until(now), self._cap_until(now))
        grantable = int(min(count, max(limit - self.next_index, 0)))
        items = self.source.items(self.next_index, self.next_index + grantable)
        self.next_index += grantable
        if grantable >= count:
            return items, now
        target = self.next_index + (count - grantable)
        retry = max(
            self.source.time_for_index(target),
            self._cap_retry_time(target),
            now + 1e-6,
        )
        return items, retry

    def _cap_retry_time(self, target: int) -> float:
        if self._cap_rate is None:
            return 0.0
        return self._cap_base_time + (target - self._cap_base_index) / self._cap_rate
