"""Simulated cluster nodes.

A node has a fixed number of cores shared between the graph instances
whose blobs it hosts (plus any active compilation jobs).  There are no
extra resources during reconfiguration — old instance, new instance
and the compiler all share the same cores via weighted fair shares,
which is what produces the throughput dip of Figure 10 and what
resource throttling manipulates (paper Section 7.2).
"""

from __future__ import annotations

from typing import Dict

__all__ = ["SimNode"]


class SimNode:
    """One cluster node: cores, speed, and per-instance core shares."""

    def __init__(self, node_id: int, cores: int = 16, speed: float = 1.0,
                 compile_cores: float = 1.0):
        self.node_id = node_id
        self.cores = cores
        self.speed = speed
        self.compile_cores = compile_cores
        self.available = True
        #: Set while the node is failed (fault injection): instances
        #: with blobs here die; the scheduler must not place new ones.
        self.crashed = False
        #: instance_id -> scheduling weight (resource throttling halves
        #: the old instance's weight repeatedly).
        self._weights: Dict[int, float] = {}
        #: instance_id -> number of this instance's blobs hosted here.
        self._blob_counts: Dict[int, int] = {}
        #: Active compilation jobs (each steals ``compile_cores``).
        self.compile_jobs = 0
        #: instance_id -> fraction of its cores lost to bookkeeping
        #: machinery (checkpointing/acknowledgment overhead of the
        #: DDF-style baselines; Gloss itself never sets this).
        self._taxes: Dict[int, float] = {}

    # -- failure ------------------------------------------------------------

    def crash(self) -> None:
        """Fail the node: unavailable until :meth:`restore` is called.

        Killing the processes that live here is the injector's job (it
        knows which instances are affected); the node itself only
        tracks the flag so placement and health checks can consult it.
        """
        self.crashed = True
        self.available = False

    def restore(self) -> None:
        self.crashed = False
        self.available = True

    # -- registration -------------------------------------------------------

    def register_blob(self, instance_id: int, weight: float = 1.0) -> None:
        self._blob_counts[instance_id] = self._blob_counts.get(instance_id, 0) + 1
        self._weights.setdefault(instance_id, weight)

    def deregister_instance(self, instance_id: int) -> None:
        self._blob_counts.pop(instance_id, None)
        self._weights.pop(instance_id, None)

    def set_weight(self, instance_id: int, weight: float) -> None:
        if instance_id in self._weights:
            self._weights[instance_id] = max(weight, 1e-3)

    def weight_of(self, instance_id: int) -> float:
        return self._weights.get(instance_id, 0.0)

    @property
    def resident_instances(self):
        return sorted(self._blob_counts)

    # -- scheduling ----------------------------------------------------------

    def effective_cores(self) -> float:
        """Cores left for stream execution after compile jobs."""
        return max(self.cores - self.compile_jobs * self.compile_cores, 0.5)

    def set_tax(self, instance_id: int, fraction: float) -> None:
        """Reserve a fraction of the instance's cores for bookkeeping."""
        self._taxes[instance_id] = min(max(fraction, 0.0), 0.95)

    def share_of(self, instance_id: int) -> float:
        """The instance's weighted share of this node, in [0, 1]."""
        if instance_id not in self._blob_counts:
            return 1.0
        total_weight = sum(
            self._weights[i] for i, c in self._blob_counts.items() if c > 0
        )
        if not total_weight:
            return 1.0
        share = self._weights[instance_id] / total_weight
        return share * (1.0 - self._taxes.get(instance_id, 0.0))

    def cores_for(self, instance_id: int) -> float:
        """Cores available to one blob of ``instance_id`` right now.

        Weighted fair share across resident instances, split evenly
        between the instance's blobs on this node, minus any
        bookkeeping tax.
        """
        count = self._blob_counts.get(instance_id, 0)
        if count == 0:
            return 0.5
        total_weight = sum(
            self._weights[i] for i, c in self._blob_counts.items() if c > 0
        )
        share = self._weights[instance_id] / total_weight if total_weight else 1.0
        share *= 1.0 - self._taxes.get(instance_id, 0.0)
        return max(self.effective_cores() * share / count, 0.25)

    def __repr__(self) -> str:
        return "<node %d: %d cores, %d instances, %d compile jobs>" % (
            self.node_id, self.cores, len(self._blob_counts), self.compile_jobs,
        )
