"""The cluster and the application facade.

:class:`Cluster` bundles the simulation environment, the nodes and the
cost model.  :class:`StreamApp` is the user-facing handle on a running
stream program: launch it in an initial configuration, reconfigure it
live with any strategy, and read back throughput series and event
timelines for analysis.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.compiler.cache import (
    CompilationCache,
    get_default_cache,
    stamp_structure_key,
    structure_key,
)
from repro.compiler.compiled import CompiledProgram
from repro.compiler.config import Configuration
from repro.compiler.cost_model import CostModel
from repro.compiler.two_phase import compile_configuration
from repro.graph.topology import StreamGraph
from repro.metrics.analysis import DisruptionReport, analyze_reconfiguration
from repro.sim.kernel import Environment, Process
from repro.cluster.instance import GraphInstance
from repro.cluster.merger import OutputMerger
from repro.cluster.node import SimNode
from repro.cluster.source import InputSource

__all__ = ["Cluster", "StreamApp"]


class Cluster:
    """A simulated cluster: environment, nodes, shared cost model."""

    def __init__(
        self,
        n_nodes: int = 8,
        cores_per_node: int = 16,
        cost_model: Optional[CostModel] = None,
        tracer=None,
    ):
        self.env = Environment(tracer=tracer)
        self.tracer = self.env.tracer
        self.cost_model = cost_model or CostModel()
        self.nodes: Dict[int, SimNode] = {}
        for _ in range(n_nodes):
            self.add_node(cores=cores_per_node)

    def add_node(self, cores: int = 16, speed: float = 1.0) -> int:
        """Provision a new node (elastic scale-out); returns its id."""
        node_id = len(self.nodes)
        self.nodes[node_id] = SimNode(
            node_id, cores=cores, speed=speed,
            compile_cores=self.cost_model.compile_cores,
        )
        return node_id

    def node(self, node_id: int) -> SimNode:
        return self.nodes[node_id]

    def retire_node(self, node_id: int) -> None:
        """Mark a node unavailable for future configurations."""
        self.nodes[node_id].available = False

    def restore_node(self, node_id: int) -> None:
        self.nodes[node_id].available = True

    @property
    def available_node_ids(self) -> List[int]:
        return [n for n, node in sorted(self.nodes.items()) if node.available]

    def run(self, until: Optional[float] = None) -> None:
        self.env.run(until=until)


class StreamApp:
    """A stream program deployed on a simulated cluster."""

    def __init__(
        self,
        cluster: Cluster,
        blueprint: Callable[[], StreamGraph],
        input_fn: Optional[Callable[[int], Any]] = None,
        name: str = "app",
        rate_only: bool = False,
        check_rates: bool = True,
        collect_output: bool = False,
        input_rate: Optional[float] = None,
    ):
        self.cluster = cluster
        self.env: Environment = cluster.env
        self.tracer = cluster.env.tracer
        self.cost_model: CostModel = cluster.cost_model
        self.blueprint = blueprint
        self.name = name
        self.rate_only = rate_only
        self.check_rates = check_rates and not rate_only
        self.source = InputSource(
            input_fn=None if rate_only else input_fn, rate=input_rate,
        )
        self.merger = OutputMerger(self.env, collect_items=collect_output)
        self.instances: List[GraphInstance] = []
        self.current: Optional[GraphInstance] = None
        self.events: List[Tuple[float, str, dict]] = []
        self.reconfigurations: List = []  # ReconfigReport objects
        #: Last time any running strategy reported forward progress
        #: (see ``Reconfigurer._progress``); the manager's
        #: progress-aware watchdog keys off this.
        self.reconfig_progress_at: Optional[float] = None
        #: Per-app compilation cache: every compile this app performs
        #: (launch, strategies, tuner trials) shares it, while separate
        #: runs stay independent so identical runs produce identical
        #: traces.  None when REPRO_COMPILE_CACHE=0 disables caching.
        self.compile_cache: Optional[CompilationCache] = (
            CompilationCache() if get_default_cache() is not None else None
        )
        #: Structure key of the blueprint's output, computed on the
        #: first build and stamped onto later builds (see fresh_graph).
        self._blueprint_key = None
        #: Armed fault injector (None outside chaos runs).
        self.faults = None

    # -- fault injection ----------------------------------------------------------

    def attach_faults(self, plan):
        """Arm a :class:`~repro.faults.plan.FaultPlan` against this app.

        Returns the armed :class:`~repro.faults.injector.FaultInjector`
        (also kept as ``self.faults``).  Timed faults are scheduled on
        the simulation clock immediately; compile faults are consulted
        by :meth:`charge_compile_time`.
        """
        from repro.faults.injector import FaultInjector
        if self.faults is not None:
            raise RuntimeError("a fault plan is already attached")
        self.faults = FaultInjector(self, plan).arm()
        return self.faults

    # -- bookkeeping -------------------------------------------------------------

    @property
    def series(self):
        return self.merger.series

    def note(self, label: str, **info) -> None:
        self.events.append((self.env.now, label, info))
        self.tracer.instant("app", label, **info)

    def event_times(self, label: str) -> List[float]:
        return [t for t, lab, _ in self.events if lab == label]

    # -- compilation --------------------------------------------------------------

    def fresh_graph(self) -> StreamGraph:
        """A fresh blueprint build, with the structure key carried over.

        Every compile this app ever performs sees the same blueprint,
        and blueprint determinism is what makes live reconfiguration
        sound in the first place (the rebuilt graph must be the same
        program for state absorption and duplication replay to mean
        anything) — so the first build's cache key is stamped onto
        later builds instead of being re-derived from scratch.
        """
        graph = self.blueprint()
        if self._blueprint_key is None:
            self._blueprint_key = structure_key(graph)
        else:
            stamp_structure_key(graph, self._blueprint_key)
        return graph

    def compile(self, configuration: Configuration, state=None) -> CompiledProgram:
        """Functionally compile a configuration on a fresh graph.

        Simulated compile *time* is charged separately by
        :meth:`charge_compile_time` (or by the two-phase machinery in
        :mod:`repro.core`).
        """
        graph = self.fresh_graph()
        return compile_configuration(
            graph, configuration, self.cost_model, state=state,
            check_rates=self.check_rates, rate_only=self.rate_only,
            tracer=self.tracer, cache=self.compile_cache,
        )

    def charge_compile_time(self, seconds_per_node: Dict[int, float],
                            label: Optional[str] = None,
                            track: Optional[str] = None):
        """Generator: run compile jobs on nodes, in parallel across nodes.

        Each job occupies compiler cores on its node for its duration,
        which is what dips co-resident instances' throughput (paper
        Section 9.2: reconfiguration uses no extra resources).  When a
        ``label`` is given the whole parallel charge is recorded as one
        compile span (e.g. ``compile.phase1``) on ``track``.
        """
        span = (self.tracer.begin("compile", label, track=track,
                                  nodes=len(seconds_per_node),
                                  seconds=round(sum(
                                      seconds_per_node.values()), 6))
                if label is not None else None)
        jobs = [
            self.env.process(self._compile_job(node_id, seconds))
            for node_id, seconds in sorted(seconds_per_node.items())
        ]
        for job in jobs:
            yield job
        if self.faults is not None:
            # An injected compiler crash surfaces here, *after* the
            # simulated compile time was charged: a dying compiler
            # wastes the work it did before crashing.
            try:
                self.faults.raise_on_compile_fault(label)
            except BaseException:
                if span is not None:
                    span.finish(failed=True)
                raise
        if span is not None:
            span.finish()

    def _compile_job(self, node_id: int, seconds: float):
        node = self.cluster.node(node_id)
        node.compile_jobs += 1
        try:
            yield self.env.timeout(seconds / node.speed)
        finally:
            node.compile_jobs -= 1

    def compile_seconds_per_node(self, program: CompiledProgram,
                                 phase: str = "full") -> Dict[int, float]:
        per_node: Dict[int, float] = {}
        for blob in program.blobs:
            if phase == "full":
                seconds = blob.compile_seconds()
            elif phase == "phase1":
                seconds = blob.phase1_seconds()
            elif phase == "phase2":
                seconds = blob.phase2_seconds()
            else:
                raise ValueError("unknown phase %r" % (phase,))
            per_node[blob.spec.node_id] = (
                per_node.get(blob.spec.node_id, 0.0) + seconds
            )
        return per_node

    # -- instances -----------------------------------------------------------------

    def spawn_instance(
        self,
        program: CompiledProgram,
        input_offset: int,
        output_offset: int,
        label: str = "",
    ) -> GraphInstance:
        instance = GraphInstance(
            app=self,
            instance_id=len(self.instances),
            program=program,
            input_view=self.source.view(input_offset),
            input_offset=input_offset,
            output_offset=output_offset,
            label=label,
        )
        self.instances.append(instance)
        return instance

    def launch(self, configuration: Configuration) -> Process:
        """Cold-start the program; returns a process that fires once
        the first instance reaches steady state."""
        def _launch():
            program = self.compile(configuration)
            self.note("launch", configuration=configuration.name)
            yield from self.charge_compile_time(
                self.compile_seconds_per_node(program),
                label="compile.full", track="app")
            instance = self.spawn_instance(program, 0, 0,
                                           label=configuration.name)
            self.current = instance
            self.merger.set_primary(instance.instance_id)
            instance.start()
            yield instance.running_event
            self.note("running", instance=instance.instance_id)
            return instance
        return self.env.process(_launch())

    # -- reconfiguration ---------------------------------------------------------------

    def reconfigure(self, configuration: Configuration,
                    strategy: str = "adaptive") -> Process:
        """Live-reconfigure into ``configuration``; returns the
        strategy's controller process (fires when complete)."""
        from repro.core import make_reconfigurer
        reconfigurer = make_reconfigurer(strategy, self)
        return self.env.process(reconfigurer.run(configuration))

    # -- observability ------------------------------------------------------------------

    def export_trace(self, path: str) -> str:
        """Write the run's Chrome trace JSON (open in chrome://tracing)."""
        from repro.obs.export import write_chrome_trace
        self.merger.flush_trace_output()
        return write_chrome_trace(self.tracer, path, app=self.name,
                                  sim_seconds=self.env.now)

    def trace_metrics(self, horizon_after: float = 60.0, **kwargs):
        """Per-reconfiguration metrics derived from the trace,
        cross-checked against the merger-measured series."""
        from repro.obs.report import reconfiguration_metrics
        return reconfiguration_metrics(self, horizon_after=horizon_after,
                                       **kwargs)

    # -- analysis -----------------------------------------------------------------------

    def analyze(self, reconfig_start: float, horizon: float,
                **kwargs) -> DisruptionReport:
        # Never analyze past the simulated present: the void after the
        # last event would read as downtime.
        horizon = min(horizon, self.env.now)
        return analyze_reconfiguration(
            self.series, reconfig_start, horizon, **kwargs)

    def analyze_all(self, horizon_after: float = 60.0,
                    **kwargs) -> List[DisruptionReport]:
        reports = []
        for start in self.event_times("reconfig_start"):
            reports.append(self.analyze(start, start + horizon_after, **kwargs))
        return reports
