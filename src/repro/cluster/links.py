"""Inter-blob data links.

Each boundary edge between blobs gets a :class:`DataLink`: batches of
items travel with latency plus bandwidth delay, and a capacity bound
provides backpressure (the in-flight data on these links is exactly
what draining has to flush, which is where stop-and-copy's drain time
comes from).
"""

from __future__ import annotations

from typing import Any, List, Optional

from repro.compiler.cost_model import CostModel
from repro.sim.kernel import Environment, Event

__all__ = ["DataLink"]


class DataLink:
    """A simulated data channel from one blob to another."""

    def __init__(
        self,
        env: Environment,
        cost_model: CostModel,
        consumer: "BlobProcess",  # noqa: F821 - forward reference
        key: int,
        capacity: int,
    ):
        self.env = env
        self.cost_model = cost_model
        self.consumer = consumer
        self.producer: Optional[object] = None  # BlobProcess, set at wiring
        self.key = key
        self.capacity = capacity
        self.in_flight = 0
        self._sender_wake: Optional[Event] = None
        #: Fault-injection state.  An *outage* blocks sends until the
        #: link heals (batches are retransmitted, never lost — lossy
        #: links would break the output-equivalence invariant the
        #: merger relies on); *extra delay* stretches each batch's
        #: latency inside the window.
        self.blocked_until = 0.0
        self.extra_delay = 0.0
        self.extra_delay_until = 0.0
        #: Batches that hit an active fault window (observability).
        self.faulted_batches = 0
        #: Links are FIFO (TCP-like): a batch never overtakes an
        #: earlier one, even when an injected delay window ends while
        #: it is still in flight.
        self._last_arrival = 0.0

    @property
    def idle(self) -> bool:
        return self.in_flight == 0

    def _occupancy(self) -> int:
        # len(channel), not len(channel.items): boundary channels are
        # ArrayChannels under the vectorized backend.
        return len(self.consumer.runtime.channels[self.key]) + self.in_flight

    def can_accept(self, count: int) -> bool:
        if self.consumer.instance.draining:
            return True  # drain data is bounded; never deadlock a drain
        occupancy = self._occupancy()
        return occupancy + count <= self.capacity or occupancy == 0

    # -- fault injection ------------------------------------------------------

    def inject_outage(self, until: float) -> None:
        """Block the link until ``until``; queued sends retransmit then."""
        self.blocked_until = max(self.blocked_until, until)

    def inject_delay(self, extra: float, until: float) -> None:
        """Add ``extra`` seconds to each batch sent before ``until``."""
        self.extra_delay = extra
        self.extra_delay_until = max(self.extra_delay_until, until)

    def heal(self) -> None:
        """Clear all fault state immediately (recovery hook)."""
        self.blocked_until = 0.0
        self.extra_delay = 0.0
        self.extra_delay_until = 0.0
        self.notify_sender()

    def send(self, items: List[Any]):
        """Generator: block on backpressure, then schedule delivery."""
        count = len(items)
        while not self.can_accept(count):
            self._sender_wake = self.env.event()
            yield self._sender_wake
            self._sender_wake = None
        if self.env.now < self.blocked_until:
            # Outage/partition: the batch waits out the window and is
            # retransmitted when the link heals — degraded, not lost.
            self.faulted_batches += 1
            yield self.env.timeout(self.blocked_until - self.env.now)
        self.in_flight += count
        # During draining, link traffic is exactly the buffered data a
        # stop-and-copy flush has to move — trace each flushed batch.
        span = None
        tracer = self.env.tracer
        if tracer.enabled and self.consumer.instance.draining:
            span = tracer.begin(
                "link", "link.flush",
                track="node%d" % self.consumer.node.node_id,
                key=self.key, items=count)
        latency = self.cost_model.batch_seconds(count)
        if self.env.now < self.extra_delay_until:
            self.faulted_batches += 1
            latency += self.extra_delay
        arrival_at = max(self.env.now + latency, self._last_arrival)
        self._last_arrival = arrival_at
        arrival = self.env.timeout(arrival_at - self.env.now)
        arrival.callbacks.append(lambda _event: self._deliver(items, span))

    def _deliver(self, items: List[Any], span=None) -> None:
        self.in_flight -= len(items)
        if span is not None:
            span.finish()
        if not self.consumer.instance.alive:
            # A batch can be in flight when the instance is abandoned
            # (adaptive switchover, rollback). The data is dead either
            # way; under the process backend the target ring is already
            # unlinked, so the push must not be attempted at all.
            return
        self.consumer.runtime.deliver(self.key, items)
        self.consumer.notify()

    def notify_sender(self) -> None:
        """Called when the consumer frees buffer space."""
        if self._sender_wake is not None and not self._sender_wake.triggered:
            self._sender_wake.succeed()
