"""Inter-blob data links.

Each boundary edge between blobs gets a :class:`DataLink`: batches of
items travel with latency plus bandwidth delay, and a capacity bound
provides backpressure (the in-flight data on these links is exactly
what draining has to flush, which is where stop-and-copy's drain time
comes from).
"""

from __future__ import annotations

from typing import Any, List, Optional

from repro.compiler.cost_model import CostModel
from repro.sim.kernel import Environment, Event

__all__ = ["DataLink"]


class DataLink:
    """A simulated data channel from one blob to another."""

    def __init__(
        self,
        env: Environment,
        cost_model: CostModel,
        consumer: "BlobProcess",  # noqa: F821 - forward reference
        key: int,
        capacity: int,
    ):
        self.env = env
        self.cost_model = cost_model
        self.consumer = consumer
        self.producer: Optional[object] = None  # BlobProcess, set at wiring
        self.key = key
        self.capacity = capacity
        self.in_flight = 0
        self._sender_wake: Optional[Event] = None

    @property
    def idle(self) -> bool:
        return self.in_flight == 0

    def _occupancy(self) -> int:
        return len(self.consumer.runtime.channels[self.key].items) + self.in_flight

    def can_accept(self, count: int) -> bool:
        if self.consumer.instance.draining:
            return True  # drain data is bounded; never deadlock a drain
        occupancy = self._occupancy()
        return occupancy + count <= self.capacity or occupancy == 0

    def send(self, items: List[Any]):
        """Generator: block on backpressure, then schedule delivery."""
        count = len(items)
        while not self.can_accept(count):
            self._sender_wake = self.env.event()
            yield self._sender_wake
            self._sender_wake = None
        self.in_flight += count
        # During draining, link traffic is exactly the buffered data a
        # stop-and-copy flush has to move — trace each flushed batch.
        span = None
        tracer = self.env.tracer
        if tracer.enabled and self.consumer.instance.draining:
            span = tracer.begin(
                "link", "link.flush",
                track="node%d" % self.consumer.node.node_id,
                key=self.key, items=count)
        arrival = self.env.timeout(self.cost_model.batch_seconds(count))
        arrival.callbacks.append(lambda _event: self._deliver(items, span))

    def _deliver(self, items: List[Any], span=None) -> None:
        self.in_flight -= len(items)
        if span is not None:
            span.finish()
        self.consumer.runtime.deliver(self.key, items)
        self.consumer.notify()

    def notify_sender(self) -> None:
        """Called when the consumer frees buffer space."""
        if self._sender_wake is not None and not self._sender_wake.triggered:
            self._sender_wake.succeed()
