"""Content-addressed memoization of schedules and phase-1 pseudo-blobs.

The paper's two-phase insight (Section 5.1) is that phase-1
compilation depends only on (graph structure, configuration, meta
program state) — none of which require the live instance.  The same
observation makes phase-1 output *reusable*: two compilations with
identical fingerprints produce structurally identical plans, so the
second one can skip the balance equations, the init-schedule solve and
the per-blob structural analysis entirely.  This is what lets the
Figure 13 autotuner revisit neighboring configurations at a fraction
of the first visit's cost.

Fingerprints are deterministic by construction: they hash a canonical
tuple built from worker/edge ids and sorted mappings — never ``id()``
and never unordered-set iteration (the DET001–DET004 sanitizer lints
this module).  Configuration fingerprints deliberately exclude the
configuration *name* (the tuner names every trial differently) and the
blob *node ids* (placement does not change blob structure), so
re-tuning onto different nodes still hits.

What is cached is graph-instance-independent data only: schedule
dictionaries and per-blob structural layouts keyed by worker ids and
edge indices, which are stable across ``blueprint()`` instances.  Live
:class:`~repro.runtime.executor.BlobRuntime` objects are never cached
— they are rehydrated against the caller's fresh graph via
:meth:`~repro.runtime.executor.BlobRuntime.restore`.

Set ``REPRO_COMPILE_CACHE=0`` to disable caching globally.
"""

from __future__ import annotations

import hashlib
import os
import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, FrozenSet, Optional, Tuple

from repro.graph.topology import StreamGraph
from repro.graph.workers import Worker
from repro.runtime.channels import GRAPH_INPUT, GRAPH_OUTPUT
from repro.sched.schedule import Schedule, make_schedule

__all__ = [
    "BlobLayout",
    "CompilationCache",
    "PlanEntry",
    "cached_schedule",
    "configuration_fingerprint",
    "get_default_cache",
    "graph_fingerprint",
    "meta_fingerprint",
    "set_default_cache",
    "stamp_structure_key",
    "structure_key",
]


def _digest(payload: object) -> str:
    """SHA-256 of the canonical repr — stable across processes because
    every payload is built from ints, strings, bools and floats whose
    reprs round-trip exactly."""
    return hashlib.sha256(repr(payload).encode("utf-8")).hexdigest()


class _HashedKey:
    """A canonical key tuple with its hash computed exactly once.

    Tuple hashes are not cached by the interpreter, so using a
    structure tuple (hundreds of elements for a real graph) directly
    as a dict key re-walks the whole thing on every lookup.  Wrapping
    it caches the hash, and identical-object lookups (the stamped
    blueprint key, the memoized configuration key) short-circuit
    equality entirely.
    """

    __slots__ = ("key", "_hash")

    def __init__(self, key: tuple):
        self.key = key
        self._hash = hash(key)

    def __hash__(self) -> int:
        return self._hash

    def __eq__(self, other: object) -> bool:
        if self is other:
            return True
        return isinstance(other, _HashedKey) and self.key == other.key

    def __repr__(self) -> str:
        return "_HashedKey(%r)" % (self.key,)


def _worker_signature(worker: Worker) -> tuple:
    weights = getattr(worker, "weights", None)
    cls = type(worker)
    return (
        cls.__module__,
        cls.__qualname__,
        worker.name,
        worker.n_inputs,
        worker.n_outputs,
        worker.pop_rates,
        worker.peek_rates,
        worker.push_rates,
        worker.work_estimate,
        tuple(worker.state_fields),
        bool(worker.builtin),
        tuple(weights) if weights is not None else None,
        # Backend capability flags: a worker gaining (or losing, e.g.
        # via a platform-exactness probe) a batch kernel changes the
        # vectorized/scalar split of every plan that contains it.
        bool(worker.vector_items),
        bool(worker.supports_work_batch),
    )


def _graph_key(graph: StreamGraph) -> _HashedKey:
    """Canonical structure key of a graph — the cache's internal key.

    Table keys stay as plain (hash-cached) tuples: hashing them once is
    far cheaper than a cryptographic digest, and the digest buys
    nothing within one process.  :func:`graph_fingerprint` hashes this
    same tuple for the printable content address.  Memoized on the
    graph instance: graphs are structurally immutable after
    construction.
    """
    cached = getattr(graph, "_structure_key", None)
    if cached is not None:
        return cached
    key = _HashedKey((
        tuple(_worker_signature(w) for w in graph.workers),
        tuple((e.index, e.src, e.src_port, e.dst, e.dst_port)
              for e in graph.edges),
    ))
    graph._structure_key = key
    return key


def structure_key(graph: StreamGraph) -> _HashedKey:
    """The graph's canonical structure key (memoized on the graph)."""
    return _graph_key(graph)


def stamp_structure_key(graph: StreamGraph, key: _HashedKey) -> None:
    """Adopt a precomputed structure key for ``graph``.

    Every live flow recompiles graphs built by the *same* blueprint the
    app was constructed with, and blueprint determinism is already a
    load-bearing invariant of two-phase reconfiguration (state
    absorption and input duplication replay both assume a rebuilt graph
    is the same program).  Stamping the first build's key onto later
    builds makes warm cache keying O(1) instead of O(workers + edges).
    """
    graph._structure_key = key


def graph_fingerprint(graph: StreamGraph) -> str:
    """Printable content fingerprint of a graph's structure and rates."""
    cached = getattr(graph, "_content_fingerprint", None)
    if cached is not None:
        return cached
    digest = _digest(_graph_key(graph).key)
    graph._content_fingerprint = digest
    return digest


def configuration_fingerprint(configuration) -> str:
    """Content fingerprint of a configuration's structural decisions.

    Excludes the display ``name`` and the blob ``node_id`` placements:
    neither changes the schedule, the blob layouts, or the
    fusion/removal decisions phase 1 produces.  Blob order is
    significant (it defines ``blob_id``).
    """
    return _digest(_configuration_key(configuration).key)


def _configuration_key(configuration) -> _HashedKey:
    cached = getattr(configuration, "_cache_key", None)
    if cached is not None:
        return cached
    key = _HashedKey((
        tuple(tuple(sorted(blob.workers)) for blob in configuration.blobs),
        configuration.multiplier,
        configuration.fusion,
        configuration.removal,
    ))
    # Configurations are frozen dataclasses (hence object.__setattr__)
    # and reused across many compiles, so the key is memoized the same
    # way the graph's structure key is.
    object.__setattr__(configuration, "_cache_key", key)
    return key


def meta_fingerprint(counts: Optional[Dict[int, int]]) -> str:
    """Fingerprint of the meta program state (buffered counts per edge).

    Zero counts are dropped first: an absent edge and an explicit zero
    are the same meta state.
    """
    return _digest(_meta_key(counts))


def _meta_key(counts: Optional[Dict[int, int]]) -> tuple:
    return tuple(sorted(
        (edge, count) for edge, count in (counts or {}).items() if count
    ))


@dataclass(frozen=True)
class BlobLayout:
    """Everything ``BlobRuntime.__init__`` derives from its inputs,
    expressed in graph-instance-independent keys (worker ids, edge
    indices)."""

    internal_edges: Tuple[int, ...]
    boundary_in: Tuple[int, ...]
    boundary_out: Tuple[int, ...]
    has_head: bool
    has_tail: bool
    topo: Tuple[int, ...]
    #: True when every worker in the blob stores plain numbers, i.e.
    #: the blob is eligible for the vectorized backend (the actual mode
    #: still depends on the restoring run's execution flags).
    vector_capable: bool
    #: Per worker (topo order): input channel keys.
    in_keys: Tuple[Tuple[int, ...], ...]
    #: Per worker (topo order): (is_staging, key) output bindings.
    out_keys: Tuple[Tuple[Tuple[bool, int], ...], ...]
    #: Need/readiness/leftover maps are stored as ready-made dicts so a
    #: restore copies them instead of rebuilding from item tuples.
    #: Layouts are cache values, never keys, so dict fields are fine.
    steady_in_need: Dict[int, int]
    steady_ready_len: Dict[int, int]
    init_in_need: Dict[int, int]
    init_ready_len: Dict[int, int]
    leftovers: Dict[int, int]


def blob_layout(runtime) -> BlobLayout:
    """Extract the cacheable structural layout of a built runtime."""
    graph = runtime.graph
    in_keys = []
    out_keys = []
    for worker_id in runtime._topo:
        worker = graph.worker(worker_id)
        ins = []
        for port in range(worker.n_inputs):
            edge = graph.in_edge(worker_id, port)
            ins.append(edge.index if edge is not None else GRAPH_INPUT)
        outs = []
        for port in range(worker.n_outputs):
            edge = graph.out_edge(worker_id, port)
            if edge is None:
                outs.append((True, GRAPH_OUTPUT))
            elif edge.index in runtime.channels:
                outs.append((False, edge.index))
            else:
                outs.append((True, edge.index))
        in_keys.append(tuple(ins))
        out_keys.append(tuple(outs))
    return BlobLayout(
        internal_edges=tuple(e.index for e in runtime.internal_edges),
        boundary_in=tuple(e.index for e in runtime.boundary_in),
        boundary_out=tuple(e.index for e in runtime.boundary_out),
        has_head=runtime.has_head,
        has_tail=runtime.has_tail,
        topo=tuple(runtime._topo),
        vector_capable=runtime.vector_capable,
        in_keys=tuple(in_keys),
        out_keys=tuple(out_keys),
        steady_in_need=dict(runtime._steady_in_need),
        steady_ready_len=dict(runtime._steady_ready_len),
        init_in_need=dict(runtime._init_in_need),
        init_ready_len=dict(runtime._init_ready_len),
        leftovers=dict(runtime._leftovers),
    )


@dataclass(frozen=True)
class PlanEntry:
    """Cached phase-1 result: schedule dictionaries plus per-blob
    structure, aligned positionally with the configuration's blobs."""

    #: Schedule dictionaries, stored ready-made (entries are cache
    #: values, never keys) so rehydration copies rather than rebuilds.
    repetitions: Dict[int, int]
    init: Dict[int, int]
    initial_contents: Dict[int, int]
    #: Per blob: (fused edge indices, removed worker ids, layout).
    blobs: Tuple[Tuple[FrozenSet[int], FrozenSet[int], BlobLayout], ...]


class CompilationCache:
    """Bounded content-addressed cache for schedules and phase-1 plans.

    Two tables with independent hit/miss counters:

    * *schedules* — keyed by (graph, multiplier, initial contents,
      prefill) fingerprints; stores repetition and init dictionaries.
    * *plans* — keyed by (graph, configuration, meta state,
      pipeline depth) fingerprints; stores a :class:`PlanEntry`.

    Eviction is FIFO at ``max_entries`` per table — enough for every
    configuration an autotuning run revisits, bounded for long-lived
    processes.
    """

    def __init__(self, max_entries: int = 512):
        self.max_entries = max_entries
        self._schedules: "OrderedDict[tuple, tuple]" = OrderedDict()
        self._plans: "OrderedDict[tuple, PlanEntry]" = OrderedDict()
        self._kernels: "OrderedDict[str, object]" = OrderedDict()
        self._modules: "OrderedDict[str, object]" = OrderedDict()
        # Kernel compiles may come from parallel blob threads; the
        # schedule/plan tables stay single-threaded (sim thread only).
        self._kernel_lock = threading.Lock()
        self.schedule_hits = 0
        self.schedule_misses = 0
        self.plan_hits = 0
        self.plan_misses = 0
        self.kernel_hits = 0
        self.kernel_misses = 0
        self.module_hits = 0
        self.module_misses = 0

    # -- bookkeeping ---------------------------------------------------------

    def clear(self) -> None:
        self._schedules.clear()
        self._plans.clear()
        self._kernels.clear()
        self._modules.clear()
        self.schedule_hits = 0
        self.schedule_misses = 0
        self.plan_hits = 0
        self.plan_misses = 0
        self.kernel_hits = 0
        self.kernel_misses = 0
        self.module_hits = 0
        self.module_misses = 0

    def counters(self) -> Dict[str, int]:
        return {
            "schedule_hits": self.schedule_hits,
            "schedule_misses": self.schedule_misses,
            "plan_hits": self.plan_hits,
            "plan_misses": self.plan_misses,
            "kernel_hits": self.kernel_hits,
            "kernel_misses": self.kernel_misses,
            "module_hits": self.module_hits,
            "module_misses": self.module_misses,
        }

    def hit_rate(self) -> float:
        """Combined hit rate over the schedule and plan tables (0.0
        when never queried).  Generated-kernel compiles are excluded:
        they are per-source memoization with their own counters, and
        folding them in would shift the fig05 baseline metric."""
        hits = self.schedule_hits + self.plan_hits
        total = hits + self.schedule_misses + self.plan_misses
        return hits / total if total else 0.0

    def _store(self, table: OrderedDict, key, value) -> None:
        if key not in table and len(table) >= self.max_entries:
            table.popitem(last=False)
        table[key] = value

    # -- generated kernels ---------------------------------------------------

    def kernel_for(self, source: str) -> Tuple[str, object]:
        """Memoized ``compile`` of generated-kernel source.

        Returns ``(content fingerprint, code object)``.  Two blobs
        whose plans emit byte-identical source (same step shapes,
        firing counts and bind-time occupancies) share one compiled
        code object; bindings stay per-kernel because the source is a
        bind *factory* executed against each caller's own channels.
        """
        fingerprint = hashlib.sha256(source.encode("utf-8")).hexdigest()
        with self._kernel_lock:
            code = self._kernels.get(fingerprint)
            if code is not None:
                self.kernel_hits += 1
                return fingerprint, code
            self.kernel_misses += 1
            code = compile(source, "<codegen:%s>" % fingerprint[:12], "exec")
            self._store(self._kernels, fingerprint, code)
            return fingerprint, code

    def kernel_module_for(self, source: str, build) -> object:
        """Memoized extension-module build of generated-kernel source.

        The cython emission tier compiles kernel source to a C
        extension; builds cost hundreds of milliseconds, so the loaded
        module is cached by the same content fingerprint as the code
        object (``build(fingerprint, source)`` is only invoked on a
        miss, under the kernel lock).  Build artifacts additionally
        persist on disk keyed by fingerprint (see
        :func:`repro.runtime.codegen.cython_available`), making warm
        builds across processes an import, not a compile.
        """
        fingerprint = hashlib.sha256(source.encode("utf-8")).hexdigest()
        with self._kernel_lock:
            module = self._modules.get(fingerprint)
            if module is not None:
                self.module_hits += 1
                return module
            self.module_misses += 1
            module = build(fingerprint, source)
            self._store(self._modules, fingerprint, module)
            return module

    # -- schedules -----------------------------------------------------------

    def schedule_for(
        self,
        graph: StreamGraph,
        multiplier: int = 1,
        initial_contents: Optional[Dict[int, int]] = None,
        prefill: Optional[Dict[int, int]] = None,
    ) -> Schedule:
        """Memoized :func:`~repro.sched.schedule.make_schedule`.

        Hits return a fresh :class:`Schedule` bound to the *caller's*
        graph instance; only the solved dictionaries are shared
        content.
        """
        contents = {k: v for k, v in (initial_contents or {}).items() if v}
        extra = {k: v for k, v in (prefill or {}).items() if v}
        key = (
            _graph_key(graph),
            multiplier,
            tuple(sorted(contents.items())),
            tuple(sorted(extra.items())),
        )
        entry = self._schedules.get(key)
        if entry is not None:
            self.schedule_hits += 1
            repetitions, init = entry
            return Schedule(
                graph=graph,
                repetitions=repetitions.copy(),
                init=init.copy(),
                multiplier=multiplier,
                initial_contents=contents,
            )
        self.schedule_misses += 1
        schedule = make_schedule(
            graph, multiplier=multiplier,
            initial_contents=contents, prefill=extra,
        )
        self._store(self._schedules, key, (
            dict(schedule.repetitions),
            dict(schedule.init),
        ))
        return schedule

    # -- phase-1 plans -------------------------------------------------------

    def plan_key(self, graph: StreamGraph, configuration,
                 meta_counts: Optional[Dict[int, int]],
                 pipeline_depth: int) -> tuple:
        """Cache key for a phase-1 compilation.  ``pipeline_depth`` is
        the only cost-model input that shapes plan structure (via the
        boundary prefill); the rest only prices it."""
        return (
            _graph_key(graph),
            _configuration_key(configuration),
            _meta_key(meta_counts),
            pipeline_depth,
        )

    def lookup_plan(self, key: tuple) -> Optional[PlanEntry]:
        entry = self._plans.get(key)
        if entry is not None:
            self.plan_hits += 1
        else:
            self.plan_misses += 1
        return entry

    def store_plan(self, key: tuple, plan) -> None:
        """Record a freshly compiled :class:`CompilationPlan`."""
        schedule = plan.schedule
        entry = PlanEntry(
            repetitions=dict(schedule.repetitions),
            init=dict(schedule.init),
            initial_contents=dict(schedule.initial_contents),
            blobs=tuple(
                (blob.fused_edges, blob.removed_workers,
                 blob_layout(blob.runtime))
                for blob in plan.pseudo_blobs
            ),
        )
        self._store(self._plans, key, entry)


#: Process-wide cache used when callers do not supply their own.
_DEFAULT_CACHE: Optional[CompilationCache] = (
    CompilationCache()
    if os.environ.get("REPRO_COMPILE_CACHE", "1") != "0"
    else None
)


def get_default_cache() -> Optional[CompilationCache]:
    """The process-wide cache, or ``None`` when disabled via
    ``REPRO_COMPILE_CACHE=0``."""
    return _DEFAULT_CACHE


def set_default_cache(cache: Optional[CompilationCache]) -> Optional[CompilationCache]:
    """Swap the process-wide cache (tests use this); returns the old one."""
    global _DEFAULT_CACHE
    previous = _DEFAULT_CACHE
    _DEFAULT_CACHE = cache
    return previous


def cached_schedule(
    graph: StreamGraph,
    multiplier: int = 1,
    initial_contents: Optional[Dict[int, int]] = None,
    prefill: Optional[Dict[int, int]] = None,
    cache: Optional[CompilationCache] = None,
) -> Schedule:
    """``make_schedule`` through the default (or given) cache; falls
    back to a direct solve when caching is disabled."""
    cache = cache if cache is not None else get_default_cache()
    if cache is None:
        return make_schedule(graph, multiplier=multiplier,
                             initial_contents=initial_contents,
                             prefill=prefill)
    return cache.schedule_for(graph, multiplier=multiplier,
                              initial_contents=initial_contents,
                              prefill=prefill)
