"""Optimal contiguous partitioning and throughput prediction.

``partition_even`` (the greedy quantile splitter) is fast but can
leave an unbalanced bottleneck blob.  :func:`partition_optimal` solves
the contiguous-partition problem exactly by dynamic programming: split
the topological worker order into ``k`` segments minimizing the
maximum predicted *iteration time* (not raw work — it accounts for
serial/stateful work that cannot be data-parallelized, which is what
actually limits a blob on a many-core node).

:func:`predict_throughput` estimates a configuration's steady-state
throughput as the schedule quantum over the slowest blob's predicted
iteration time — the static model the autotuner can use to pre-screen
configurations before paying for a live reconfiguration.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.compiler.config import Configuration
from repro.compiler.cost_model import CostModel
from repro.graph.topology import StreamGraph
from repro.compiler.cache import cached_schedule

__all__ = ["partition_optimal", "predict_throughput", "segment_cost"]


def _worker_profile(graph: StreamGraph, multiplier: int):
    """Per-worker (serial_work, parallel_work) for one iteration."""
    schedule = cached_schedule(graph, multiplier=multiplier)
    profile = {}
    for worker in graph.workers:
        work = worker.work_estimate * schedule.steady_firings(
            worker.worker_id)
        if worker.is_stateful:
            profile[worker.worker_id] = (work, 0.0)
        else:
            profile[worker.worker_id] = (0.0, work)
    return profile, schedule


def segment_cost(serial: float, parallel: float, cores: float,
                 cost_model: CostModel) -> float:
    """Predicted iteration seconds for one blob's worth of work."""
    cores = max(cores, 0.25)
    return ((serial + parallel / cores) / cost_model.node_speed
            + cost_model.sync_overhead
            + cost_model.sync_per_core * cores)


def partition_optimal(
    graph: StreamGraph,
    node_ids: Sequence[int],
    cost_model: Optional[CostModel] = None,
    multiplier: int = 1,
    cores_per_node: int = 24,
    name: str = "",
) -> Configuration:
    """Minimize the bottleneck blob's predicted iteration time.

    Classic contiguous-partition DP: ``best[i][k]`` is the minimal
    bottleneck cost of splitting the first ``i`` workers (topological
    order) into ``k`` blobs.  O(n^2 k) with n workers — fine for the
    graph sizes SDF programs have.
    """
    cost_model = cost_model or CostModel()
    node_ids = list(node_ids)
    if not node_ids:
        raise ValueError("need at least one node")
    order = graph.topological_order()
    n = len(order)
    k = min(len(node_ids), n)
    node_ids = node_ids[:k]
    profile, _ = _worker_profile(graph, multiplier)

    # Prefix sums of serial and parallel work over the topo order.
    serial_prefix = [0.0]
    parallel_prefix = [0.0]
    for worker_id in order:
        serial, parallel = profile[worker_id]
        serial_prefix.append(serial_prefix[-1] + serial)
        parallel_prefix.append(parallel_prefix[-1] + parallel)

    def cost(i: int, j: int) -> float:
        """Iteration cost of a blob covering order[i:j]."""
        return segment_cost(
            serial_prefix[j] - serial_prefix[i],
            parallel_prefix[j] - parallel_prefix[i],
            cores_per_node, cost_model,
        )

    INF = float("inf")
    best = [[INF] * (k + 1) for _ in range(n + 1)]
    split = [[0] * (k + 1) for _ in range(n + 1)]
    best[0][0] = 0.0
    for blobs in range(1, k + 1):
        for end in range(blobs, n + 1):
            for start in range(blobs - 1, end):
                if best[start][blobs - 1] is INF:
                    continue
                candidate = max(best[start][blobs - 1], cost(start, end))
                if candidate < best[end][blobs]:
                    best[end][blobs] = candidate
                    split[end][blobs] = start
    # Recover the cut points.
    cuts: List[int] = []
    position = n
    for blobs in range(k, 0, -1):
        cuts.append(position)
        position = split[position][blobs]
    cuts.append(0)
    cuts.reverse()
    assignments: List[Tuple[int, List[int]]] = []
    for blob_index in range(k):
        workers = order[cuts[blob_index]:cuts[blob_index + 1]]
        assignments.append((node_ids[blob_index], workers))
    configuration = Configuration.build(
        assignments, multiplier=multiplier,
        name=name or "optimal@%s" % ",".join(map(str, node_ids)),
    )
    configuration.validate(graph)
    return configuration


def predict_throughput(
    graph: StreamGraph,
    configuration: Configuration,
    cost_model: Optional[CostModel] = None,
    cores_per_node: int = 24,
) -> float:
    """Static throughput estimate (items/s) for a configuration.

    The pipeline's rate is set by its slowest blob; each blob's
    iteration time comes from its serial/parallel work split.  This is
    the "throughput predictor" whose imperfection the paper cites
    (Section 7.1.3) — it ignores network effects, core sharing and
    transient behaviour, but ranks configurations usefully.
    """
    cost_model = cost_model or CostModel()
    profile, schedule = _worker_profile(graph, configuration.multiplier)
    worst = 0.0
    for blob in configuration.blobs:
        serial = sum(profile[w][0] for w in blob.workers)
        parallel = sum(profile[w][1] for w in blob.workers)
        worst = max(worst, segment_cost(serial, parallel,
                                        cores_per_node, cost_model))
    if worst <= 0:
        return float("inf")
    return schedule.steady_in / worst
