"""The calibrated timing model.

Every simulated duration in the system derives from the constants
here: execution speed, synchronization overhead, interpreter slowdown
(draining / initialization), compilation time and its phase-1/phase-2
split, and network latency/bandwidth.

Calibration targets the paper's Figure 4: a Beamformer-sized graph
reconfigured with stop-and-copy should spend on the order of seconds
in each of draining, compilation and initialization (the paper
measures 5 s / 6 s / 3 s).  All experiments share one instance of this
model, so relative results (who wins, where crossovers fall) are not
tuned per figure.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

__all__ = ["CostModel"]


@dataclass(frozen=True)
class CostModel:
    """Timing constants for the simulated cluster."""

    #: Work units per second per core (compiled steady-state execution).
    node_speed: float = 200_000.0

    #: Seconds of barrier/synchronization overhead per steady iteration.
    sync_overhead: float = 0.0002

    #: Extra per-core sync cost: more threads, costlier barrier.
    sync_per_core: float = 0.00001

    #: Per-item cost (work units) of moving data over an *unfused*
    #: intra-blob edge.  Fusion eliminates it (paper Section 3: fusion
    #: buys locality).
    unfused_edge_cost: float = 1.2

    #: Per-item cost retained on fused edges (register/loop traffic).
    fused_edge_cost: float = 0.03

    #: Slowdown factor of the fine-grained interpreter used while
    #: draining, relative to compiled execution (paper Section 4.1:
    #: draining "reduc[es] throughput to near zero").
    interp_slowdown: float = 20.0

    #: Slowdown factor of the single-threaded initialization phase.
    init_slowdown: float = 20.0

    #: Fixed seconds of JIT compilation per blob.
    compile_fixed: float = 0.8

    #: Seconds of JIT compilation per worker in the blob.
    compile_per_worker: float = 0.20

    #: Seconds of compilation per steady-schedule firing (unrolling).
    compile_per_firing: float = 1.5e-5

    #: Fraction of compile time that must happen *after* the actual
    #: program state is available (phase 2: splitter/joiner removal
    #: finalization + init-schedule read instructions + state install).
    phase2_fraction: float = 0.07

    #: One-way latency of a control-channel message, seconds.
    control_latency: float = 0.015

    #: One-way latency of a data-channel transfer, seconds.
    data_latency: float = 0.002

    #: Data-channel bandwidth in items per second (inter-blob batches).
    bandwidth_items: float = 5.0e6

    #: Network bandwidth in bytes/second for state transfer (10 GbE).
    bandwidth_bytes: float = 1.25e9

    #: How far ahead (seconds) AST aims its snapshot point: the
    #: controller requests state after the n-th item, with n predicted
    #: ``ast_lead_time`` seconds into the future (paper uses t = 3 s).
    ast_lead_time: float = 3.0

    #: Seconds between resource-throttling steps during adaptive
    #: seamless reconfiguration.
    throttle_interval: float = 2.0

    #: Inter-blob channel capacity, in steady-state iterations of
    #: buffered data.  In-flight data is what draining must flush.
    channel_capacity_iterations: int = 6

    #: Cores consumed on a node by one active compilation job.
    compile_cores: float = 1.0

    #: Iterations of data prefilled on each blob boundary edge by the
    #: initialization schedule.  Zero by default: inter-blob slack
    #: accumulates during early steady execution instead (bounded by
    #: ``channel_capacity_iterations``), because a prefilling init
    #: schedule cascades quadratically along deep blob chains.  Kept
    #: as an ablation knob.
    pipeline_depth: int = 0

    #: Steady-state iterations charged at interpreter speed during a
    #: blob's initialization phase: the single-threaded first pass
    #: that fills the blob's internal unrolled buffers (third downtime
    #: contributor of Figure 4).
    init_iterations: float = 6.0

    #: Fixed seconds a blob is paused while a state snapshot is cut at
    #: an iteration boundary.  Zero by default (snapshots are modelled
    #: as instantaneous, as in the base paper); the migration
    #: tail-latency experiments raise it to expose the pause.
    snapshot_latency: float = 0.0

    #: Additional pause seconds per snapshotted byte (memcpy out of
    #: the live working set).  Zero by default; with it nonzero, a
    #: one-shot snapshot pauses proportionally to state size — the
    #: effect fluid migration bounds by snapshotting in batches.
    snapshot_seconds_per_byte: float = 0.0

    #: Fluid migration: maximum estimated bytes captured per batch.
    #: Smaller batches mean shorter per-boundary pauses (lower added
    #: tail latency) but more boundaries — the latency/duration knob.
    fluid_batch_bytes: float = 65536.0

    #: Fluid migration: how far ahead (seconds) each batch snapshot is
    #: aimed, the per-batch analogue of ``ast_lead_time``.  Small, so
    #: batches pace quickly; the retry loop doubles it on a miss.
    fluid_batch_lead: float = 0.75

    # -- derived helpers ---------------------------------------------------

    def compile_seconds(self, n_workers: int, schedule_firings: int) -> float:
        """Full (single-phase) compile time for one blob."""
        return (self.compile_fixed
                + self.compile_per_worker * n_workers
                + self.compile_per_firing * schedule_firings)

    def phase1_seconds(self, n_workers: int, schedule_firings: int) -> float:
        return (1.0 - self.phase2_fraction) * self.compile_seconds(
            n_workers, schedule_firings)

    def phase2_seconds(self, n_workers: int, schedule_firings: int) -> float:
        return self.phase2_fraction * self.compile_seconds(
            n_workers, schedule_firings)

    def transfer_seconds(self, n_bytes: int) -> float:
        """State-transfer time over the data network."""
        return self.data_latency + n_bytes / self.bandwidth_bytes

    def snapshot_seconds(self, n_bytes: int) -> float:
        """Pause charged against a blob for cutting one snapshot."""
        return (self.snapshot_latency
                + n_bytes * self.snapshot_seconds_per_byte)

    def batch_seconds(self, n_items: int) -> float:
        """Delivery time of one inter-blob item batch."""
        return self.data_latency + n_items / self.bandwidth_items

    def scaled(self, **overrides) -> "CostModel":
        """A copy with some constants replaced (ablations)."""
        return replace(self, **overrides)
