"""Configurations: the unit of reconfiguration.

A configuration is everything Gloss may change at runtime (paper
Section 4): the partitioning of the stream graph into blobs, the
assignment of blobs to nodes, the schedule multiplier, and which
optimizations are enabled.  The autotuner (paper Section 9.5) searches
this space; the reconfigurers move a running program from one
configuration to another.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Sequence, Tuple

from repro.graph.topology import StreamGraph

__all__ = ["BlobSpec", "Configuration", "ConfigurationError"]


class ConfigurationError(Exception):
    """The configuration does not describe a valid partitioning."""


@dataclass(frozen=True)
class BlobSpec:
    """One blob: a set of connected workers hosted on one node."""

    blob_id: int
    node_id: int
    workers: FrozenSet[int]

    def __repr__(self) -> str:
        return "<blob %d on node %d: %d workers>" % (
            self.blob_id, self.node_id, len(self.workers),
        )


@dataclass(frozen=True)
class Configuration:
    """A complete runtime configuration of a stream program."""

    blobs: Tuple[BlobSpec, ...]
    multiplier: int = 1
    fusion: bool = True
    removal: bool = True
    name: str = ""

    @classmethod
    def build(
        cls,
        assignments: Sequence[Tuple[int, Sequence[int]]],
        multiplier: int = 1,
        fusion: bool = True,
        removal: bool = True,
        name: str = "",
    ) -> "Configuration":
        """Build from (node_id, worker_ids) pairs, one per blob."""
        blobs = tuple(
            BlobSpec(blob_id=i, node_id=node, workers=frozenset(workers))
            for i, (node, workers) in enumerate(assignments)
        )
        return cls(blobs=blobs, multiplier=multiplier, fusion=fusion,
                   removal=removal, name=name)

    # -- queries ----------------------------------------------------------

    @property
    def node_ids(self) -> List[int]:
        """Distinct node ids in use, in blob order."""
        seen: List[int] = []
        for blob in self.blobs:
            if blob.node_id not in seen:
                seen.append(blob.node_id)
        return seen

    def blob_of(self, worker_id: int) -> BlobSpec:
        for blob in self.blobs:
            if worker_id in blob.workers:
                return blob
        raise ConfigurationError("worker %d in no blob" % worker_id)

    def worker_to_blob(self) -> Dict[int, int]:
        mapping: Dict[int, int] = {}
        for blob in self.blobs:
            for worker_id in blob.workers:
                mapping[worker_id] = blob.blob_id
        return mapping

    def blobs_on_node(self, node_id: int) -> List[BlobSpec]:
        return [blob for blob in self.blobs if blob.node_id == node_id]

    # -- validation ----------------------------------------------------------

    def validate(self, graph: StreamGraph) -> None:
        """Check the blobs exactly partition the graph's workers."""
        if self.multiplier < 1:
            raise ConfigurationError("multiplier must be >= 1")
        if not self.blobs:
            raise ConfigurationError("configuration has no blobs")
        covered: Dict[int, int] = {}
        for blob in self.blobs:
            if not blob.workers:
                raise ConfigurationError("empty blob %d" % blob.blob_id)
            for worker_id in sorted(blob.workers):
                if worker_id in covered:
                    raise ConfigurationError(
                        "worker %d in blobs %d and %d"
                        % (worker_id, covered[worker_id], blob.blob_id)
                    )
                covered[worker_id] = blob.blob_id
        all_workers = {w.worker_id for w in graph.workers}
        missing = all_workers - set(covered)
        if missing:
            raise ConfigurationError(
                "workers not assigned to any blob: %r" % (sorted(missing),)
            )
        extra = set(covered) - all_workers
        if extra:
            raise ConfigurationError(
                "unknown workers in configuration: %r" % (sorted(extra),)
            )
        self._check_acyclic(graph)

    def _check_acyclic(self, graph: StreamGraph) -> None:
        """The blob-level graph must stay acyclic for deadlock freedom."""
        mapping = self.worker_to_blob()
        successors: Dict[int, List[int]] = {
            blob.blob_id: [] for blob in self.blobs}
        indegree = {blob.blob_id: 0 for blob in self.blobs}
        pairs: List[Tuple[int, int]] = []
        for edge in graph.edges:
            src_blob = mapping[edge.src]
            dst_blob = mapping[edge.dst]
            pair = (src_blob, dst_blob)
            if src_blob != dst_blob and pair not in pairs:
                pairs.append(pair)
                successors[src_blob].append(dst_blob)
                indegree[dst_blob] += 1
        ready = [blob.blob_id for blob in self.blobs
                 if indegree[blob.blob_id] == 0]
        seen = 0
        while ready:
            current = ready.pop()
            seen += 1
            for dst in successors[current]:
                indegree[dst] -= 1
                if indegree[dst] == 0:
                    ready.append(dst)
        if seen != len(self.blobs):
            raise ConfigurationError("blob graph contains a cycle")

    def describe(self) -> str:
        parts = ["Configuration %r (multiplier=%d, fusion=%s)" %
                 (self.name or "<anon>", self.multiplier, self.fusion)]
        for blob in self.blobs:
            parts.append("  blob %d @ node %d: workers %s" % (
                blob.blob_id, blob.node_id, sorted(blob.workers)))
        return "\n".join(parts)
