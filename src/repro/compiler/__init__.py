"""The distributed stream compiler.

Mirrors StreamJIT's compiler pipeline (paper Sections 2-3): a
:class:`Configuration` assigns workers to *blobs* and blobs to nodes,
picks a schedule multiplier, and toggles optimizations.  Compiling a
configuration produces one :class:`CompiledBlob` per blob, each
wrapping a :class:`repro.runtime.BlobRuntime` plus timing derived from
the :class:`CostModel` (fusion, splitter/joiner removal and data
parallelism all feed the timing, reproducing why global reoptimization
matters).

Two-phase compilation (paper Section 5.1) is the compiler-side half of
Gloss: :func:`plan_configuration` (phase 1, heavy) needs only the
*meta program state* — buffered item counts — while
:func:`absorb_state` (phase 2, light) injects the actual program
state, turning pseudo-blobs into state-absorbed blobs.
"""

from repro.compiler.cache import (
    CompilationCache,
    cached_schedule,
    configuration_fingerprint,
    get_default_cache,
    graph_fingerprint,
    meta_fingerprint,
    set_default_cache,
)
from repro.compiler.config import BlobSpec, Configuration, ConfigurationError
from repro.compiler.cost_model import CostModel
from repro.compiler.compiled import CompiledBlob, CompiledProgram
from repro.compiler.two_phase import (
    CompilationPlan,
    absorb_state,
    compile_configuration,
    plan_configuration,
)
from repro.compiler.partition import (
    choose_multiplier,
    partition_even,
    single_blob_configuration,
)
from repro.compiler.optimizer import partition_optimal, predict_throughput

__all__ = [
    "BlobSpec",
    "CompilationCache",
    "CompilationPlan",
    "CompiledBlob",
    "CompiledProgram",
    "Configuration",
    "ConfigurationError",
    "CostModel",
    "absorb_state",
    "cached_schedule",
    "choose_multiplier",
    "compile_configuration",
    "configuration_fingerprint",
    "get_default_cache",
    "graph_fingerprint",
    "meta_fingerprint",
    "partition_even",
    "partition_optimal",
    "predict_throughput",
    "plan_configuration",
    "set_default_cache",
    "single_blob_configuration",
]
