"""Automatic graph partitioning and schedule sizing.

The partitioner produces load-balanced configurations: a contiguous
split of the topological worker order into one blob per node, with cut
points chosen so every blob carries a similar amount of work.  This is
the "load-balanced static work distribution" the paper cites as a key
global optimization (Section 3), and it is the default configuration
generator for reconfigurations that add or remove nodes.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.compiler.config import Configuration
from repro.compiler.cost_model import CostModel
from repro.graph.topology import StreamGraph
from repro.compiler.cache import cached_schedule

__all__ = ["partition_even", "single_blob_configuration", "choose_multiplier"]


def single_blob_configuration(
    graph: StreamGraph,
    node_id: int = 0,
    multiplier: int = 1,
    name: str = "",
) -> Configuration:
    """Everything in one blob on one node (single-node deployment)."""
    configuration = Configuration.build(
        [(node_id, [w.worker_id for w in graph.workers])],
        multiplier=multiplier,
        name=name or "single@%d" % node_id,
    )
    configuration.validate(graph)
    return configuration


def partition_even(
    graph: StreamGraph,
    node_ids: Sequence[int],
    multiplier: int = 1,
    name: str = "",
    cut_bias: float = 0.0,
) -> Configuration:
    """Split the topological order into ``len(node_ids)`` balanced blobs.

    Work is measured as ``work_estimate * repetitions``; cut points are
    chosen greedily at equal cumulative-work quantiles.  ``cut_bias``
    in [-0.4, 0.4] skews the quantiles, giving the autotuner a
    continuous knob that changes partition shapes.
    """
    node_ids = list(node_ids)
    if not node_ids:
        raise ValueError("need at least one node")
    order = graph.topological_order()
    if len(node_ids) >= len(order):
        node_ids = node_ids[:max(len(order) // 2, 1)]
    repetitions = cached_schedule(graph).repetitions
    weights = [graph.worker(w).work_estimate * repetitions[w] for w in order]
    total = sum(weights) or 1.0
    n_blobs = len(node_ids)
    assignments: List[List[int]] = [[] for _ in range(n_blobs)]
    cumulative = 0.0
    blob_index = 0
    for worker_id, weight in zip(order, weights):
        # Target boundary for current blob, optionally biased.
        boundary = (blob_index + 1) / n_blobs + cut_bias / n_blobs
        if (cumulative / total) >= boundary and blob_index < n_blobs - 1 \
                and assignments[blob_index]:
            blob_index += 1
        assignments[blob_index].append(worker_id)
        cumulative += weight
    # Guarantee no empty blobs (tiny graphs): steal from the left.
    for i in range(n_blobs):
        if not assignments[i]:
            donor = max(range(n_blobs), key=lambda j: len(assignments[j]))
            if len(assignments[donor]) <= 1:
                raise ValueError("graph too small for %d blobs" % n_blobs)
            assignments[i] = [assignments[donor].pop()]
    # Re-sort blob contents to topological order after stealing.
    position = {w: i for i, w in enumerate(order)}
    pairs = []
    for node_id, workers in zip(node_ids, assignments):
        workers.sort(key=position.__getitem__)
        pairs.append((node_id, workers))
    pairs.sort(key=lambda pair: position[pair[1][0]])
    configuration = Configuration.build(
        pairs, multiplier=multiplier,
        name=name or "even@%s" % ",".join(map(str, node_ids)),
    )
    configuration.validate(graph)
    return configuration


def choose_multiplier(
    graph: StreamGraph,
    cost_model: CostModel,
    n_nodes: int = 1,
    cores_per_node: int = 8,
    target_iteration_seconds: float = 0.08,
) -> int:
    """Pick a schedule multiplier so iterations take roughly the target.

    Longer iterations amortize the barrier but increase buffering and
    drain time — the classic throughput/latency trade-off the
    autotuner also explores.
    """
    schedule = cached_schedule(graph)
    work = schedule.steady_work / max(n_nodes, 1)
    seconds_at_m1 = work / (cost_model.node_speed) / max(cores_per_node, 1) \
        + cost_model.sync_overhead
    multiplier = max(int(target_iteration_seconds / max(seconds_at_m1, 1e-9)), 1)
    return min(multiplier, 4096)
