"""Compiled blobs and programs.

A :class:`CompiledBlob` pairs a blob's executable
:class:`repro.runtime.BlobRuntime` with the optimization decisions
made for it (fusion, splitter/joiner removal) and with timing
functions derived from the cost model.  A :class:`CompiledProgram` is
the full set of blobs for one configuration plus the global schedule.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional

from repro.compiler.config import BlobSpec, Configuration
from repro.compiler.cost_model import CostModel
from repro.graph.topology import StreamGraph
from repro.runtime.executor import BlobRuntime
from repro.runtime.state import ProgramState
from repro.sched.schedule import Schedule

__all__ = ["CompiledBlob", "CompiledProgram"]


@dataclass
class CompiledBlob:
    """One blob, compiled: runtime + optimization decisions + timing."""

    spec: BlobSpec
    runtime: BlobRuntime
    cost_model: CostModel
    fused_edges: FrozenSet[int] = frozenset()
    removed_workers: FrozenSet[int] = frozenset()

    # -- static work accounting ------------------------------------------------

    def _effective_work(self) -> Dict[str, float]:
        graph = self.runtime.graph
        schedule = self.runtime.schedule
        serial = 0.0
        parallel = 0.0
        for worker_id in self.spec.workers:
            if worker_id in self.removed_workers:
                continue
            worker = graph.worker(worker_id)
            work = worker.work_estimate * schedule.steady_firings(worker_id)
            if worker.is_stateful:
                serial += work
            else:
                parallel += work
        traffic = 0.0
        for edge in self.runtime.internal_edges:
            src = graph.worker(edge.src)
            items = (src.push_rates[edge.src_port]
                     * schedule.steady_firings(edge.src))
            per_item = (self.cost_model.fused_edge_cost
                        if edge.index in self.fused_edges
                        else self.cost_model.unfused_edge_cost)
            traffic += items * per_item
        return {"serial": serial, "parallel": parallel + traffic}

    def iteration_seconds(self, cores: float) -> float:
        """Duration of one steady-state iteration with ``cores`` cores.

        Serial (stateful) work cannot be data-parallelized; stateless
        work splits across cores (the fission/data-parallelism
        optimization); the barrier costs more with more threads.
        """
        cores = max(cores, 0.25)
        work = self._effective_work()
        seconds = (work["serial"] + work["parallel"] / cores) \
            / self.cost_model.node_speed
        seconds += (self.cost_model.sync_overhead
                    + self.cost_model.sync_per_core * cores)
        return seconds

    def init_seconds(self) -> float:
        """Duration of the single-threaded initialization phase.

        Covers the init schedule itself plus the first (still
        single-threaded, interpreter-speed) pass that fills the blob's
        internal buffers before multithreaded steady state begins.
        """
        work = (self.runtime.init_work
                + self.cost_model.init_iterations * self.runtime.steady_work)
        return (work * self.cost_model.init_slowdown
                / self.cost_model.node_speed)

    def drain_seconds(self, firings: int) -> float:
        """Interpreter time for ``firings`` drain firings."""
        return (self.runtime.drain_work(firings)
                * self.cost_model.interp_slowdown
                / self.cost_model.node_speed)

    def compile_seconds(self) -> float:
        return self.cost_model.compile_seconds(
            len(self.spec.workers), self.runtime.steady_firings_total)

    def phase1_seconds(self) -> float:
        return self.cost_model.phase1_seconds(
            len(self.spec.workers), self.runtime.steady_firings_total)

    def phase2_seconds(self) -> float:
        return self.cost_model.phase2_seconds(
            len(self.spec.workers), self.runtime.steady_firings_total)


@dataclass
class CompiledProgram:
    """All blobs of one configuration, ready for cluster execution."""

    graph: StreamGraph
    configuration: Configuration
    schedule: Schedule
    blobs: List[CompiledBlob] = field(default_factory=list)
    installed_state: Optional[ProgramState] = None

    def blob(self, blob_id: int) -> CompiledBlob:
        return self.blobs[blob_id]

    def blob_of_worker(self, worker_id: int) -> CompiledBlob:
        mapping = self.configuration.worker_to_blob()
        return self.blobs[mapping[worker_id]]

    def consumers(self, blob_id: int) -> Dict[int, int]:
        """Map each boundary-out edge index of ``blob_id`` to the
        consuming blob id."""
        mapping = self.configuration.worker_to_blob()
        result: Dict[int, int] = {}
        for edge in self.blobs[blob_id].runtime.boundary_out:
            result[edge.index] = mapping[edge.dst]
        return result

    @property
    def head_blob(self) -> CompiledBlob:
        for blob in self.blobs:
            if blob.runtime.has_head:
                return blob
        raise RuntimeError("no blob holds the graph head")

    @property
    def tail_blob(self) -> CompiledBlob:
        for blob in self.blobs:
            if blob.runtime.has_tail:
                return blob
        raise RuntimeError("no blob holds the graph tail")

    @property
    def total_compile_seconds(self) -> float:
        """Wall-clock compile time: blobs compile in parallel per node,
        serially within a node."""
        per_node: Dict[int, float] = {}
        for blob in self.blobs:
            per_node[blob.spec.node_id] = (
                per_node.get(blob.spec.node_id, 0.0) + blob.compile_seconds()
            )
        return max(per_node.values())

    def fused_edge_count(self) -> int:
        return sum(len(blob.fused_edges) for blob in self.blobs)

    def describe(self) -> str:
        lines = [self.configuration.describe()]
        for blob in self.blobs:
            lines.append(
                "  blob %d: %d fused edges, %d removed workers, "
                "iteration %.4fs @ 1 core" % (
                    blob.spec.blob_id, len(blob.fused_edges),
                    len(blob.removed_workers), blob.iteration_seconds(1.0)))
        return "\n".join(lines)
