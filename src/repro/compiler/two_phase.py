"""Two-phase (concurrent) compilation — paper Section 5.1.

Recompiling a running program has a *state dependency*: optimization
decisions (fusion, splitter/joiner removal) and the initialization
schedule depend on the items buffered in the old instance (paper
Section 3.1, Figure 3).  Gloss splits compilation so the expensive
part runs while the old instance is still executing:

* **Phase 1** (:func:`plan_configuration`, heavy): needs only the
  *meta program state* — buffered-item *counts* per edge.  For a
  snapshot taken at an iteration boundary these counts follow from
  the static rates, so phase 1 can run before the state exists.  It
  produces a :class:`CompilationPlan` of *pseudo-blobs*: compiled but
  not runnable.
* **Phase 2** (:func:`absorb_state`, light): injects the actual
  program state — worker states and buffered item values — producing
  runnable *state-absorbed* blobs.

:func:`compile_configuration` performs both phases at once (used for
cold starts and for stop-and-copy, which by construction has the full
state before compilation begins).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional

from repro.compiler.cache import CompilationCache, get_default_cache
from repro.compiler.compiled import CompiledBlob, CompiledProgram
from repro.compiler.config import BlobSpec, Configuration
from repro.compiler.cost_model import CostModel
from repro.graph.topology import StreamGraph
from repro.runtime.executor import BlobRuntime
from repro.runtime.state import ProgramState
from repro.sched.schedule import Schedule, structural_leftover

__all__ = [
    "CompilationPlan",
    "absorb_state",
    "compile_configuration",
    "plan_configuration",
]


def _boundary_prefill(
    graph: StreamGraph,
    configuration: Configuration,
    cost_model: CostModel,
) -> Dict[int, int]:
    """Extra initialization buffering on blob boundary edges.

    Each inter-blob edge is prefilled with ``pipeline_depth``
    iterations of production so blobs execute decoupled (software
    pipelining across nodes).  This is the buffered data whose
    flushing dominates stop-and-copy's draining time and whose refill
    dominates the new instance's initialization time (Figure 4).
    """
    depth = cost_model.pipeline_depth
    if depth <= 0:
        return {}
    from repro.sched.balance import repetition_vector
    repetitions = repetition_vector(graph)
    mapping = configuration.worker_to_blob()
    prefill: Dict[int, int] = {}
    for edge in graph.edges:
        if mapping[edge.src] != mapping[edge.dst]:
            src = graph.worker(edge.src)
            per_iteration = (src.push_rates[edge.src_port]
                             * repetitions[edge.src]
                             * configuration.multiplier)
            prefill[edge.index] = per_iteration * depth
    return prefill


def _decide_fusion(
    graph: StreamGraph,
    spec: BlobSpec,
    configuration: Configuration,
    edge_counts: Dict[int, int],
) -> FrozenSet[int]:
    """Choose which intra-blob edges to fuse.

    An edge can be fused only when it will hold no data beyond its
    structural (peeking) leftover when the new instance starts — the
    Figure 3 constraint: "the filters cannot be fused if such data
    exist".  Clean boundary snapshots (AST) satisfy this everywhere;
    ragged drained states (stop-and-copy) may not, costing performance.
    """
    if not configuration.fusion:
        return frozenset()
    leftovers = structural_leftover(graph)
    fused = set()
    for edge in graph.edges:
        if edge.src in spec.workers and edge.dst in spec.workers:
            if edge_counts.get(edge.index, 0) <= leftovers[edge.index]:
                fused.add(edge.index)
    return frozenset(fused)


def _decide_removal(
    graph: StreamGraph,
    spec: BlobSpec,
    configuration: Configuration,
    fused_edges: FrozenSet[int],
) -> FrozenSet[int]:
    """Built-in splitters/joiners whose edges all fused can be removed
    entirely (their data movement is compiled away)."""
    if not configuration.removal:
        return frozenset()
    removed = set()
    for worker_id in spec.workers:
        worker = graph.worker(worker_id)
        if not worker.builtin:
            continue
        edges = graph.in_edges(worker_id) + graph.out_edges(worker_id)
        if edges and all(e.index in fused_edges for e in edges):
            removed.add(worker_id)
    return frozenset(removed)


@dataclass
class CompilationPlan:
    """Phase-1 output: pseudo-blobs awaiting the actual program state.

    All schedules, fusion/removal decisions and blob runtimes exist,
    but no worker state or buffered items have been installed, so the
    blobs are not runnable yet.
    """

    graph: StreamGraph
    configuration: Configuration
    schedule: Schedule
    cost_model: CostModel
    pseudo_blobs: List[CompiledBlob] = field(default_factory=list)
    state_absorbed: bool = False

    @property
    def phase1_seconds_per_node(self) -> Dict[int, float]:
        per_node: Dict[int, float] = {}
        for blob in self.pseudo_blobs:
            per_node[blob.spec.node_id] = (
                per_node.get(blob.spec.node_id, 0.0) + blob.phase1_seconds()
            )
        return per_node

    @property
    def phase2_seconds_per_node(self) -> Dict[int, float]:
        per_node: Dict[int, float] = {}
        for blob in self.pseudo_blobs:
            per_node[blob.spec.node_id] = (
                per_node.get(blob.spec.node_id, 0.0) + blob.phase2_seconds()
            )
        return per_node


def _emit_cache_counters(tracer, cache: Optional[CompilationCache]) -> None:
    """Sample the cache's cumulative hit/miss counters into the trace
    so the phase-timeline report (and Chrome trace) can show them."""
    if tracer is None or cache is None:
        return
    for name, value in cache.counters().items():
        tracer.counter("compile", "cache_" + name, value, track="compile")


def _rehydrate_plan(
    graph: StreamGraph,
    configuration: Configuration,
    cost_model: CostModel,
    entry,
    check_rates: bool,
    rate_only: bool,
) -> CompilationPlan:
    """Rebuild a phase-1 plan from a cache entry against a fresh graph.

    Only channels are freshly allocated; schedules, edge
    classifications and channel-key bindings come straight from the
    entry (worker ids and edge indices are stable across blueprint
    instances, which the fingerprint match guarantees).
    """
    schedule = Schedule(
        graph=graph,
        repetitions=entry.repetitions.copy(),
        init=entry.init.copy(),
        multiplier=configuration.multiplier,
        initial_contents=entry.initial_contents.copy(),
    )
    plan = CompilationPlan(
        graph=graph,
        configuration=configuration,
        schedule=schedule,
        cost_model=cost_model,
    )
    for spec, (fused, removed, layout) in zip(configuration.blobs,
                                              entry.blobs):
        runtime = BlobRuntime.restore(
            graph, schedule, spec.workers, layout,
            check_rates=check_rates, rate_only=rate_only,
        )
        plan.pseudo_blobs.append(CompiledBlob(
            spec=spec,
            runtime=runtime,
            cost_model=cost_model,
            fused_edges=fused,
            removed_workers=removed,
        ))
    return plan


def plan_configuration(
    graph: StreamGraph,
    configuration: Configuration,
    cost_model: CostModel,
    meta_counts: Optional[Dict[int, int]] = None,
    check_rates: bool = True,
    rate_only: bool = False,
    tracer=None,
    cache: Optional[CompilationCache] = None,
) -> CompilationPlan:
    """Phase-1 compilation from the meta program state.

    ``meta_counts`` maps edge index to the number of items that will be
    buffered there when the state arrives (zero for cold starts).
    ``graph`` must be a *fresh* instance from the application's
    blueprint — never the graph the old instance is executing.

    Results are memoized in the compilation cache (``cache`` overrides
    the process default) keyed by the content fingerprint of (graph,
    configuration, meta state): a repeated compilation rehydrates the
    cached plan instead of re-solving it.
    """
    counts = dict(meta_counts or {})
    cache = cache if cache is not None else get_default_cache()
    key = None
    if cache is not None:
        key = cache.plan_key(graph, configuration, counts,
                             cost_model.pipeline_depth)
        entry = cache.lookup_plan(key)
        if entry is not None:
            # A hit proves a structurally identical (graph,
            # configuration) pair already validated and compiled, so
            # re-validation is skipped along with the re-solve.
            plan = _rehydrate_plan(graph, configuration, cost_model,
                                   entry, check_rates, rate_only)
            if tracer is not None:
                tracer.instant(
                    "compile", "plan", track="compile",
                    config=configuration.name or "<anon>",
                    blobs=len(plan.pseudo_blobs),
                    fused_edges=sum(
                        len(b.fused_edges) for b in plan.pseudo_blobs),
                    removed_workers=sum(
                        len(b.removed_workers) for b in plan.pseudo_blobs),
                    meta_edges=len(counts),
                    vector_blobs=sum(
                        1 for b in plan.pseudo_blobs if b.runtime.vectorized),
                    codegen_blobs=sum(
                        1 for b in plan.pseudo_blobs if b.runtime.codegen),
                    cache="hit",
                )
                _emit_cache_counters(tracer, cache)
            return plan
    configuration.validate(graph)
    if cache is not None:
        schedule = cache.schedule_for(
            graph, multiplier=configuration.multiplier,
            initial_contents=counts,
            prefill=_boundary_prefill(graph, configuration, cost_model),
        )
    else:
        from repro.sched.schedule import make_schedule
        schedule = make_schedule(
            graph, multiplier=configuration.multiplier,
            initial_contents=counts,
            prefill=_boundary_prefill(graph, configuration, cost_model),
        )
    plan = CompilationPlan(
        graph=graph,
        configuration=configuration,
        schedule=schedule,
        cost_model=cost_model,
    )
    for spec in configuration.blobs:
        runtime = BlobRuntime(
            graph, schedule, spec.workers,
            check_rates=check_rates, rate_only=rate_only,
        )
        fused = _decide_fusion(graph, spec, configuration, counts)
        removed = _decide_removal(graph, spec, configuration, fused)
        plan.pseudo_blobs.append(CompiledBlob(
            spec=spec,
            runtime=runtime,
            cost_model=cost_model,
            fused_edges=fused,
            removed_workers=removed,
        ))
    if cache is not None:
        cache.store_plan(key, plan)
    if tracer is not None:
        tracer.instant(
            "compile", "plan", track="compile",
            config=configuration.name or "<anon>",
            blobs=len(plan.pseudo_blobs),
            fused_edges=sum(len(b.fused_edges) for b in plan.pseudo_blobs),
            removed_workers=sum(
                len(b.removed_workers) for b in plan.pseudo_blobs),
            meta_edges=len(counts),
            vector_blobs=sum(
                1 for b in plan.pseudo_blobs if b.runtime.vectorized),
            codegen_blobs=sum(
                1 for b in plan.pseudo_blobs if b.runtime.codegen),
            cache="miss" if cache is not None else "off",
        )
        _emit_cache_counters(tracer, cache)
    return plan


def absorb_state(
    plan: CompilationPlan,
    state: Optional[ProgramState] = None,
    tracer=None,
) -> CompiledProgram:
    """Phase-2 compilation: turn pseudo-blobs into state-absorbed blobs.

    Installs worker states and buffered items into each blob's
    channels and finalizes the program.  The buffered-item *counts*
    must match what phase 1 planned against (they do by construction
    for boundary snapshots; a mismatch means the meta state was wrong
    and the schedule would be inconsistent, so it is an error).
    """
    if plan.state_absorbed:
        raise RuntimeError("plan already absorbed state")
    if state is not None:
        expected = plan.schedule.initial_contents
        actual = state.edge_counts()
        for edge_index, count in actual.items():
            if edge_index < 0:
                continue
            if expected.get(edge_index, 0) != count:
                raise ValueError(
                    "meta state mismatch on edge %d: planned %d items, "
                    "received %d" % (
                        edge_index, expected.get(edge_index, 0), count)
                )
        for blob in plan.pseudo_blobs:
            blob.runtime.install_state(state)
    if tracer is not None:
        tracer.instant(
            "compile", "absorb", track="compile",
            config=plan.configuration.name or "<anon>",
            blobs=len(plan.pseudo_blobs),
            state_bytes=0 if state is None else state.size_bytes(),
        )
    plan.state_absorbed = True
    return CompiledProgram(
        graph=plan.graph,
        configuration=plan.configuration,
        schedule=plan.schedule,
        blobs=list(plan.pseudo_blobs),
        installed_state=state,
    )


def compile_configuration(
    graph: StreamGraph,
    configuration: Configuration,
    cost_model: CostModel,
    state: Optional[ProgramState] = None,
    check_rates: bool = True,
    rate_only: bool = False,
    tracer=None,
    cache: Optional[CompilationCache] = None,
) -> CompiledProgram:
    """Single-phase compilation (cold start, or stop-and-copy which
    holds the complete state before compiling)."""
    meta_counts = state.edge_counts() if state is not None else None
    if meta_counts is not None:
        meta_counts = {k: v for k, v in meta_counts.items() if k >= 0}
    plan = plan_configuration(
        graph, configuration, cost_model, meta_counts,
        check_rates=check_rates, rate_only=rate_only, tracer=tracer,
        cache=cache,
    )
    return absorb_state(plan, state, tracer=tracer)
