"""Functional execution of stream graphs.

Two execution engines share the firing machinery:

* :class:`GraphInterpreter` — a fine-grained, single-"thread"
  reference interpreter over a whole graph.  It defines canonical
  semantics (the output-equivalence oracle in the tests) and is the
  engine blobs fall back to while *draining* (paper Section 4.1).
* :class:`BlobRuntime` — coarse-grained execution of one blob: a full
  init or steady-state schedule per call, with boundary channels fed
  by the (simulated) network.  This mirrors StreamJIT's compiled blobs
  whose threads synchronize only at a per-iteration barrier.

Program state (worker state + buffered items) is captured into
:class:`ProgramState`, the unit that asynchronous state transfer moves
and that two-phase compilation absorbs into new blobs.
"""

from repro.runtime.channels import (
    ArrayChannel,
    Channel,
    GRAPH_INPUT,
    GRAPH_OUTPUT,
    HAVE_NUMPY,
    RateViolationError,
    SharedArrayChannel,
    SharedChannel,
    as_shared,
)
from repro.runtime.state import ProgramState, estimate_bytes
from repro.runtime.fastpath import (
    FusedPlan,
    select_codegen,
    select_vectorized,
    vector_capable,
)
from repro.runtime.codegen import CodegenKernel, CodegenUnsupported
from repro.runtime.interpreter import GraphInterpreter
from repro.runtime.executor import BlobRuntime
from repro.runtime.parallel import (
    ParallelBlobExecutor,
    parallel_enabled,
    parallel_workers,
)

__all__ = [
    "ArrayChannel",
    "BlobRuntime",
    "Channel",
    "CodegenKernel",
    "CodegenUnsupported",
    "FusedPlan",
    "GRAPH_INPUT",
    "GRAPH_OUTPUT",
    "GraphInterpreter",
    "HAVE_NUMPY",
    "ParallelBlobExecutor",
    "ProgramState",
    "RateViolationError",
    "SharedArrayChannel",
    "SharedChannel",
    "as_shared",
    "estimate_bytes",
    "parallel_enabled",
    "parallel_workers",
    "select_codegen",
    "select_vectorized",
    "vector_capable",
]
