"""Functional execution of stream graphs.

Two execution engines share the firing machinery:

* :class:`GraphInterpreter` — a fine-grained, single-"thread"
  reference interpreter over a whole graph.  It defines canonical
  semantics (the output-equivalence oracle in the tests) and is the
  engine blobs fall back to while *draining* (paper Section 4.1).
* :class:`BlobRuntime` — coarse-grained execution of one blob: a full
  init or steady-state schedule per call, with boundary channels fed
  by the (simulated) network.  This mirrors StreamJIT's compiled blobs
  whose threads synchronize only at a per-iteration barrier.

Program state (worker state + buffered items) is captured into
:class:`ProgramState`, the unit that asynchronous state transfer moves
and that two-phase compilation absorbs into new blobs.
"""

from repro.runtime.channels import (
    ArrayChannel,
    Channel,
    ChannelFullError,
    GRAPH_INPUT,
    GRAPH_OUTPUT,
    HAVE_NUMPY,
    RateViolationError,
    SharedArrayChannel,
    SharedChannel,
    ShmArrayChannel,
    as_shared,
    shm_open_segments,
)
from repro.runtime.state import ProgramState, estimate_bytes
from repro.runtime.fastpath import (
    FusedPlan,
    select_codegen,
    select_vectorized,
    vector_capable,
)
from repro.runtime.codegen import (
    CodegenKernel,
    CodegenUnsupported,
    cython_available,
)
from repro.runtime.interpreter import GraphInterpreter
from repro.runtime.executor import BlobRuntime
from repro.runtime.parallel import (
    ParallelBlobExecutor,
    parallel_backend,
    parallel_enabled,
    parallel_workers,
)
from repro.runtime.procexec import (
    ProcessBlobExecutor,
    process_executor_available,
)

__all__ = [
    "ArrayChannel",
    "BlobRuntime",
    "Channel",
    "ChannelFullError",
    "CodegenKernel",
    "CodegenUnsupported",
    "FusedPlan",
    "GRAPH_INPUT",
    "GRAPH_OUTPUT",
    "GraphInterpreter",
    "HAVE_NUMPY",
    "ParallelBlobExecutor",
    "ProcessBlobExecutor",
    "ProgramState",
    "RateViolationError",
    "SharedArrayChannel",
    "SharedChannel",
    "ShmArrayChannel",
    "as_shared",
    "cython_available",
    "estimate_bytes",
    "parallel_backend",
    "parallel_enabled",
    "parallel_workers",
    "process_executor_available",
    "select_codegen",
    "select_vectorized",
    "shm_open_segments",
    "vector_capable",
]
