"""Coarse-grained blob execution.

A *blob* is a set of connected workers compiled and executed together
(paper Section 2, Figure 2).  A :class:`BlobRuntime` owns the channels
for its internal edges and for its boundary *input* edges (data
arrives from the network); boundary *output* items are staged per edge
for the cluster layer to ship downstream.

Execution is coarse: one call runs a whole init or steady-state
schedule, mirroring StreamJIT's compiled blobs whose threads
synchronize only at a per-iteration barrier.  The barrier is where
asynchronous state transfer captures state (:meth:`capture_cut`) and
where item counting happens — one addition per schedule execution, no
per-item labeling.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Optional, Set, Tuple

from repro.graph.keyed import KeyedStateWorker
from repro.graph.topology import Edge, StreamGraph
from repro.runtime.channels import (
    GRAPH_INPUT,
    GRAPH_OUTPUT,
    ArrayChannel,
    Channel,
)
from repro.runtime.fastpath import (
    FusedPlan,
    select_codegen,
    select_vectorized,
    vector_capable,
)
from repro.runtime.interpreter import fire_worker
from repro.runtime.state import ProgramState
from repro.sched.schedule import Schedule, structural_leftover

__all__ = ["BlobRuntime"]


class BlobRuntime:
    """Executable state of one blob of a graph instance."""

    def __init__(
        self,
        graph: StreamGraph,
        schedule: Schedule,
        worker_ids: Iterable[int],
        check_rates: bool = True,
        rate_only: bool = False,
    ):
        self.graph = graph
        self.schedule = schedule
        self.worker_ids: Set[int] = set(worker_ids)
        self.check_rates = check_rates
        self.rate_only = rate_only
        # Backend selection is per blob: a blob vectorizes exactly when
        # all of its own workers store plain numbers (independent of
        # its neighbors) and its share of the steady schedule offers
        # batches large enough to amortize the batch-kernel call
        # overhead.
        ordered_ids = sorted(self.worker_ids)
        blob_workers = [graph.worker(w) for w in ordered_ids]
        self.vector_capable = vector_capable(blob_workers)
        mean_firings = (sum(schedule.repetitions.get(w, 0)
                            for w in ordered_ids)
                        / max(len(ordered_ids), 1))
        self.vectorized = select_vectorized(blob_workers, check_rates,
                                            rate_only,
                                            mean_firings=mean_firings)
        self.codegen = select_codegen(self.vectorized)
        self._leftovers = structural_leftover(graph)

        self.internal_edges: List[Edge] = []
        self.boundary_in: List[Edge] = []
        self.boundary_out: List[Edge] = []
        for edge in graph.edges:
            src_in = edge.src in self.worker_ids
            dst_in = edge.dst in self.worker_ids
            if src_in and dst_in:
                self.internal_edges.append(edge)
            elif dst_in:
                self.boundary_in.append(edge)
            elif src_in:
                self.boundary_out.append(edge)

        self.has_head = graph.head.worker_id in self.worker_ids
        self.has_tail = graph.tail.worker_id in self.worker_ids

        # Internal and boundary-input edges carry the blob's numeric
        # stream and become contiguous buffers under the vectorized
        # backend; the graph-input pseudo-channel and staging buffers
        # stay deques (arbitrary external objects, list handoff).
        edge_channel = ArrayChannel if self.vectorized else Channel
        self.channels: Dict[int, Channel] = {}
        for edge in self.internal_edges + self.boundary_in:
            self.channels[edge.index] = edge_channel()
        if self.has_head:
            self.channels[GRAPH_INPUT] = Channel()
        self.staging: Dict[int, List[Any]] = {
            edge.index: [] for edge in self.boundary_out
        }
        if self.has_tail:
            self.staging[GRAPH_OUTPUT] = []
        # Staging channels wrap the staging lists so firing code is uniform.
        self._staging_channels: Dict[int, Channel] = {
            key: Channel() for key in self.staging
        }

        # Per-worker port channel lists, topological order restricted to
        # the blob, and firing counts.
        self._topo = [w for w in graph.topological_order() if w in self.worker_ids]
        self._in_channels: Dict[int, List[Channel]] = {}
        self._out_channels: Dict[int, List[Channel]] = {}
        for worker_id in self._topo:
            worker = graph.worker(worker_id)
            ins: List[Channel] = []
            for port in range(worker.n_inputs):
                edge = graph.in_edge(worker_id, port)
                key = edge.index if edge is not None else GRAPH_INPUT
                ins.append(self.channels[key])
            outs: List[Channel] = []
            for port in range(worker.n_outputs):
                edge = graph.out_edge(worker_id, port)
                if edge is None:
                    outs.append(self._staging_channels[GRAPH_OUTPUT])
                elif edge.index in self.channels:
                    outs.append(self.channels[edge.index])
                else:
                    outs.append(self._staging_channels[edge.index])
            self._in_channels[worker_id] = ins
            self._out_channels[worker_id] = outs

        self.initialized = False
        self.iteration = 0
        self.consumed_input = 0   # items popped from GRAPH_INPUT (head blob)
        self.emitted_output = 0   # items staged to GRAPH_OUTPUT (tail blob)
        self._fused: Optional[FusedPlan] = None

        # Precomputed per-iteration boundary flows.
        self._steady_in_need: Dict[int, int] = {}
        self._steady_ready_len: Dict[int, int] = {}
        self._init_in_need: Dict[int, int] = {}
        self._init_ready_len: Dict[int, int] = {}
        for edge in self.boundary_in:
            dst = graph.worker(edge.dst)
            pop = dst.pop_rates[edge.dst_port]
            leftover = self._leftovers[edge.index]
            steady = pop * schedule.steady_firings(edge.dst)
            init = pop * schedule.init[edge.dst]
            self._steady_in_need[edge.index] = steady
            self._steady_ready_len[edge.index] = steady + leftover
            self._init_in_need[edge.index] = init
            self._init_ready_len[edge.index] = (init + leftover) if init else 0
        if self.has_head:
            head = graph.head
            pop = head.pop_rates[0]
            leftover = max(head.peek_rates[0] - head.pop_rates[0], 0)
            steady = pop * schedule.steady_firings(head.worker_id)
            init = pop * schedule.init[head.worker_id]
            self._steady_in_need[GRAPH_INPUT] = steady
            self._steady_ready_len[GRAPH_INPUT] = steady + leftover
            self._init_in_need[GRAPH_INPUT] = init
            self._init_ready_len[GRAPH_INPUT] = (init + leftover) if init else 0

    @classmethod
    def restore(
        cls,
        graph: StreamGraph,
        schedule: Schedule,
        worker_ids: Iterable[int],
        layout,
        check_rates: bool = True,
        rate_only: bool = False,
    ) -> "BlobRuntime":
        """Rebuild a runtime from a cached structural layout.

        ``layout`` is the compilation cache's record of everything
        ``__init__`` derives from (graph, schedule, worker set): edge
        classification, restricted topological order, channel-key
        bindings and per-iteration boundary flows.  Edge indices and
        worker ids are stable across blueprint instances, so the only
        fresh allocations are the (empty) channels themselves — this
        is what makes a warm phase-1 compile cheap.
        """
        self = cls.__new__(cls)
        self.graph = graph
        self.schedule = schedule
        self.worker_ids = set(worker_ids)
        self.check_rates = check_rates
        self.rate_only = rate_only
        # The layout records structural vector capability (it is part
        # of the cache fingerprint via the worker signatures); the
        # actual mode still depends on this run's execution flags.
        self.vector_capable = layout.vector_capable
        blob_workers = [graph.worker(w) for w in layout.topo]
        mean_firings = (sum(schedule.repetitions.get(w, 0)
                            for w in layout.topo)
                        / max(len(layout.topo), 1))
        self.vectorized = select_vectorized(blob_workers, check_rates,
                                            rate_only,
                                            mean_firings=mean_firings)
        self.codegen = select_codegen(self.vectorized)
        self._leftovers = layout.leftovers.copy()
        edges = graph.edges
        self.internal_edges = [edges[i] for i in layout.internal_edges]
        self.boundary_in = [edges[i] for i in layout.boundary_in]
        self.boundary_out = [edges[i] for i in layout.boundary_out]
        self.has_head = layout.has_head
        self.has_tail = layout.has_tail
        edge_channel = ArrayChannel if self.vectorized else Channel
        self.channels = {
            index: edge_channel()
            for index in layout.internal_edges + layout.boundary_in
        }
        if self.has_head:
            self.channels[GRAPH_INPUT] = Channel()
        self.staging = {index: [] for index in layout.boundary_out}
        if self.has_tail:
            self.staging[GRAPH_OUTPUT] = []
        self._staging_channels = {key: Channel() for key in self.staging}
        self._topo = list(layout.topo)
        self._in_channels = {}
        self._out_channels = {}
        for worker_id, in_keys, out_keys in zip(
                layout.topo, layout.in_keys, layout.out_keys):
            self._in_channels[worker_id] = [
                self.channels[key] for key in in_keys
            ]
            self._out_channels[worker_id] = [
                self._staging_channels[key] if staged else self.channels[key]
                for staged, key in out_keys
            ]
        self.initialized = False
        self.iteration = 0
        self.consumed_input = 0
        self.emitted_output = 0
        self._fused = None
        self._steady_in_need = layout.steady_in_need.copy()
        self._steady_ready_len = layout.steady_ready_len.copy()
        self._init_in_need = layout.init_in_need.copy()
        self._init_ready_len = layout.init_ready_len.copy()
        return self

    # -- identity / accounting --------------------------------------------------

    @property
    def workers(self):
        return [self.graph.worker(w) for w in self._topo]

    @property
    def is_stateful(self) -> bool:
        return any(w.is_stateful for w in self.workers)

    @property
    def steady_work(self) -> float:
        return sum(
            self.graph.worker(w).work_estimate * self.schedule.steady_firings(w)
            for w in self._topo
        )

    @property
    def serial_work(self) -> float:
        """Work that cannot be data-parallelized (stateful workers)."""
        return sum(
            self.graph.worker(w).work_estimate * self.schedule.steady_firings(w)
            for w in self._topo
            if self.graph.worker(w).is_stateful
        )

    @property
    def parallel_work(self) -> float:
        return self.steady_work - self.serial_work

    @property
    def init_work(self) -> float:
        return sum(
            self.graph.worker(w).work_estimate * self.schedule.init[w]
            for w in self._topo
        )

    @property
    def init_firings(self) -> int:
        return sum(self.schedule.init[w] for w in self._topo)

    @property
    def steady_firings_total(self) -> int:
        return sum(self.schedule.steady_firings(w) for w in self._topo)

    def input_keys(self) -> List[int]:
        keys = [edge.index for edge in self.boundary_in]
        if self.has_head:
            keys.append(GRAPH_INPUT)
        return keys

    def output_keys(self) -> List[int]:
        keys = [edge.index for edge in self.boundary_out]
        if self.has_tail:
            keys.append(GRAPH_OUTPUT)
        return keys

    def steady_input_need(self, key: int) -> int:
        return self._steady_in_need[key]

    def init_input_need(self, key: int) -> int:
        return self._init_in_need[key]

    @property
    def codegen_active(self) -> bool:
        """True once steady iterations run through a bound generated
        kernel (the plan exists, kept codegen mode, and has bound)."""
        plan = self._fused
        return bool(plan is not None and plan.codegen
                    and plan._codegen is not None
                    and plan._codegen._kernel is not None)

    @property
    def codegen_fallback_steps(self) -> int:
        """Scalar-fallback steps inside this blob's generated kernel."""
        plan = self._fused
        if plan is None or plan._codegen is None:
            return 0
        return plan._codegen.fallback_steps

    # -- channel rebinding ---------------------------------------------------

    def replace_channel(self, key: int, channel: Channel) -> None:
        """Swap the physical channel behind ``key`` before execution.

        Used by the parallel executors to substitute thread-safe
        shared channels on boundary inputs (and the head blob's graph
        input).  The replacement must already carry the old channel's
        contents and counters (see
        :func:`repro.runtime.channels.as_shared`); swapping after
        execution has started would lose counter history, so that is
        refused outright.
        """
        if self.initialized or self.iteration:
            raise RuntimeError(
                "cannot replace a channel after execution started")
        old = self.channels[key]
        if old.total_popped:
            raise RuntimeError(
                "cannot replace a channel that has been consumed from")
        self.channels[key] = channel
        for bound in self._in_channels.values():
            for i, existing in enumerate(bound):
                if existing is old:
                    bound[i] = channel
        for bound in self._out_channels.values():
            for i, existing in enumerate(bound):
                if existing is old:
                    bound[i] = channel
        self._fused = None

    # -- data delivery -------------------------------------------------------------

    def deliver(self, key: int, items: List[Any]) -> None:
        """Accept items arriving on a boundary input edge."""
        self.channels[key].push_many(items)

    def ready_for_init(self) -> bool:
        return all(
            len(self.channels[key]) >= need
            for key, need in self._init_ready_len.items()
        )

    def ready_for_steady(self) -> bool:
        return all(
            len(self.channels[key]) >= need
            for key, need in self._steady_ready_len.items()
        )

    def init_shortfall(self) -> Dict[int, int]:
        """Items still missing per input edge before init can run."""
        return {
            key: max(need - len(self.channels[key]), 0)
            for key, need in self._init_ready_len.items()
        }

    def steady_shortfall(self) -> Dict[int, int]:
        return {
            key: max(need - len(self.channels[key]), 0)
            for key, need in self._steady_ready_len.items()
        }

    # -- execution ------------------------------------------------------------------

    def _collect_staging(self) -> Dict[int, List[Any]]:
        out: Dict[int, List[Any]] = {}
        for key, channel in self._staging_channels.items():
            if len(channel.items):
                items = list(channel.items)
                channel.items.clear()
                channel.total_popped += len(items)
                out[key] = items
                if key == GRAPH_OUTPUT:
                    self.emitted_output += len(items)
        return out

    def _run_firings(self, order: List[Tuple[int, int]]) -> None:
        before = (
            self.channels[GRAPH_INPUT].total_popped if self.has_head else 0
        )
        for worker_id, firings in order:
            worker = self.graph.worker(worker_id)
            ins = self._in_channels[worker_id]
            outs = self._out_channels[worker_id]
            for _ in range(firings):
                fire_worker(worker, ins, outs,
                            check_rates=self.check_rates,
                            rate_only=self.rate_only)
        if self.has_head:
            self.consumed_input += (
                self.channels[GRAPH_INPUT].total_popped - before
            )

    def run_init(self) -> Dict[int, List[Any]]:
        """Execute this blob's share of the initialization schedule."""
        if self.initialized:
            raise RuntimeError("blob already initialized")
        order = [(w, self.schedule.init[w]) for w in self._topo
                 if self.schedule.init[w] > 0]
        self._run_firings(order)
        self.initialized = True
        return self._collect_staging()

    def run_steady(self) -> Dict[int, List[Any]]:
        """Execute one steady-state iteration; return staged outputs.

        Routing: ``rate_only`` keeps its O(boundary) shortcut; the
        functional unchecked mode takes the fused fast path; only
        ``check_rates`` keeps canonical per-firing execution with
        fresh port views.
        """
        if not self.initialized:
            raise RuntimeError("blob not initialized")
        if self.rate_only:
            staged = self._run_steady_rate_only()
        elif not self.check_rates:
            staged = self._run_steady_fused()
        else:
            order = [(w, self.schedule.steady_firings(w)) for w in self._topo]
            self._run_firings(order)
            staged = self._collect_staging()
        self.iteration += 1
        return staged

    def _run_steady_fused(self) -> Dict[int, List[Any]]:
        if self._fused is None:
            order = [(w, self.schedule.steady_firings(w))
                     for w in self._topo]
            self._fused = FusedPlan(
                self.graph, order, self._in_channels, self._out_channels,
                rate_only=False,
                vectorized=self.vectorized,
                codegen=self.codegen,
            )
        before = (
            self.channels[GRAPH_INPUT].total_popped if self.has_head else 0
        )
        self._fused.run(1)
        if self.has_head:
            self.consumed_input += (
                self.channels[GRAPH_INPUT].total_popped - before
            )
        return self._collect_staging()

    def _run_steady_rate_only(self) -> Dict[int, List[Any]]:
        """O(boundary-items) steady iteration for timing benchmarks.

        Internal channels return to their start-of-iteration occupancy
        after a full topological schedule, so only boundary flows need
        to move.
        """
        for key, need in self._steady_in_need.items():
            self.channels[key].pop_many(need)
            if key == GRAPH_INPUT:
                self.consumed_input += need
        staged: Dict[int, List[Any]] = {}
        for edge in self.boundary_out:
            src = self.graph.worker(edge.src)
            count = (src.push_rates[edge.src_port]
                     * self.schedule.steady_firings(edge.src))
            staged[edge.index] = [None] * count
        if self.has_tail:
            tail = self.graph.tail
            count = (tail.push_rates[0]
                     * self.schedule.steady_firings(tail.worker_id))
            staged[GRAPH_OUTPUT] = [None] * count
            self.emitted_output += count
        return staged

    # -- draining ----------------------------------------------------------------

    def can_fire(self, worker_id: int) -> bool:
        worker = self.graph.worker(worker_id)
        for channel, peek in zip(self._in_channels[worker_id],
                                 worker.peek_rates):
            if len(channel) < peek:
                return False
        return True

    def drain_pass(self) -> Tuple[int, Dict[int, List[Any]]]:
        """One opportunistic pass over the blob's workers.

        Returns (firing count, staged boundary outputs).  Draining is
        what the interpreter does after the compiled blob stops; the
        cluster layer charges interpreter-speed time for these firings.
        """
        firings = 0
        for worker_id in self._topo:
            worker = self.graph.worker(worker_id)
            ins = self._in_channels[worker_id]
            outs = self._out_channels[worker_id]
            while self.can_fire(worker_id):
                fire_worker(worker, ins, outs,
                            check_rates=self.check_rates,
                            rate_only=self.rate_only)
                firings += 1
        if self.has_head:
            # Opportunistic firing may consume graph input delivered but
            # not yet counted.
            self.consumed_input = self.channels[GRAPH_INPUT].total_popped
        return firings, self._collect_staging()

    def drain_work(self, firings: int) -> float:
        """Work-units estimate for ``firings`` drain firings."""
        if not self._topo:
            return 0.0
        average = (sum(self.graph.worker(w).work_estimate for w in self._topo)
                   / len(self._topo))
        return firings * average

    # -- state capture / installation ------------------------------------------------

    def capture_state(self, cut_lengths: Optional[Dict[int, int]] = None,
                      residual: bool = False) -> ProgramState:
        """Snapshot this blob's share of the program state.

        ``cut_lengths`` (edge index -> item count) restricts boundary
        input channels to the deterministic cut used by asynchronous
        state transfer: the first ``P(k) - V(k)`` items, where both
        counts follow from the static rates.  Without it (stop-and-copy
        after draining) full channel contents are captured.  The graph
        input channel is never captured — unconsumed input is re-sent
        by the duplicator.

        With ``residual=True`` (the fluid strategy's final cut), keyed
        workers with an active migration session report only their
        delta — dirty/new key overrides plus invalidated keys — in
        place of the full keyed table; everything else is captured as
        usual.  The controller reassembles the full table from the
        previously shipped shards (:func:`repro.graph.keyed
        .assemble_keyed_state`).
        """
        state = ProgramState(
            consumed=self.consumed_input, emitted=self.emitted_output
        )
        for worker_id in self._topo:
            worker = self.graph.worker(worker_id)
            if not worker.is_stateful:
                continue
            if (residual and isinstance(worker, KeyedStateWorker)
                    and worker.key_migration is not None):
                state.worker_states[worker_id] = worker.residual_state()
            else:
                state.worker_states[worker_id] = worker.get_state()
        for edge in self.internal_edges:
            channel = self.channels[edge.index]
            if len(channel):
                state.edge_contents[edge.index] = channel.snapshot()
        for edge in self.boundary_in:
            channel = self.channels[edge.index]
            if cut_lengths is not None:
                count = cut_lengths.get(edge.index, len(channel))
                items = channel.snapshot_prefix(count)
            else:
                items = channel.snapshot()
            if items:
                state.edge_contents[edge.index] = items
        return state

    def install_state(self, state: ProgramState) -> None:
        """Absorb transferred program state (phase-2 of compilation)."""
        if self.initialized or self.iteration:
            raise RuntimeError("state must be installed before execution")
        for worker_id, worker_state in state.worker_states.items():
            if worker_id in self.worker_ids:
                self.graph.worker(worker_id).set_state(worker_state)
        for edge_index, items in state.edge_contents.items():
            if edge_index == GRAPH_INPUT:
                continue
            if edge_index in self.channels and edge_index != GRAPH_INPUT:
                if any(e.index == edge_index
                       for e in self.internal_edges + self.boundary_in):
                    self.channels[edge_index].push_many(items)
