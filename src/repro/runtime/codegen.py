"""Per-blob kernel generation: the fast path compiled all the way down.

The vectorized backend (:mod:`repro.runtime.fastpath`) executes a
steady iteration as a Python-level loop over ``_VectorStep`` records:
every step re-reads its spec rows, re-creates channel views through
``peek_block``/``pop_block``/``push_block`` and re-dispatches on
array-ness before finally entering the batch kernel.  For schedules
with small batches that dispatch overhead dominates — the NumPy work
per call is tiny, the bookkeeping around it is not.

:class:`CodegenKernel` removes the bookkeeping by *generating source*:
one Python function per blob that executes the entire steady iteration
as straight-line code.  The generator symbolically executes the step
list once, resolving every channel operation to a constant offset into
a preallocated buffer, and emits a bind factory::

    def _bind(_ch, _batches, _scalars, _np):
        _c0 = _ch[0]
        _b0 = _c0._buffer            # pinned internal channel
        _v1_0 = _b0[0:24]            # prebound input view, constant offsets
        _v1_0.flags.writeable = False
        _o1_0 = _b0[24:48]           # prebound output view
        _w1 = _batches[1]
        def _kernel():
            _w1([_v1_0], [_o1_0], 8)
            ...
            _b0[0:16] = _b0[24:40]   # carry leftover to the front
            _c0.total_pushed += 24   # counter epilogue, one add per channel
            _c0.total_popped += 24
        return _kernel

Channel treatment is decided per channel:

* **pinned** — an internal :class:`ArrayChannel` produced *and*
  consumed by batch steps only.  Its buffer is reallocated once to
  exactly ``occupancy + per_iteration_flow`` items, the live region
  pinned at the front, and every view becomes a constant slice.  A
  steady iteration returns the channel to its starting occupancy, so a
  constant copy moves the leftover back to offset 0 and the lifetime
  counters advance by a single constant add each.
* **dynamic** — an :class:`ArrayChannel` adjacent to a scalar-fallback
  step (or a boundary input fed between iterations): block operations
  stay dynamic calls, exactly as ``_run_vector_steps`` performs them.
* **deque bridges** — the graph-input deque and staging deques keep
  the list-based bridging of the vectorized path (temporary arrays,
  ``push_many`` after the kernel call).

Workers without a batch kernel run as prebound scalar closures over
the real channels (``_scalars``), byte-identical to the per-firing
fallback inside ``_run_vector_steps``.

Because the pinned layout bakes bind-time occupancies into the source,
the kernel guards itself: before each call it verifies every pinned
channel still points at the pinned buffer with the pinned bounds, and
rebinds (cheaply, through the compilation cache) when anything outside
the kernel touched a channel — drains, state installation, external
pushes.  After *every* kernel call all channels are fully consistent
(contents, head/tail, counters), so capture/restore, AST cuts and
draining need no special cases.

Generated source is content-fingerprinted (SHA-256) into the
:class:`~repro.compiler.cache.CompilationCache` kernels table: blobs
whose plans emit identical source share one compiled code object.

``REPRO_CODEGEN_BACKEND=numba`` JITs the generated function in object
mode when Numba is importable; ``REPRO_CODEGEN_BACKEND=cython``
compiles the same generated source shape to a C extension (Cython +
setuptools + a C compiler required) so the straight-line kernel body
runs without bytecode dispatch, with built artifacts cached on disk by
content fingerprint.  Anything unavailable falls back to the
generated-Python backend silently (``CodegenKernel.backend`` records
what actually ran).
"""

from __future__ import annotations

import hashlib
import importlib.util
import os
from typing import Any, Callable, Dict, List, Optional, Tuple

try:
    import numpy as _np
except ImportError:  # pragma: no cover - the toolchain bakes numpy in
    _np = None

__all__ = [
    "CodegenKernel",
    "CodegenUnsupported",
    "codegen_backend",
    "cython_available",
    "numba_available",
]


class CodegenUnsupported(Exception):
    """The plan's shape cannot be compiled to a pinned-offset kernel.

    Raising this is never an error condition for execution: the fused
    plan catches it and keeps running the ``_VectorStep`` path.
    """


def numba_available() -> bool:
    """Whether the optional Numba backend could be imported at all."""
    return importlib.util.find_spec("numba") is not None


def cython_available() -> bool:
    """Whether generated kernels can be compiled to C extensions.

    Requires Cython, setuptools, and a C compiler on ``PATH``.  None of
    them are baked into the toolchain, so this is genuinely optional:
    absent any piece, the cython backend silently degrades to the
    generated-Python path.
    """
    if importlib.util.find_spec("Cython") is None:
        return False
    if importlib.util.find_spec("setuptools") is None:
        return False
    import shutil
    return any(shutil.which(cc) for cc in ("cc", "gcc", "clang"))


def codegen_backend() -> str:
    """Backend selection via ``REPRO_CODEGEN_BACKEND``: ``numba`` or
    ``cython`` when requested *and* the toolchain is present, otherwise
    ``python``."""
    requested = os.environ.get("REPRO_CODEGEN_BACKEND", "python")
    if requested == "numba" and numba_available():
        return "numba"
    if requested == "cython" and cython_available():
        return "cython"
    return "python"


def _build_cython_module(fingerprint: str, source: str):
    """Compile generated-kernel source to a C extension and import it.

    The module name embeds the content fingerprint, and built artifacts
    live under ``$TMPDIR/repro_cython/<name>/`` — a rebuild of the same
    source (even from another process) finds the existing shared object
    and skips straight to the import.  The generated source is plain
    Python, which is also valid Cython; compiling it removes the
    bytecode-dispatch overhead of the straight-line kernel body (NumPy
    kernel calls still release the GIL exactly as before).
    """
    import importlib.util as _ilu
    import tempfile
    from pathlib import Path

    name = "_repro_kernel_%s" % fingerprint[:16]
    workdir = Path(tempfile.gettempdir()) / "repro_cython" / name
    workdir.mkdir(parents=True, exist_ok=True)

    def find_built():
        return sorted(workdir.glob(name + ".*.so")) \
            or sorted(workdir.glob(name + ".so")) \
            or sorted(workdir.glob(name + ".*.pyd"))

    built = find_built()
    if not built:
        from Cython.Build import cythonize
        from setuptools import Extension
        from setuptools.dist import Distribution

        pyx = workdir / (name + ".pyx")
        pyx.write_text(source)
        extensions = cythonize(
            [Extension(name, [str(pyx)])],
            quiet=True,
            language_level=3,
            build_dir=str(workdir / "build"),
        )
        dist = Distribution({"name": name, "ext_modules": extensions})
        command = dist.get_command_obj("build_ext")
        command.build_lib = str(workdir)
        command.build_temp = str(workdir / "tmp")
        command.ensure_finalized()
        command.run()
        built = find_built()
        if not built:
            raise RuntimeError("cython build produced no extension for %s"
                               % name)
    spec = _ilu.spec_from_file_location(name, str(built[0]))
    module = _ilu.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def _scalar_runner(fire: Callable, ins: List, outs: List,
                   firings: int) -> Callable[[], None]:
    """Prebound per-firing fallback for workers without a batch kernel.

    Fires on the real channels, exactly like the fallback branch of
    ``_run_vector_steps`` — so non-numeric graph input and channel
    counters behave identically.
    """
    def run() -> None:
        for _ in range(firings):
            fire(ins, outs)
    return run


class _ChannelInfo:
    """Per-channel classification and symbolic cursors during emission."""

    __slots__ = ("channel", "index", "is_array", "produced", "consumed",
                 "fallback", "mode", "occ", "r", "w", "used")

    def __init__(self, channel, index: int, is_array: bool):
        self.channel = channel
        self.index = index
        self.is_array = is_array
        self.produced = 0
        self.consumed = 0
        self.fallback = False
        self.mode = "dynamic"
        self.occ = 0
        self.r = 0
        self.w = 0
        self.used = False


class CodegenKernel:
    """One generated function executing a plan's entire steady iteration.

    Built lazily: the first :meth:`run_iteration` classifies channels,
    emits and compiles source, normalizes pinned buffers and binds the
    kernel.  ``poison=True`` (used by glosslint V002) NaN-fills every
    output region before each kernel call so unwritten slots surface
    deterministically.
    """

    def __init__(self, plan, cache: Optional[Any] = None,
                 backend: Optional[str] = None, poison: bool = False):
        if _np is None:  # pragma: no cover - numpy is a baked-in dep
            raise RuntimeError("codegen requires numpy")
        if not getattr(plan, "vectorized", False):
            raise ValueError("codegen layers on a vectorized FusedPlan")
        self._plan = plan
        self._cache = cache
        self._use_default_cache = cache is None
        self.backend_requested = (backend if backend is not None
                                  else codegen_backend())
        self.backend = "python"
        self.poison = poison
        self.binds = 0
        self.source: Optional[str] = None
        self.fingerprint: Optional[str] = None
        self.error: Optional[str] = None
        self.fallback_steps = sum(1 for step in plan._vector_steps
                                  if step.batch is None)
        self.pinned_channels = 0
        self._kernel: Optional[Callable[[], None]] = None
        self._guards: Tuple[Tuple[Any, Any, int], ...] = ()

    # -- execution -----------------------------------------------------------

    def run_iteration(self) -> bool:
        """Run one steady iteration; ``False`` means structurally
        unsupported (the caller must fall back to the vector path)."""
        kernel = self._kernel
        if kernel is not None:
            for channel, buffer, occ in self._guards:
                if (channel._buffer is not buffer or channel._head != 0
                        or channel._tail != occ):
                    kernel = None  # someone moved a pinned channel: rebind
                    break
        if kernel is None:
            try:
                kernel = self._bind()
            except CodegenUnsupported as exc:
                self.error = str(exc)
                self._kernel = None
                self._guards = ()
                return False
        kernel()
        return True

    # -- binding -------------------------------------------------------------

    def _bind(self) -> Callable[[], None]:
        steps = self._plan._vector_steps
        infos = self._classify(steps)
        source, pinned = self._emit(steps, infos)
        code = self._compile(source)
        # Normalize pinned channels: live data moves to the front of a
        # buffer sized exactly occupancy + per-iteration flow, so every
        # emitted offset is valid and the epilogue carry is constant.
        guards = []
        for info in pinned:
            channel = info.channel
            occ = info.occ
            fresh = _np.empty(occ + info.produced, dtype=_np.float64)
            if self.poison:
                fresh.fill(_np.nan)
            if occ:
                fresh[:occ] = channel._buffer[channel._head:channel._tail]
            channel._buffer = fresh
            channel._head = 0
            channel._tail = occ
            guards.append((channel, fresh, occ))
        channels = [info.channel for info in infos]
        batches = [step.batch for step in steps]
        scalars = [
            (None if step.batch is not None
             else _scalar_runner(step.fire, step.ins, step.outs,
                                 step.firings))
            for step in steps
        ]
        bind = None
        if self.backend_requested == "cython":
            bind = self._cython_bind(source)
        if bind is not None:
            kernel = bind(channels, batches, scalars, _np)
            self.backend = "cython"
        else:
            namespace: Dict[str, Any] = {}
            exec(code, namespace)
            kernel = namespace["_bind"](channels, batches, scalars, _np)
            kernel = self._maybe_jit(kernel)
        self._kernel = kernel
        self._guards = tuple(guards)
        self.pinned_channels = len(guards)
        self.binds += 1
        self.error = None
        return kernel

    def _classify(self, steps) -> List[_ChannelInfo]:
        """Tally per-channel flow and decide pinned/dynamic/bridge."""
        by_id: Dict[int, _ChannelInfo] = {}
        infos: List[_ChannelInfo] = []

        def info_for(channel, is_array: bool) -> _ChannelInfo:
            info = by_id.get(id(channel))
            if info is None:
                info = _ChannelInfo(channel, len(infos), is_array)
                by_id[id(channel)] = info
                infos.append(info)
            return info

        for step in steps:
            fallback = step.batch is None
            for channel, consume, window, is_array in step.in_specs:
                info = info_for(channel, is_array)
                info.consumed += consume
                info.fallback |= fallback
            for channel, count, is_array in step.out_specs:
                info = info_for(channel, is_array)
                info.produced += count
                info.fallback |= fallback
        for info in infos:
            if not info.is_array:
                info.mode = "bridge"
            elif info.produced and info.consumed and not info.fallback:
                if info.produced != info.consumed:
                    raise CodegenUnsupported(
                        "unbalanced pinned channel: %d produced, "
                        "%d consumed" % (info.produced, info.consumed))
                info.mode = "pinned"
                info.occ = len(info.channel)
                info.r = 0
                info.w = info.occ
            elif info.produced and not info.consumed:
                raise CodegenUnsupported(
                    "array channel produced but never consumed inside "
                    "the plan")
            else:
                info.mode = "dynamic"
        return infos

    def _emit(self, steps,
              infos: List[_ChannelInfo]) -> Tuple[str, List[_ChannelInfo]]:
        """Symbolically execute the step list, emitting the bind factory."""
        by_id = {id(info.channel): info for info in infos}
        views: List[str] = []   # prebound views/temps inside _bind
        body: List[str] = []    # straight-line statements inside _kernel
        poison = self.poison
        for si, step in enumerate(steps):
            if step.batch is None:
                views.append("    _f%d = _scalars[%d]" % (si, si))
                body.append("        _f%d()" % si)
                continue
            views.append("    _w%d = _batches[%d]" % (si, si))
            in_names: List[str] = []
            for pi, (channel, consume, window, is_array) in enumerate(
                    step.in_specs):
                info = by_id[id(channel)]
                name = "_v%d_%d" % (si, pi)
                if info.mode == "pinned":
                    if info.r + window > info.w:
                        raise CodegenUnsupported(
                            "read of %d items outruns pinned occupancy"
                            % window)
                    views.append("    %s = _b%d[%d:%d]"
                                 % (name, info.index, info.r,
                                    info.r + window))
                    views.append("    %s.flags.writeable = False" % name)
                    info.r += consume
                    info.used = True
                elif is_array:
                    info.used = True
                    body.append("        %s = _c%d.peek_block(%d)"
                                % (name, info.index, window))
                    if consume:
                        body.append("        _c%d.pop_block(%d)"
                                    % (info.index, consume))
                else:
                    info.used = True
                    body.append(
                        "        %s = _np.array(_c%d.snapshot_prefix(%d),"
                        " dtype=_np.float64)" % (name, info.index, window))
                    body.append("        %s.flags.writeable = False" % name)
                    if consume:
                        body.append("        _c%d.pop_many(%d)"
                                    % (info.index, consume))
                in_names.append(name)
            out_names: List[str] = []
            staged: List[Tuple[int, str]] = []
            for pi, (channel, count, is_array) in enumerate(step.out_specs):
                info = by_id[id(channel)]
                name = "_o%d_%d" % (si, pi)
                if info.mode == "pinned":
                    views.append("    %s = _b%d[%d:%d]"
                                 % (name, info.index, info.w,
                                    info.w + count))
                    info.w += count
                    info.used = True
                    if poison:
                        body.append("        %s.fill(_np.nan)" % name)
                elif is_array:
                    info.used = True
                    body.append("        %s = _c%d.push_block(%d)"
                                % (name, info.index, count))
                    if poison:
                        body.append("        %s.fill(_np.nan)" % name)
                else:
                    info.used = True
                    if poison:
                        views.append("    %s = _np.full(%d, _np.nan)"
                                     % (name, count))
                        body.append("        %s.fill(_np.nan)" % name)
                    else:
                        views.append("    %s = _np.empty(%d)" % (name, count))
                    staged.append((info.index, name))
                out_names.append(name)
            body.append("        _w%d([%s], [%s], %d)"
                        % (si, ", ".join(in_names), ", ".join(out_names),
                           step.firings))
            for ci, name in staged:
                body.append("        _c%d.push_many(%s.tolist())"
                            % (ci, name))
        # Epilogue: one carry copy + two counter adds per pinned channel.
        pinned = [info for info in infos if info.mode == "pinned"]
        for info in pinned:
            if info.r != info.produced or info.w != info.occ + info.produced:
                raise CodegenUnsupported(
                    "pinned cursor mismatch (read %d/%d, wrote %d/%d)"
                    % (info.r, info.produced, info.w - info.occ,
                       info.produced))
            if info.occ:
                src = "_b%d[%d:%d]" % (info.index, info.produced,
                                       info.produced + info.occ)
                if info.produced < info.occ:
                    src += ".copy()"  # regions overlap: copy out first
                body.append("        _b%d[0:%d] = %s"
                            % (info.index, info.occ, src))
            body.append("        _c%d.total_pushed += %d"
                        % (info.index, info.produced))
            body.append("        _c%d.total_popped += %d"
                        % (info.index, info.produced))
        lines = ["def _bind(_ch, _batches, _scalars, _np):"]
        for info in infos:
            if info.used:
                lines.append("    _c%d = _ch[%d]" % (info.index, info.index))
        for info in pinned:
            lines.append("    _b%d = _c%d._buffer" % (info.index, info.index))
        lines.extend(views)
        lines.append("    def _kernel():")
        lines.extend(body if body else ["        pass"])
        lines.append("    return _kernel")
        lines.append("")
        return "\n".join(lines), pinned

    def _compile(self, source: str):
        cache = (self._cache if not self._use_default_cache else
                 _default_cache())
        if cache is not None:
            fingerprint, code = cache.kernel_for(source)
        else:
            fingerprint = hashlib.sha256(source.encode("utf-8")).hexdigest()
            code = compile(source, "<codegen:%s>" % fingerprint[:12], "exec")
        self.source = source
        self.fingerprint = fingerprint
        return code

    def _cython_bind(self, source: str) -> Optional[Callable]:
        """The compiled extension's bind factory, or ``None``.

        Every failure mode — toolchain absent, build error, import
        error — degrades silently to the generated-Python path;
        ``backend`` records what actually ran.
        """
        if not cython_available():
            return None
        cache = (self._cache if not self._use_default_cache else
                 _default_cache())
        try:
            if cache is not None:
                module = cache.kernel_module_for(source,
                                                 _build_cython_module)
            else:
                fingerprint = hashlib.sha256(
                    source.encode("utf-8")).hexdigest()
                module = _build_cython_module(fingerprint, source)
            return module._bind
        except Exception:
            return None

    def _maybe_jit(self, kernel: Callable[[], None]) -> Callable[[], None]:
        if self.backend_requested != "numba":
            self.backend = "python"
            return kernel
        try:
            import numba
            wrapped = numba.jit(nopython=False, forceobj=True)(kernel)
        except Exception:
            self.backend = "python"
            return kernel
        self.backend = "numba"
        return wrapped


def _default_cache():
    # Local import: the cache module pulls in the scheduler package,
    # which this low-level runtime module must not load eagerly.
    from repro.compiler.cache import get_default_cache
    return get_default_cache()
