"""Channels and rate-enforcing port views.

A :class:`Channel` is the physical buffer behind a stream-graph edge:
a deque with peeking, plus lifetime counters (``total_pushed`` /
``total_popped``) that asynchronous state transfer uses to locate the
deterministic cut (paper Section 6.2 — counting items "requires only
one addition instruction per schedule").

Port views (:class:`InputPort` / :class:`OutputPort`) wrap a channel
for the duration of one firing and enforce the worker's declared
rates; a worker that pops or pushes the wrong number of items raises
:class:`RateViolationError` — SDF's static rates are load-bearing for
everything Gloss does, so violations fail loudly.

:class:`ArrayChannel` is the contiguous NumPy twin of :class:`Channel`
used by the vectorized fast path: same scalar interface and lifetime
counters (so AST cut arithmetic and ``snapshot``/``snapshot_prefix``
are unchanged), plus zero-copy block access for batch kernels.
"""

from __future__ import annotations

import itertools
import os
import threading
from collections import deque
from itertools import islice
from typing import Any, Dict, Iterable, List

try:
    import numpy as _np
except ImportError:  # pragma: no cover - the toolchain bakes numpy in
    _np = None

try:
    from multiprocessing import shared_memory as _shared_memory
except ImportError:  # pragma: no cover - stdlib on every target platform
    _shared_memory = None

__all__ = [
    "ArrayChannel",
    "Channel",
    "ChannelFullError",
    "GRAPH_INPUT",
    "GRAPH_OUTPUT",
    "HAVE_NUMPY",
    "InputPort",
    "OutputPort",
    "RateViolationError",
    "SharedArrayChannel",
    "SharedChannel",
    "ShmArrayChannel",
    "as_shared",
    "load_state",
    "shm_open_segments",
]

HAVE_NUMPY = _np is not None

#: Pseudo edge keys for the graph's external input and output.
GRAPH_INPUT = -1
GRAPH_OUTPUT = -2


class RateViolationError(Exception):
    """A worker firing violated its declared peek/pop/push rates."""


class ChannelFullError(Exception):
    """A push would exceed a fixed-capacity channel's free space."""


class Channel:
    """A FIFO buffer with peeking and lifetime counters."""

    __slots__ = ("items", "total_pushed", "total_popped")

    def __init__(self, initial: Iterable[Any] = ()):
        self.items = deque(initial)
        # Counters include preloaded items so that cut arithmetic stays
        # consistent: a channel restored from state behaves as if its
        # contents had been pushed.
        self.total_pushed = len(self.items)
        self.total_popped = 0

    def __len__(self) -> int:
        return len(self.items)

    def push(self, item: Any) -> None:
        self.items.append(item)
        self.total_pushed += 1

    def push_many(self, items: Iterable[Any]) -> None:
        # Materialize once: a generator argument must be consumed
        # exactly one time, and the count must not be inferred from
        # container length deltas.
        items = list(items)
        self.items.extend(items)
        self.total_pushed += len(items)

    def pop(self) -> Any:
        self.total_popped += 1
        return self.items.popleft()

    def pop_many(self, count: int) -> List[Any]:
        if count > len(self.items):
            raise RateViolationError(
                "pop_many(%d) on channel of length %d" % (count, len(self.items))
            )
        taken = [self.items.popleft() for _ in range(count)]
        self.total_popped += count
        return taken

    def peek(self, index: int) -> Any:
        return self.items[index]

    def snapshot(self) -> List[Any]:
        """Copy of the buffered items (oldest first)."""
        return list(self.items)

    def snapshot_prefix(self, count: int) -> List[Any]:
        """Copy of the first ``count`` buffered items (the AST cut)."""
        if count > len(self.items):
            raise RateViolationError(
                "cut of %d items exceeds channel length %d"
                % (count, len(self.items))
            )
        return list(islice(self.items, count))


class ArrayChannel:
    """A contiguous float64 buffer with zero-copy block access.

    Drop-in replacement for :class:`Channel` on numeric edges: the
    scalar interface (``push``/``pop``/``peek``/``pop_many``/
    ``push_many``/``snapshot``/``snapshot_prefix``) and the lifetime
    counters behave identically, so the AST cut arithmetic of paper
    Section 6.2 — pure counter subtraction — is unaffected by whether
    items moved one at a time or as blocks.  On top of that,
    ``peek_block``/``pop_block``/``push_block`` expose views straight
    into the buffer for the vectorized fast path.

    Storage is a linear region ``[_head, _tail)`` inside an ndarray
    that grows by amortized doubling; when the tail hits the end the
    live region is compacted to the front (or the buffer reallocated),
    which is why block views are transient: a view is valid only until
    the next operation that reserves space on this channel.  The fused
    plan consumes every view within the same step, before any further
    channel operation.

    Values are stored as IEEE-754 doubles, which is lossless for the
    Python floats our numeric workers exchange; reads convert back to
    built-in ``float`` so captured state and outputs compare clean.
    """

    __slots__ = ("_buffer", "_head", "_tail", "total_pushed", "total_popped")

    #: Smallest backing allocation, in items.
    MIN_CAPACITY = 64

    def __init__(self, initial: Iterable[Any] = ()):
        if _np is None:  # pragma: no cover - numpy is a baked-in dep
            raise RuntimeError("ArrayChannel requires numpy")
        items = list(initial)
        count = len(items)
        capacity = self.MIN_CAPACITY
        while capacity < count:
            capacity *= 2
        self._buffer = _np.empty(capacity, dtype=_np.float64)
        if count:
            self._buffer[:count] = items
        self._head = 0
        self._tail = count
        # Counters include preloaded items, matching Channel: a channel
        # restored from state behaves as if its contents had been pushed.
        self.total_pushed = count
        self.total_popped = 0

    def __len__(self) -> int:
        return self._tail - self._head

    def _reserve(self, count: int) -> None:
        """Make room for ``count`` more items at the tail.

        Invalidates previously returned block views.  Compacts in
        place only when the copy is overlap-free and frees at least
        half the buffer (so the cost amortizes over the pushes that
        refill it); otherwise reallocates with doubling growth.
        """
        if self._tail + count <= self._buffer.shape[0]:
            return
        live = self._tail - self._head
        capacity = self._buffer.shape[0]
        if live + count <= capacity // 2 and self._head >= live:
            self._buffer[:live] = self._buffer[self._head:self._tail]
        else:
            while capacity < (live + count) * 2:
                capacity *= 2
            fresh = _np.empty(capacity, dtype=_np.float64)
            fresh[:live] = self._buffer[self._head:self._tail]
            self._buffer = fresh
        self._head = 0
        self._tail = live

    # -- scalar interface (Channel-compatible) ------------------------------

    def push(self, item: Any) -> None:
        self._reserve(1)
        self._buffer[self._tail] = item
        self._tail += 1
        self.total_pushed += 1

    def push_many(self, items: Iterable[Any]) -> None:
        items = list(items)
        count = len(items)
        self._reserve(count)
        if count:
            self._buffer[self._tail:self._tail + count] = items
        self._tail += count
        self.total_pushed += count

    def pop(self) -> float:
        if self._head >= self._tail:
            raise IndexError("pop from an empty channel")
        value = self._buffer[self._head]
        self._head += 1
        self.total_popped += 1
        return float(value)

    def pop_many(self, count: int) -> List[float]:
        if count > self._tail - self._head:
            raise RateViolationError(
                "pop_many(%d) on channel of length %d"
                % (count, self._tail - self._head)
            )
        taken = self._buffer[self._head:self._head + count].tolist()
        self._head += count
        self.total_popped += count
        return taken

    def peek(self, index: int) -> float:
        if index < 0 or self._head + index >= self._tail:
            raise IndexError("channel index out of range")
        return float(self._buffer[self._head + index])

    def snapshot(self) -> List[float]:
        """Copy of the buffered items (oldest first), as Python floats."""
        return self._buffer[self._head:self._tail].tolist()

    def snapshot_prefix(self, count: int) -> List[float]:
        """Copy of the first ``count`` buffered items (the AST cut)."""
        if count > self._tail - self._head:
            raise RateViolationError(
                "cut of %d items exceeds channel length %d"
                % (count, self._tail - self._head)
            )
        return self._buffer[self._head:self._head + count].tolist()

    # -- block interface ----------------------------------------------------

    def peek_block(self, count: int):
        """Read-only zero-copy view of the first ``count`` items."""
        if count > self._tail - self._head:
            raise RateViolationError(
                "peek_block(%d) on channel of length %d"
                % (count, self._tail - self._head)
            )
        view = self._buffer[self._head:self._head + count]
        view.flags.writeable = False
        return view

    def pop_block(self, count: int):
        """Consume ``count`` items, returning a read-only view of them."""
        if count > self._tail - self._head:
            raise RateViolationError(
                "pop_block(%d) on channel of length %d"
                % (count, self._tail - self._head)
            )
        view = self._buffer[self._head:self._head + count]
        view.flags.writeable = False
        self._head += count
        self.total_popped += count
        return view

    def push_block(self, count: int):
        """Append ``count`` uninitialized slots, returning a writable view.

        The caller must fill the view completely before the items are
        observed downstream; the fused plan does so within the same
        step.  Counters are advanced immediately so cut arithmetic
        sees block pushes exactly like ``count`` scalar pushes.
        """
        self._reserve(count)
        view = self._buffer[self._tail:self._tail + count]
        self._tail += count
        self.total_pushed += count
        return view


class SharedChannel(Channel):
    """A :class:`Channel` whose every operation holds a lock.

    Boundary handoff channels in the parallel blob executor: the
    producer's thread delivers (``push_many``) while the consumer's
    thread measures occupancy and pops.  Every public method — reads
    included, because deque iteration during a concurrent ``extend``
    raises ``RuntimeError`` — takes the same lock, so each operation is
    atomic and the lifetime counters stay exact under concurrency.
    """

    __slots__ = ("_lock",)

    def __init__(self, initial: Iterable[Any] = ()):
        super().__init__(initial)
        self._lock = threading.Lock()

    def __len__(self) -> int:
        with self._lock:
            return len(self.items)

    def push(self, item: Any) -> None:
        with self._lock:
            Channel.push(self, item)

    def push_many(self, items: Iterable[Any]) -> None:
        with self._lock:
            Channel.push_many(self, items)

    def pop(self) -> Any:
        with self._lock:
            return Channel.pop(self)

    def pop_many(self, count: int) -> List[Any]:
        with self._lock:
            return Channel.pop_many(self, count)

    def peek(self, index: int) -> Any:
        with self._lock:
            return Channel.peek(self, index)

    def snapshot(self) -> List[Any]:
        with self._lock:
            return Channel.snapshot(self)

    def snapshot_prefix(self, count: int) -> List[Any]:
        with self._lock:
            return Channel.snapshot_prefix(self, count)


class SharedArrayChannel(ArrayChannel):
    """An :class:`ArrayChannel` safe for one-producer/one-consumer use.

    Same full-locking discipline as :class:`SharedChannel`, plus one
    structural change: :meth:`_reserve` never compacts in place.  The
    consumer thread may still hold zero-copy views from a previous
    ``peek_block``/``pop_block`` while the producer pushes; in-place
    compaction would rewrite the region those views alias.  Growth
    therefore always reallocates — the old buffer is left untouched
    (outstanding views keep reading consistent data) and same-buffer
    pushes only ever write beyond every previously returned view's end.
    """

    __slots__ = ("_lock",)

    def __init__(self, initial: Iterable[Any] = ()):
        super().__init__(initial)
        self._lock = threading.Lock()

    def _reserve(self, count: int) -> None:
        if self._tail + count <= self._buffer.shape[0]:
            return
        live = self._tail - self._head
        capacity = self._buffer.shape[0]
        while capacity < (live + count) * 2:
            capacity *= 2
        fresh = _np.empty(capacity, dtype=_np.float64)
        fresh[:live] = self._buffer[self._head:self._tail]
        self._buffer = fresh
        self._head = 0
        self._tail = live

    def __len__(self) -> int:
        with self._lock:
            return self._tail - self._head

    def push(self, item: Any) -> None:
        with self._lock:
            ArrayChannel.push(self, item)

    def push_many(self, items: Iterable[Any]) -> None:
        with self._lock:
            ArrayChannel.push_many(self, items)

    def pop(self) -> float:
        with self._lock:
            return ArrayChannel.pop(self)

    def pop_many(self, count: int) -> List[float]:
        with self._lock:
            return ArrayChannel.pop_many(self, count)

    def peek(self, index: int) -> float:
        with self._lock:
            return ArrayChannel.peek(self, index)

    def snapshot(self) -> List[float]:
        with self._lock:
            return ArrayChannel.snapshot(self)

    def snapshot_prefix(self, count: int) -> List[float]:
        with self._lock:
            return ArrayChannel.snapshot_prefix(self, count)

    def peek_block(self, count: int):
        with self._lock:
            return ArrayChannel.peek_block(self, count)

    def pop_block(self, count: int):
        with self._lock:
            return ArrayChannel.pop_block(self, count)

    def push_block(self, count: int):
        with self._lock:
            return ArrayChannel.push_block(self, count)


def as_shared(channel):
    """Thread-safe copy of ``channel`` — contents and counters carried.

    The replacement reproduces the original's full observable state:
    buffered items in order plus both lifetime counters, so cut
    arithmetic is unaffected by the swap.
    """
    if isinstance(channel, (SharedChannel, SharedArrayChannel,
                            ShmArrayChannel)):
        return channel
    if isinstance(channel, ArrayChannel):
        shared = SharedArrayChannel(channel.snapshot())
    else:
        shared = SharedChannel(channel.snapshot())
    shared.total_pushed = channel.total_pushed
    shared.total_popped = channel.total_popped
    return shared


#: Name prefix of every shared-memory segment this module creates.
SHM_PREFIX = "reproch"

#: Names of shared-memory segments created (and not yet unlinked) by
#: this process.  The glosslint V003 lifecycle pass asserts executors
#: leave this empty on every shutdown and abort path.
_shm_created: set = set()

_shm_seq = itertools.count(1)


def shm_open_segments() -> List[str]:
    """Shared-memory segments created by this process and still linked."""
    return sorted(_shm_created)


class ShmArrayChannel:
    """Fixed-capacity SPSC float64 ring in POSIX shared memory.

    The cross-process twin of :class:`SharedArrayChannel`: one producer
    process pushes, one consumer process pops, and both observe the
    same ``total_pushed``/``total_popped`` lifetime counters — so AST
    cut arithmetic, snapshots and readiness checks are backend
    invariant.  The segment layout is a 64-byte header of three
    ``int64`` words (absolute pop counter, absolute push counter,
    capacity) followed by a ``float64`` data ring; slot ``i`` of the
    logical stream lives at ``i % capacity``, so the counters *are* the
    ring cursors and advancing one is a single aligned store.

    Single-producer/single-consumer correctness needs no lock: the
    producer writes data before advancing the push counter, the
    consumer reads data before advancing the pop counter, and each
    side's occupancy/space estimate can only *under*-report (it reads
    its own counter exactly and the other side's monotonically), so
    neither can overwrite unread slots nor read unwritten ones.

    Unlike :class:`ArrayChannel` there is no compaction and no growth:
    the buffer never moves, so zero-copy block views stay valid for the
    segment's lifetime, and a push beyond ``capacity`` raises
    :class:`ChannelFullError` — executors size rings from the schedule
    rates and their ``max_lead`` pacing bound, which caps occupancy.

    Lifecycle: the creating process owns the segment and must call
    :meth:`close` **and** :meth:`unlink`; forked children inherit the
    mapping and need no cleanup of their own.  Created-but-unlinked
    segments are tracked in :func:`shm_open_segments` so the V003 lint
    pass can prove nothing leaks into ``/dev/shm``.
    """

    __slots__ = ("_shm", "_hdr", "_data", "_capacity", "_owner",
                 "_closed", "_cached_head", "_cached_tail")

    HEADER_BYTES = 64
    MIN_CAPACITY = 8

    def __init__(self, initial: Iterable[Any] = (), capacity: int = 4096,
                 name: str = None):
        if _np is None:  # pragma: no cover - numpy is a baked-in dep
            raise RuntimeError("ShmArrayChannel requires numpy")
        if _shared_memory is None:  # pragma: no cover - stdlib module
            raise RuntimeError(
                "ShmArrayChannel requires multiprocessing.shared_memory")
        items = list(initial)
        capacity = max(int(capacity), self.MIN_CAPACITY, len(items))
        if name is None:
            name = "%s_%d_%d" % (SHM_PREFIX, os.getpid(), next(_shm_seq))
        size = self.HEADER_BYTES + 8 * capacity
        self._shm = _shared_memory.SharedMemory(name=name, create=True,
                                                size=size)
        self._hdr = _np.ndarray((3,), dtype=_np.int64, buffer=self._shm.buf)
        self._hdr[:] = 0
        self._hdr[2] = capacity
        self._data = _np.ndarray((capacity,), dtype=_np.float64,
                                 buffer=self._shm.buf,
                                 offset=self.HEADER_BYTES)
        self._capacity = capacity
        self._owner = True
        self._closed = False
        self._cached_head = 0
        self._cached_tail = 0
        _shm_created.add(self._shm.name)
        if items:
            self.push_many(items)

    @classmethod
    def attach(cls, name: str) -> "ShmArrayChannel":
        """Map an existing segment (non-owning: no unlink duty)."""
        self = object.__new__(cls)
        self._shm = _shared_memory.SharedMemory(name=name)
        self._hdr = _np.ndarray((3,), dtype=_np.int64, buffer=self._shm.buf)
        self._capacity = int(self._hdr[2])
        self._data = _np.ndarray((self._capacity,), dtype=_np.float64,
                                 buffer=self._shm.buf,
                                 offset=self.HEADER_BYTES)
        self._owner = False
        self._closed = False
        self._cached_head = 0
        self._cached_tail = 0
        return self

    @classmethod
    def from_channel(cls, channel, capacity: int = 4096) -> "ShmArrayChannel":
        """Ring carrying ``channel``'s contents and lifetime counters.

        The cross-process analogue of :func:`as_shared`: the swap is
        invisible to cut arithmetic because both counters (not just
        the occupancy) are reproduced.
        """
        ring = cls(capacity=capacity)
        ring._load(channel.snapshot(), channel.total_pushed,
                   channel.total_popped)
        return ring

    def _load(self, items: List[float], pushed: int, popped: int) -> None:
        if pushed - popped != len(items):
            raise ValueError(
                "counters (%d pushed, %d popped) do not match %d items"
                % (pushed, popped, len(items)))
        count = len(items)
        if count > self._capacity:
            raise ChannelFullError(
                "%d items exceed ring capacity %d" % (count, self._capacity))
        if count:
            index = (popped + _np.arange(count)) % self._capacity
            self._data[index] = items
        self._hdr[0] = popped
        self._hdr[1] = pushed

    # -- identity / occupancy ------------------------------------------------

    @property
    def name(self) -> str:
        return self._shm.name

    @property
    def capacity(self) -> int:
        return self._capacity

    @property
    def total_pushed(self) -> int:
        if self._closed:
            return self._cached_tail
        return int(self._hdr[1])

    @property
    def total_popped(self) -> int:
        if self._closed:
            return self._cached_head
        return int(self._hdr[0])

    def __len__(self) -> int:
        if self._closed:
            return self._cached_tail - self._cached_head
        return int(self._hdr[1]) - int(self._hdr[0])

    def space(self) -> int:
        """Free slots (an under-estimate is fine on the producer side)."""
        return self._capacity - len(self)

    # -- scalar interface (Channel-compatible) ------------------------------

    def push(self, item: Any) -> None:
        head = int(self._hdr[0])
        tail = int(self._hdr[1])
        if tail - head >= self._capacity:
            raise ChannelFullError(
                "push on a full ring (capacity %d)" % self._capacity)
        self._data[tail % self._capacity] = item
        self._hdr[1] = tail + 1

    def push_many(self, items: Iterable[Any]) -> None:
        values = _np.asarray(list(items), dtype=_np.float64)
        count = values.shape[0]
        if count == 0:
            return
        head = int(self._hdr[0])
        tail = int(self._hdr[1])
        if tail - head + count > self._capacity:
            raise ChannelFullError(
                "push_many(%d) on a ring with %d free slot(s)"
                % (count, self._capacity - (tail - head)))
        start = tail % self._capacity
        end = start + count
        if end <= self._capacity:
            self._data[start:end] = values
        else:
            first = self._capacity - start
            self._data[start:] = values[:first]
            self._data[:count - first] = values[first:]
        self._hdr[1] = tail + count

    def pop(self) -> float:
        head = int(self._hdr[0])
        if int(self._hdr[1]) - head <= 0:
            raise IndexError("pop from an empty channel")
        value = float(self._data[head % self._capacity])
        self._hdr[0] = head + 1
        return value

    def pop_many(self, count: int) -> List[float]:
        head = int(self._hdr[0])
        if count > int(self._hdr[1]) - head:
            raise RateViolationError(
                "pop_many(%d) on channel of length %d"
                % (count, int(self._hdr[1]) - head))
        values = self._read(head, count).tolist()
        self._hdr[0] = head + count
        return values

    def peek(self, index: int) -> float:
        head = int(self._hdr[0])
        if index < 0 or head + index >= int(self._hdr[1]):
            raise IndexError("channel index out of range")
        return float(self._data[(head + index) % self._capacity])

    def snapshot(self) -> List[float]:
        head = int(self._hdr[0])
        return self._read(head, int(self._hdr[1]) - head).tolist()

    def snapshot_prefix(self, count: int) -> List[float]:
        head = int(self._hdr[0])
        if count > int(self._hdr[1]) - head:
            raise RateViolationError(
                "cut of %d items exceeds channel length %d"
                % (count, int(self._hdr[1]) - head))
        return self._read(head, count).tolist()

    def _read(self, start_counter: int, count: int):
        """Contiguous copy of ``count`` items starting at a counter."""
        start = start_counter % self._capacity
        end = start + count
        if end <= self._capacity:
            return self._data[start:end].copy()
        out = _np.empty(count, dtype=_np.float64)
        first = self._capacity - start
        out[:first] = self._data[start:]
        out[first:] = self._data[:count - first]
        return out

    # -- block interface ----------------------------------------------------

    def peek_block(self, count: int):
        """Read-only view of the first ``count`` items.

        Zero-copy when the range does not wrap; a read-only copy when
        it does.  Views stay valid for the segment's lifetime — the
        ring never compacts or reallocates.
        """
        head = int(self._hdr[0])
        if count > int(self._hdr[1]) - head:
            raise RateViolationError(
                "peek_block(%d) on channel of length %d"
                % (count, int(self._hdr[1]) - head))
        start = head % self._capacity
        if start + count <= self._capacity:
            view = self._data[start:start + count]
        else:
            view = self._read(head, count)
        view.flags.writeable = False
        return view

    def pop_block(self, count: int):
        """Consume ``count`` items, returning a read-only view of them."""
        view = self.peek_block(count)
        self._hdr[0] = int(self._hdr[0]) + count
        return view

    # -- lifecycle -----------------------------------------------------------

    def close(self) -> None:
        """Release this process's mapping (counters stay readable)."""
        if self._closed:
            return
        self._cached_head = int(self._hdr[0])
        self._cached_tail = int(self._hdr[1])
        self._hdr = None
        self._data = None
        self._closed = True
        try:
            self._shm.close()
        except BufferError:  # pragma: no cover - outstanding block view
            pass

    def unlink(self) -> None:
        """Remove the segment from the system (owner only, idempotent)."""
        if not self._owner:
            return
        self.close()
        try:
            self._shm.unlink()
        except FileNotFoundError:  # pragma: no cover - already unlinked
            pass
        _shm_created.discard(self._shm.name)
        self._owner = False

    def __del__(self):  # pragma: no cover - GC-order dependent
        try:
            self.close()
        except Exception:
            pass


def load_state(channel, items: List[Any], pushed: int, popped: int) -> None:
    """Overwrite ``channel``'s contents and lifetime counters in place.

    The process executor's drain-and-rejoin path: a forked child ships
    its internal channel state back to the parent, which installs it
    into the *existing* channel objects (firing code holds direct
    references, so the objects themselves must not be swapped).
    Shared-memory rings never need this — both sides already observe
    the same segment.
    """
    if pushed - popped != len(items):
        raise ValueError(
            "counters (%d pushed, %d popped) do not match %d items"
            % (pushed, popped, len(items)))
    if isinstance(channel, ShmArrayChannel):
        raise TypeError("shared-memory rings are already synchronized")
    if isinstance(channel, ArrayChannel):
        items = list(items)
        count = len(items)
        capacity = ArrayChannel.MIN_CAPACITY
        while capacity < count:
            capacity *= 2
        buffer = _np.empty(capacity, dtype=_np.float64)
        if count:
            buffer[:count] = items
        channel._buffer = buffer
        channel._head = 0
        channel._tail = count
    else:
        channel.items.clear()
        channel.items.extend(items)
    channel.total_pushed = pushed
    channel.total_popped = popped


class InputPort:
    """Rate-enforcing read view of a channel for a single firing."""

    __slots__ = ("_channel", "_pop_budget", "_peek_budget", "popped")

    def __init__(self, channel: Channel, pop_rate: int, peek_rate: int):
        self._channel = channel
        self._pop_budget = pop_rate
        self._peek_budget = peek_rate
        self.popped = 0

    def pop(self) -> Any:
        if self.popped >= self._pop_budget:
            raise RateViolationError("worker popped more than its pop rate")
        self.popped += 1
        return self._channel.pop()

    def peek(self, index: int) -> Any:
        # Peeks are relative to the current (post-pop) head; the total
        # reach from the firing's start must stay within the peek rate.
        if self.popped + index >= self._peek_budget:
            raise RateViolationError(
                "peek(%d) after %d pops exceeds peek rate %d"
                % (index, self.popped, self._peek_budget)
            )
        return self._channel.peek(index)

    def finish(self, worker_name: str) -> None:
        if self.popped != self._pop_budget:
            raise RateViolationError(
                "%s popped %d items, declared pop rate %d"
                % (worker_name, self.popped, self._pop_budget)
            )


class OutputPort:
    """Rate-enforcing write view of a channel for a single firing."""

    __slots__ = ("_channel", "_push_budget", "pushed")

    def __init__(self, channel: Channel, push_rate: int):
        self._channel = channel
        self._push_budget = push_rate
        self.pushed = 0

    def push(self, item: Any) -> None:
        if self.pushed >= self._push_budget:
            raise RateViolationError("worker pushed more than its push rate")
        self.pushed += 1
        self._channel.push(item)

    def finish(self, worker_name: str) -> None:
        if self.pushed != self._push_budget:
            raise RateViolationError(
                "%s pushed %d items, declared push rate %d"
                % (worker_name, self.pushed, self._push_budget)
            )
