"""Channels and rate-enforcing port views.

A :class:`Channel` is the physical buffer behind a stream-graph edge:
a deque with peeking, plus lifetime counters (``total_pushed`` /
``total_popped``) that asynchronous state transfer uses to locate the
deterministic cut (paper Section 6.2 — counting items "requires only
one addition instruction per schedule").

Port views (:class:`InputPort` / :class:`OutputPort`) wrap a channel
for the duration of one firing and enforce the worker's declared
rates; a worker that pops or pushes the wrong number of items raises
:class:`RateViolationError` — SDF's static rates are load-bearing for
everything Gloss does, so violations fail loudly.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Iterable, List

__all__ = [
    "Channel",
    "GRAPH_INPUT",
    "GRAPH_OUTPUT",
    "InputPort",
    "OutputPort",
    "RateViolationError",
]

#: Pseudo edge keys for the graph's external input and output.
GRAPH_INPUT = -1
GRAPH_OUTPUT = -2


class RateViolationError(Exception):
    """A worker firing violated its declared peek/pop/push rates."""


class Channel:
    """A FIFO buffer with peeking and lifetime counters."""

    __slots__ = ("items", "total_pushed", "total_popped")

    def __init__(self, initial: Iterable[Any] = ()):
        self.items = deque(initial)
        # Counters include preloaded items so that cut arithmetic stays
        # consistent: a channel restored from state behaves as if its
        # contents had been pushed.
        self.total_pushed = len(self.items)
        self.total_popped = 0

    def __len__(self) -> int:
        return len(self.items)

    def push(self, item: Any) -> None:
        self.items.append(item)
        self.total_pushed += 1

    def push_many(self, items: Iterable[Any]) -> None:
        before = len(self.items)
        self.items.extend(items)
        self.total_pushed += len(self.items) - before

    def pop(self) -> Any:
        self.total_popped += 1
        return self.items.popleft()

    def pop_many(self, count: int) -> List[Any]:
        if count > len(self.items):
            raise RateViolationError(
                "pop_many(%d) on channel of length %d" % (count, len(self.items))
            )
        taken = [self.items.popleft() for _ in range(count)]
        self.total_popped += count
        return taken

    def peek(self, index: int) -> Any:
        return self.items[index]

    def snapshot(self) -> List[Any]:
        """Copy of the buffered items (oldest first)."""
        return list(self.items)

    def snapshot_prefix(self, count: int) -> List[Any]:
        """Copy of the first ``count`` buffered items (the AST cut)."""
        if count > len(self.items):
            raise RateViolationError(
                "cut of %d items exceeds channel length %d"
                % (count, len(self.items))
            )
        result = []
        for i, item in enumerate(self.items):
            if i >= count:
                break
            result.append(item)
        return result


class InputPort:
    """Rate-enforcing read view of a channel for a single firing."""

    __slots__ = ("_channel", "_pop_budget", "_peek_budget", "popped")

    def __init__(self, channel: Channel, pop_rate: int, peek_rate: int):
        self._channel = channel
        self._pop_budget = pop_rate
        self._peek_budget = peek_rate
        self.popped = 0

    def pop(self) -> Any:
        if self.popped >= self._pop_budget:
            raise RateViolationError("worker popped more than its pop rate")
        self.popped += 1
        return self._channel.pop()

    def peek(self, index: int) -> Any:
        # Peeks are relative to the current (post-pop) head; the total
        # reach from the firing's start must stay within the peek rate.
        if self.popped + index >= self._peek_budget:
            raise RateViolationError(
                "peek(%d) after %d pops exceeds peek rate %d"
                % (index, self.popped, self._peek_budget)
            )
        return self._channel.peek(index)

    def finish(self, worker_name: str) -> None:
        if self.popped != self._pop_budget:
            raise RateViolationError(
                "%s popped %d items, declared pop rate %d"
                % (worker_name, self.popped, self._pop_budget)
            )


class OutputPort:
    """Rate-enforcing write view of a channel for a single firing."""

    __slots__ = ("_channel", "_push_budget", "pushed")

    def __init__(self, channel: Channel, push_rate: int):
        self._channel = channel
        self._push_budget = push_rate
        self.pushed = 0

    def push(self, item: Any) -> None:
        if self.pushed >= self._push_budget:
            raise RateViolationError("worker pushed more than its push rate")
        self.pushed += 1
        self._channel.push(item)

    def finish(self, worker_name: str) -> None:
        if self.pushed != self._push_budget:
            raise RateViolationError(
                "%s pushed %d items, declared push rate %d"
                % (worker_name, self.pushed, self._push_budget)
            )
