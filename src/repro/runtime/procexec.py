"""Process-level blob execution over shared-memory ring channels.

The thread executor (:mod:`repro.runtime.parallel`) only scales when
blobs spend their iterations inside GIL-releasing NumPy kernels —
scalar-fallback blobs and the Python dispatch glue serialize on the
GIL.  This module removes that ceiling: each blob of a partition runs
in its own **forked worker process**, and boundary edges become
:class:`~repro.runtime.channels.ShmArrayChannel` rings in POSIX shared
memory, so producers hand float batches to consumers without copying
through the parent and without ever contending on the GIL.

Design:

``fork`` inheritance, not pickling
    Workers are created with the ``fork`` start method *after* the
    parent has built (and possibly initialized) every
    :class:`~repro.runtime.executor.BlobRuntime`.  The child inherits
    the runtime — graph, schedule, compiled plans — by memory copy, and
    inherits the shared-memory mappings of every ring, so no runtime
    object ever crosses a pickle boundary.  Generated kernel source is
    re-materialized child-side through the content-fingerprinted
    :class:`~repro.compiler.cache.CompilationCache` the first time the
    child's fused plan binds.

One in-flight RPC per blob
    The parent keeps one pipe per child and drives it with the *same*
    scheduler as the thread executor: a parent-side thread per blob
    blocks in ``Connection.recv`` (releasing the GIL) while the child
    runs the iteration.  Readiness and ``max_lead`` pacing are
    evaluated parent-side over the live ring counters — exact, because
    readiness consults only boundary-input channels and SDF keeps
    internal channel occupancy invariant at iteration boundaries.

Drain-and-rejoin
    Reconfiguration primitives (``capture_state``, ``drain_pass``)
    work mid-run: captures are served by the child over the pipe;
    draining first *rejoins* the child — it ships back stateful worker
    state, internal channel contents and the lifetime counters, the
    parent installs them into its retained local runtime
    (:func:`~repro.runtime.channels.load_state` restores in place, so
    the firing code's direct channel references stay valid), and
    execution continues in the parent exactly where the child stopped.
    The child's trace spans are absorbed into the parent tracer with
    nesting preserved.
"""

from __future__ import annotations

import multiprocessing
import os
import threading
import traceback
from collections import deque
from typing import Any, Callable, Dict, Iterable, List, Optional, Sequence

from repro.graph.topology import StreamGraph
from repro.obs.tracer import Tracer
from repro.runtime.channels import (
    GRAPH_INPUT,
    GRAPH_OUTPUT,
    ShmArrayChannel,
    load_state,
)
from repro.runtime.executor import BlobRuntime
from repro.runtime.parallel import ParallelBlobExecutor
from repro.sched.schedule import Schedule

__all__ = [
    "ProcessBlobExecutor",
    "RemoteBlobRuntime",
    "fork_blob_worker",
    "process_executor_available",
    "ring_capacity_for",
]


def process_executor_available() -> bool:
    """True when forked blob workers can run on this platform.

    The executor requires the ``fork`` start method (runtimes and ring
    mappings are inherited, never pickled), which POSIX platforms
    provide and Windows does not.
    """
    try:
        return "fork" in multiprocessing.get_all_start_methods()
    except Exception:  # pragma: no cover - defensive
        return False


def ring_capacity_for(runtime: BlobRuntime, key: int, max_lead: int,
                      extra: int = 0) -> int:
    """Ring slots needed so channel ``key`` can never overflow.

    Occupancy is bounded by the scheduler: a producer may complete at
    most ``max_lead`` iterations beyond its consumer, each adding one
    steady quantum on top of the structural leftover (or the init
    quantum, whichever is larger).  ``extra`` admits additional
    headroom the caller knows about (the cluster layer passes its
    simulated link capacity).  Rounded up to a power of two.
    """
    steady = runtime._steady_in_need.get(key, 0)
    ready = runtime._steady_ready_len.get(key, 0)
    init = runtime._init_ready_len.get(key, 0)
    current = len(runtime.channels[key])
    need = max(ready, init) + steady * (max_lead + 2) + current + extra
    need = max(need, ShmArrayChannel.MIN_CAPACITY)
    return 1 << (need - 1).bit_length()


def _mirrors(runtime: BlobRuntime) -> tuple:
    """Counters the parent mirrors onto its local runtime per RPC."""
    return (runtime.iteration, runtime.consumed_input,
            runtime.emitted_output, runtime.initialized,
            runtime.codegen_active, runtime.codegen_fallback_steps)


def _ship_staged(staged: Dict[int, List[Any]],
                 ship_to: Optional[Dict[int, ShmArrayChannel]]) -> None:
    """Push boundary items into consumer rings child-side.

    Shipped keys are removed from ``staged`` so the parent never
    delivers them a second time; graph output (and any key without a
    ring) rides back over the pipe.
    """
    if not ship_to:
        return
    for key, ring in ship_to.items():
        items = staged.pop(key, None)
        if items:
            ring.push_many(items)


def _serve_blob(runtime: BlobRuntime, parent_conn, conn, blob_index: int,
                track: str,
                ship_to: Optional[Dict[int, ShmArrayChannel]]) -> None:
    """Child-process command loop: serve one blob over a pipe.

    Commands are ``(name, now, *rest)`` tuples; ``now`` is the parent
    clock at send time and becomes the child tracer's clock, so child
    spans land on the parent timeline when absorbed.  Errors are
    reported, not fatal — the child keeps serving so the parent can
    still rejoin or stop it.
    """
    if parent_conn is not None:
        try:
            parent_conn.close()
        except Exception:  # pragma: no cover - defensive
            pass
    # The fork may have happened while another executor's pool thread
    # held the compile cache's kernel lock; the child owns a fresh one.
    from repro.compiler.cache import get_default_cache
    get_default_cache()._kernel_lock = threading.Lock()

    now = [0.0]
    tracer = Tracer(clock=lambda: now[0])
    root = tracer.begin("proc", "proc.serve", track=track,
                        blob=blob_index, pid=os.getpid())
    while True:
        try:
            message = conn.recv()
        except (EOFError, OSError):
            break
        command = message[0]
        now[0] = message[1]
        try:
            if command == "steady":
                with tracer.span("proc", "proc.steady", track=track,
                                 iteration=runtime.iteration):
                    staged = runtime.run_steady()
                _ship_staged(staged, ship_to)
                conn.send(("ok", staged, _mirrors(runtime)))
            elif command == "init":
                with tracer.span("proc", "proc.init", track=track):
                    staged = runtime.run_init()
                _ship_staged(staged, ship_to)
                conn.send(("ok", staged, _mirrors(runtime)))
            elif command == "capture":
                cut_lengths, residual = message[2], message[3]
                with tracer.span("proc", "proc.capture", track=track):
                    state = runtime.capture_state(cut_lengths=cut_lengths,
                                                  residual=residual)
                conn.send(("ok", state))
            elif command == "rejoin":
                payload = {
                    "workers": {
                        worker_id: runtime.graph.worker(worker_id).get_state()
                        for worker_id in sorted(runtime.worker_ids)
                        if runtime.graph.worker(worker_id).is_stateful
                    },
                    "channels": {
                        edge.index: (
                            runtime.channels[edge.index].snapshot(),
                            runtime.channels[edge.index].total_pushed,
                            runtime.channels[edge.index].total_popped,
                        )
                        for edge in runtime.internal_edges
                    },
                    "iteration": runtime.iteration,
                    "consumed": runtime.consumed_input,
                    "emitted": runtime.emitted_output,
                    "initialized": runtime.initialized,
                }
                root.finish()
                conn.send(("ok", payload, tracer.export_records()))
                break
            elif command == "stop":
                root.finish()
                conn.send(("ok", tracer.export_records()))
                break
            else:
                conn.send(("error", "unknown command %r" % (command,)))
        except BaseException:
            conn.send(("error", traceback.format_exc()))
    try:
        conn.close()
    except Exception:  # pragma: no cover - defensive
        pass


class RemoteBlobRuntime:
    """Parent-side proxy for a blob running in a forked worker.

    Quacks like the :class:`BlobRuntime` it wraps: execution and
    capture RPC to the child while ``live``; everything else — channel
    access, readiness, rates, metadata — delegates to the retained
    local runtime, whose boundary channels are the same shared-memory
    rings the child reads and writes, so parent-side readiness checks
    observe live occupancy.  After :meth:`rejoin` the proxy degrades to
    a transparent wrapper over the (now current) local runtime.
    """

    is_remote = True

    def __init__(self, local: BlobRuntime, conn, process, tracer,
                 clock: Callable[[], float], blob_index: int, track: str):
        self._local = local
        self._conn = conn
        self._process = process
        self._tracer = tracer
        self._clock = clock
        self.blob_index = blob_index
        self.track = track
        self.live = True
        #: Optional zero-arg callable invoked before readiness checks
        #: (the standalone executor refills the head's input ring).
        self.input_pump: Optional[Callable[[], None]] = None
        self._codegen_active = False
        self._codegen_fallback = 0

    def __getattr__(self, name: str):
        return getattr(object.__getattribute__(self, "_local"), name)

    # -- RPC plumbing --------------------------------------------------------

    def _rpc(self, command: str, *rest: Any) -> tuple:
        self._conn.send((command, self._clock()) + rest)
        reply = self._conn.recv()
        if reply[0] == "error":
            raise RuntimeError(
                "blob %d worker process failed:\n%s"
                % (self.blob_index, reply[1]))
        return reply

    def _sync(self, mirrors: tuple) -> None:
        local = self._local
        (local.iteration, local.consumed_input, local.emitted_output,
         local.initialized, self._codegen_active,
         self._codegen_fallback) = mirrors

    # -- execution (remote while live) ---------------------------------------

    def run_steady(self) -> Dict[int, List[Any]]:
        if not self.live:
            return self._local.run_steady()
        _ok, staged, mirrors = self._rpc("steady")
        self._sync(mirrors)
        return staged

    def run_init(self) -> Dict[int, List[Any]]:
        if not self.live:
            return self._local.run_init()
        _ok, staged, mirrors = self._rpc("init")
        self._sync(mirrors)
        return staged

    def capture_state(self, cut_lengths: Optional[Dict[int, int]] = None,
                      residual: bool = False):
        if not self.live:
            return self._local.capture_state(cut_lengths=cut_lengths,
                                             residual=residual)
        _ok, state = self._rpc("capture", cut_lengths, residual)
        return state

    def drain_pass(self):
        """Draining leaves steady state: rejoin first, then drain locally."""
        if self.live:
            self.rejoin()
        return self._local.drain_pass()

    def ready_for_steady(self) -> bool:
        if self.input_pump is not None:
            self.input_pump()
        return self._local.ready_for_steady()

    @property
    def consumed_input(self) -> int:
        # The head's input ring counter is live shared memory — more
        # current than the per-RPC mirror while an iteration runs.
        local = self._local
        if local.has_head:
            return local.channels[GRAPH_INPUT].total_popped
        return local.consumed_input

    @property
    def codegen_active(self) -> bool:
        if self.live:
            return self._codegen_active
        return self._local.codegen_active

    @property
    def codegen_fallback_steps(self) -> int:
        if self.live:
            return self._codegen_fallback
        return self._local.codegen_fallback_steps

    # -- lifecycle -----------------------------------------------------------

    def rejoin(self) -> None:
        """Pull the child's state into the local runtime and retire it.

        After this call the local runtime is byte-equivalent to the
        child at its last iteration boundary: worker state installed,
        internal channels restored *in place* (firing code holds direct
        references), counters mirrored, fused plan invalidated so the
        next local iteration rebinds against the restored buffers.
        """
        if not self.live:
            return
        _ok, payload, records = self._rpc("rejoin")
        self._tracer.absorb(records)
        local = self._local
        for worker_id, worker_state in payload["workers"].items():
            local.graph.worker(worker_id).set_state(worker_state)
        for index, (items, pushed, popped) in payload["channels"].items():
            load_state(local.channels[index], items, pushed, popped)
        local.iteration = payload["iteration"]
        local.consumed_input = payload["consumed"]
        local.emitted_output = payload["emitted"]
        local.initialized = payload["initialized"]
        local._fused = None
        self.live = False
        self._finish_child()

    def shutdown(self, abort: bool = False) -> None:
        """Stop the child. ``abort`` terminates without a final RPC —
        the safe path when a pool thread may still be blocked in
        ``recv`` (the EOF resolves it)."""
        if self._conn is None:
            return
        if self.live and not abort:
            try:
                reply = self._rpc("stop")
                self._tracer.absorb(reply[1])
            except Exception:
                abort = True
        self.live = False
        if abort and self._process.is_alive():
            self._process.terminate()
        self._finish_child()

    def _finish_child(self) -> None:
        if self._conn is not None:
            try:
                self._conn.close()
            except Exception:  # pragma: no cover - defensive
                pass
            self._conn = None
        if self._process is not None:
            self._process.join(timeout=5.0)
            if self._process.is_alive():  # pragma: no cover - hung child
                self._process.terminate()
                self._process.join(timeout=1.0)
            self._process = None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "<RemoteBlobRuntime blob=%d live=%s>" % (self.blob_index,
                                                        self.live)


def fork_blob_worker(local: BlobRuntime, blob_index: int, tracer,
                     clock: Callable[[], float], track: str,
                     ship_to: Optional[Dict[int, ShmArrayChannel]] = None
                     ) -> RemoteBlobRuntime:
    """Fork a worker process serving ``local`` and return its proxy.

    ``ship_to`` maps boundary-out edge indices to the consumer's
    shared-memory ring: when given, the child delivers those items
    directly (standalone executor); when ``None`` every staged item
    returns over the pipe (the cluster layer routes through its
    simulated links).
    """
    context = multiprocessing.get_context("fork")
    parent_conn, child_conn = context.Pipe()
    process = context.Process(
        target=_serve_blob,
        args=(local, parent_conn, child_conn, blob_index, track, ship_to),
        name="repro-blob-%d" % blob_index,
        daemon=True,
    )
    process.start()
    child_conn.close()
    return RemoteBlobRuntime(local, parent_conn, process, tracer, clock,
                             blob_index, track)


class ProcessBlobExecutor(ParallelBlobExecutor):
    """Run the blobs of one partition in forked worker processes.

    Same public surface, scheduling discipline (`max_lead` pacing,
    readiness-driven dispatch) and determinism contract as the thread
    executor — but each blob's iterations run in a separate process,
    so scalar-heavy blobs that would serialize on the GIL genuinely
    overlap.  Boundary edges and the graph input become fixed-capacity
    shared-memory rings sized from the schedule so they can never
    overflow under the pacing bound.

    External input of arbitrary size is accepted: ``push_input`` holds
    items in a parent-side pending queue and tops the input ring up as
    the head blob drains it.

    Workers fork lazily on the first multi-blob ``run_steady`` and are
    drained-and-rejoined before any ``drain`` — so adaptive and fluid
    reconfigurations (which capture at iteration boundaries and drain
    before cutover) work unchanged mid-run.  Call :meth:`close` (or
    use the executor as a context manager) to release the shared
    memory segments.
    """

    def __init__(
        self,
        graph: StreamGraph,
        partition: Sequence[Iterable[int]],
        schedule: Optional[Schedule] = None,
        check_rates: bool = False,
        processes: Optional[int] = None,
        max_lead: int = 4,
        tracer=None,
        ring_capacity: Optional[int] = None,
    ):
        if not process_executor_available():
            raise RuntimeError(
                "process executor requires the 'fork' start method")
        super().__init__(graph, partition, schedule=schedule,
                         check_rates=check_rates, threads=processes,
                         max_lead=max_lead, tracer=tracer)
        incapable = [bi for bi, rt in enumerate(self.runtimes)
                     if not rt.vector_capable]
        if incapable:
            raise ValueError(
                "process executor requires numeric (vector-capable) "
                "blobs; blob(s) %s hold non-numeric items" % incapable)
        # Swap every boundary handoff (and the head's graph input) from
        # the lock-wrapped thread channels to shared-memory rings.  At
        # construction time nothing has popped, so replace_channel
        # accepts the swap and all counters carry over.
        self._shm_channels: List[ShmArrayChannel] = []
        self._edge_rings: Dict[int, ShmArrayChannel] = {}
        for runtime in self.runtimes:
            for edge in runtime.boundary_in:
                capacity = ring_capacity or ring_capacity_for(
                    runtime, edge.index, self.max_lead)
                ring = ShmArrayChannel.from_channel(
                    runtime.channels[edge.index], capacity=capacity)
                runtime.replace_channel(edge.index, ring)
                self._shm_channels.append(ring)
                self._edge_rings[edge.index] = ring
        head = self._head_runtime
        capacity = ring_capacity or ring_capacity_for(
            head, GRAPH_INPUT, self.max_lead)
        self._input_ring = ShmArrayChannel.from_channel(
            head.channels[GRAPH_INPUT], capacity=capacity)
        head.replace_channel(GRAPH_INPUT, self._input_ring)
        self._shm_channels.append(self._input_ring)

        self._locals: List[BlobRuntime] = list(self.runtimes)
        self._pending: deque = deque()
        self._input_lock = threading.Lock()
        self._children_live = False
        self._closed = False

    # -- input staging -------------------------------------------------------

    def push_input(self, items: Iterable[Any]) -> None:
        with self._input_lock:
            self._pending.extend(items)
            self._pump_input()

    def _pump_input(self) -> None:
        """Top the input ring up from the pending queue (lock held)."""
        space = self._input_ring.space()
        if space <= 0 or not self._pending:
            return
        batch = []
        while space > 0 and self._pending:
            batch.append(self._pending.popleft())
            space -= 1
        self._input_ring.push_many(batch)

    def _pump_locked(self) -> None:
        with self._input_lock:
            self._pump_input()

    # -- phases --------------------------------------------------------------

    def run_steady(self, iterations: int = 1) -> None:
        if iterations <= 0:
            return
        if self._closed:
            raise RuntimeError("executor is closed")
        if not self.initialized:
            self._pump_locked()
            self.run_init()
        if min(self.threads, len(self._locals)) > 1:
            self._ensure_children()
        self._pump_locked()
        super().run_steady(iterations)

    def _run_serial(self, iterations: int) -> None:
        # The degraded single-process path still pulls pending input
        # into the ring between iterations.
        for _ in range(iterations):
            self._pump_locked()
            for runtime in self.runtimes:
                out = self._ship(runtime.run_steady())
                if out:
                    self._outputs.extend(out)

    def drain(self) -> int:
        self._rejoin_children()
        total = 0
        while True:
            self._pump_locked()
            fired = super().drain()
            total += fired
            with self._input_lock:
                pending = bool(self._pending)
            if not fired or not pending:
                break
        return total

    def run_on(self, items: Iterable[Any]) -> List[Any]:
        """Mirror of :meth:`GraphInterpreter.run_on` over ring + queue."""
        self.push_input(items)
        head = self.graph.head
        head_extra = max(head.peek_rates[0] - head.pop_rates[0], 0)

        def available() -> int:
            with self._input_lock:
                return len(self._input_ring) + len(self._pending)

        if not self.initialized:
            if available() >= self.schedule.init_in + head_extra:
                self._pump_locked()
                self.run_init()
            else:
                self.drain()
                return self.take_output()
        steady_in = self.schedule.steady_in
        if steady_in > 0:
            pending = (available() - head_extra) // steady_in
            if pending > 0:
                self.run_steady(pending)
        self.drain()
        return self.take_output()

    # -- worker lifecycle ----------------------------------------------------

    def _ensure_children(self) -> None:
        if self._children_live:
            return
        clock = lambda: self.tracer.now  # noqa: E731 - tracer-bound clock
        for bi, local in enumerate(self._locals):
            ship_to = {edge.index: self._edge_rings[edge.index]
                       for edge in local.boundary_out}
            proxy = fork_blob_worker(local, bi, self.tracer, clock,
                                     "proc%d" % bi, ship_to=ship_to)
            if local.has_head:
                proxy.input_pump = self._pump_locked
            self.runtimes[bi] = proxy
        self._children_live = True
        self.tracer.instant("parallel", "parallel.fork",
                            blobs=len(self._locals))

    def _rejoin_children(self) -> None:
        if not self._children_live:
            return
        for runtime in self.runtimes:
            if isinstance(runtime, RemoteBlobRuntime):
                runtime.rejoin()
                runtime.shutdown()
        self.runtimes = list(self._locals)
        self._children_live = False

    def close(self) -> None:
        """Terminate any live workers and release every shm segment.

        Safe on every path — normal completion, mid-run abort, repeated
        calls — and required: the rings live in ``/dev/shm`` until
        unlinked (glosslint V003 probes exactly this).
        """
        if self._closed:
            return
        for runtime in self.runtimes:
            if isinstance(runtime, RemoteBlobRuntime):
                runtime.shutdown(abort=True)
        self.runtimes = list(self._locals)
        self._children_live = False
        for ring in self._shm_channels:
            ring.unlink()
        self._closed = True

    def __enter__(self) -> "ProcessBlobExecutor":
        return self

    def __exit__(self, exc_type, exc, _tb) -> bool:
        self.close()
        return False

    def __del__(self):  # pragma: no cover - GC-order dependent
        try:
            self.close()
        except Exception:
            pass
