"""True multi-core execution of independent blobs.

The cluster layer *simulates* parallelism: every blob gets its own
simulated node, but all of their Python work runs on one real thread.
:class:`ParallelBlobExecutor` makes the blob decomposition pay off on
real hardware — each blob of a partition runs its steady iterations on
its own thread, handing items across boundary edges through
thread-safe :class:`~repro.runtime.channels.SharedChannel` /
:class:`~repro.runtime.channels.SharedArrayChannel` buffers with the
same ``total_pushed``/``total_popped`` accounting as the serial path.

This is profitable despite the GIL because a vectorized (or codegen)
blob spends its iteration inside NumPy kernels, which release the GIL
for the bulk of the work; pipeline-parallel blobs then genuinely
overlap.  Scheduling is readiness-driven: a blob thread runs an
iteration when its boundary inputs hold a full iteration's worth of
items, and a ``max_lead`` bound keeps producers from racing arbitrarily
far ahead of consumers (bounded buffering, deterministic memory).

Determinism contract: every blob executes exactly the iteration
sequence the serial executor would, boundary items are shipped in
iteration order per edge, and graph output is extended under the lock
by the single tail blob — so output is byte-identical to the
:class:`~repro.runtime.interpreter.GraphInterpreter` oracle regardless
of thread interleaving (the test suite asserts this per app and on
random graphs).

``REPRO_PARALLEL=1`` additionally opts the *cluster* layer in: a
:class:`~repro.cluster.instance.GraphInstance` with two or more blobs
then executes steady iterations on a thread pool sized from the
simulated nodes' core counts (see ``GraphInstance._setup_parallel``),
making ``cores_per_node`` mean real parallelism.
"""

from __future__ import annotations

import os
import threading
from typing import Any, Dict, Iterable, List, Optional, Sequence

from repro.graph.topology import StreamGraph
from repro.obs.tracer import NULL_TRACER
from repro.runtime.channels import GRAPH_INPUT, GRAPH_OUTPUT, as_shared
from repro.runtime.executor import BlobRuntime
from repro.runtime.state import ProgramState
from repro.sched.schedule import Schedule, make_schedule

__all__ = ["ParallelBlobExecutor", "parallel_backend", "parallel_enabled",
           "parallel_workers"]


def parallel_backend() -> str:
    """Which real-parallelism backend ``REPRO_PARALLEL`` selects.

    ``"thread"`` for ``1``/``thread``/``threads`` (the historical
    opt-in), ``"process"`` for ``process``/``processes``/``proc``/``2``
    (forked workers over shared-memory rings — see
    :mod:`repro.runtime.procexec`), ``"off"`` otherwise.
    """
    value = os.environ.get("REPRO_PARALLEL", "0").strip().lower()
    if value in ("1", "thread", "threads"):
        return "thread"
    if value in ("2", "proc", "process", "processes"):
        return "process"
    return "off"


def parallel_enabled() -> bool:
    """``REPRO_PARALLEL`` opts the cluster layer into real parallelism."""
    return parallel_backend() != "off"


def parallel_workers(n_blobs: int, cores: float) -> int:
    """Thread count for an instance: one per blob, bounded by the
    simulated node's core count (that is the resource the paper's
    placement reasons about, so it is the bound that makes
    ``cores_per_node`` mean something real)."""
    return max(1, min(int(n_blobs), int(cores)))


class ParallelBlobExecutor:
    """Run the blobs of one partition concurrently on real threads.

    ``partition`` is a sequence of worker-id collections, one per
    blob, covering the whole graph; blob boundaries must respect
    topological order (every boundary edge flows from a lower-indexed
    blob to a higher-indexed one after sorting by earliest topological
    position).  ``threads`` caps real concurrency (default: the
    machine's core count); ``threads=1`` or a single blob degrades to
    an exact serial execution with no thread machinery at all.

    The public surface mirrors :class:`GraphInterpreter` where it
    matters to tests and tools: ``push_input`` / ``run_init`` /
    ``run_steady`` / ``drain`` / ``run_on`` / ``take_output`` /
    ``capture_state``.
    """

    #: Condition wait quantum; also the stall-detection sampling period.
    _WAIT_SECONDS = 0.1
    #: Consecutive no-progress waits before declaring a stall.
    _STALL_STRIKES = 5

    def __init__(
        self,
        graph: StreamGraph,
        partition: Sequence[Iterable[int]],
        schedule: Optional[Schedule] = None,
        check_rates: bool = False,
        threads: Optional[int] = None,
        max_lead: int = 4,
        tracer=None,
    ):
        self.graph = graph
        self.schedule = schedule or make_schedule(graph)
        self.tracer = tracer if tracer is not None else NULL_TRACER
        blob_sets = [set(ids) for ids in partition]
        covered: set = set()
        for ids in blob_sets:
            if covered & ids:
                raise ValueError("partition blobs overlap: %s"
                                 % sorted(covered & ids))
            covered |= ids
        all_ids = {w.worker_id for w in graph.workers}
        if covered != all_ids:
            raise ValueError("partition does not cover the graph: missing %s"
                             % sorted(all_ids - covered))
        # Order blobs by earliest topological position so the serial
        # path is a single topo pass and boundary edges point forward.
        topo_pos = {w: i for i, w in enumerate(graph.topological_order())}
        blob_sets.sort(key=lambda ids: min(topo_pos[w] for w in ids))
        self.runtimes: List[BlobRuntime] = [
            BlobRuntime(graph, self.schedule, ids, check_rates=check_rates)
            for ids in blob_sets
        ]
        owner = {w: bi for bi, ids in enumerate(blob_sets) for w in ids}
        self._consumer: Dict[int, BlobRuntime] = {}
        self._downstream: List[List[int]] = [[] for _ in self.runtimes]
        for bi, runtime in enumerate(self.runtimes):
            for edge in runtime.boundary_in:
                self._consumer[edge.index] = runtime
            for edge in runtime.boundary_out:
                ci = owner[edge.dst]
                if ci <= bi:
                    raise ValueError(
                        "partition is not topologically convex: edge %d "
                        "flows from blob %d back into blob %d"
                        % (edge.index, bi, ci))
                if ci not in self._downstream[bi]:
                    self._downstream[bi].append(ci)
        # Boundary handoff channels become thread-safe: the producer's
        # thread delivers into them while the consumer's thread runs.
        for runtime in self.runtimes:
            for edge in runtime.boundary_in:
                runtime.replace_channel(
                    edge.index, as_shared(runtime.channels[edge.index]))
        heads = [rt for rt in self.runtimes if rt.has_head]
        tails = [rt for rt in self.runtimes if rt.has_tail]
        if len(heads) != 1 or len(tails) != 1:
            raise ValueError("partition must contain the graph head and "
                             "tail exactly once")
        self._head_runtime = heads[0]
        # External input is delivered between run_steady calls only, but
        # share it anyway: callers may feed from another thread (the
        # cluster layer does exactly that under REPRO_PARALLEL=1).
        self._head_runtime.replace_channel(
            GRAPH_INPUT, as_shared(self._head_runtime.channels[GRAPH_INPUT]))
        self.threads = threads if threads is not None else (os.cpu_count()
                                                            or 1)
        self.max_lead = max(1, int(max_lead))
        self._outputs: List[Any] = []
        self.initialized = False
        self.iteration = 0

    # -- I/O -----------------------------------------------------------------

    def push_input(self, items: Iterable[Any]) -> None:
        self._head_runtime.channels[GRAPH_INPUT].push_many(items)

    def take_output(self) -> List[Any]:
        items, self._outputs = self._outputs, []
        return items

    @property
    def consumed(self) -> int:
        return self._head_runtime.channels[GRAPH_INPUT].total_popped

    def _ship(self, staged: Dict[int, List[Any]]) -> Optional[List[Any]]:
        """Deliver staged boundary items downstream; return graph output."""
        out = staged.pop(GRAPH_OUTPUT, None)
        for key, items in staged.items():
            self._consumer[key].deliver(key, items)
        return out

    # -- phases --------------------------------------------------------------

    def run_init(self) -> None:
        """Init schedule, serial in topological blob order."""
        if self.initialized:
            raise RuntimeError("already initialized")
        for runtime in self.runtimes:
            out = self._ship(runtime.run_init())
            if out:
                self._outputs.extend(out)
        self.initialized = True

    def run_steady(self, iterations: int = 1) -> None:
        if iterations <= 0:
            return
        if not self.initialized:
            self.run_init()
        effective = min(self.threads, len(self.runtimes))
        span = self.tracer.begin(
            "parallel", "parallel.run", blobs=len(self.runtimes),
            threads=effective, iterations=iterations)
        try:
            if effective <= 1 or len(self.runtimes) == 1:
                self._run_serial(iterations)
            else:
                self._run_threaded(iterations, effective)
        finally:
            span.finish()
        self.iteration += iterations

    def _run_serial(self, iterations: int) -> None:
        # One topological pass per iteration: each blob's iteration n
        # ships before any downstream blob runs its own iteration n, so
        # readiness (leftover + steady flow) holds by construction.
        for _ in range(iterations):
            for runtime in self.runtimes:
                out = self._ship(runtime.run_steady())
                if out:
                    self._outputs.extend(out)

    def _run_threaded(self, iterations: int, n_threads: int) -> None:
        cond = threading.Condition()
        done = [0] * len(self.runtimes)
        slots = [n_threads]   # bound on concurrently running iterations
        running = [0]
        failure: List[BaseException] = []
        downstream = self._downstream
        max_lead = self.max_lead

        def runnable(bi: int, runtime: BlobRuntime) -> bool:
            return (slots[0] > 0
                    and all(done[bi] - done[ci] < max_lead
                            for ci in downstream[bi])
                    and runtime.ready_for_steady())

        def work(bi: int) -> None:
            runtime = self.runtimes[bi]
            ran = 0
            while True:
                with cond:
                    strikes = 0
                    while not (failure or done[bi] >= iterations
                               or runnable(bi, runtime)):
                        progress = (sum(done), running[0])
                        cond.wait(self._WAIT_SECONDS)
                        if (sum(done), running[0]) == progress \
                                and running[0] == 0:
                            strikes += 1
                            if strikes >= self._STALL_STRIKES:
                                failure.append(RuntimeError(
                                    "parallel steady execution stalled: "
                                    "blob %d waiting for input at "
                                    "iteration %d/%d (under-provisioned "
                                    "graph input?)"
                                    % (bi, done[bi], iterations)))
                                cond.notify_all()
                                break
                        else:
                            strikes = 0
                    if failure or done[bi] >= iterations:
                        break
                    slots[0] -= 1
                    running[0] += 1
                try:
                    staged = runtime.run_steady()
                except BaseException as exc:
                    with cond:
                        failure.append(exc)
                        slots[0] += 1
                        running[0] -= 1
                        cond.notify_all()
                    return
                out = self._ship(staged)
                ran += 1
                with cond:
                    if out:
                        # Only the tail blob produces graph output, so
                        # extension order == its iteration order.
                        self._outputs.extend(out)
                    done[bi] += 1
                    slots[0] += 1
                    running[0] -= 1
                    cond.notify_all()
            self.tracer.instant("parallel", "parallel.blob", blob=bi,
                                iterations=ran)

        threads = [
            threading.Thread(target=work, args=(bi,),
                             name="blob-%d" % bi, daemon=True)
            for bi in range(len(self.runtimes))
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        if failure:
            raise failure[0]

    def drain(self) -> int:
        """Opportunistic fixpoint drain, serial in topological order."""
        total = 0
        while True:
            fired = 0
            for runtime in self.runtimes:
                firings, staged = runtime.drain_pass()
                out = self._ship(staged)
                if out:
                    self._outputs.extend(out)
                fired += firings
            total += fired
            if not fired:
                break
        return total

    def run_on(self, items: Iterable[Any]) -> List[Any]:
        """Feed items, run every possible steady iteration, drain.

        Mirrors :meth:`GraphInterpreter.run_on` exactly (same iteration
        count arithmetic), so outputs are comparable one-to-one.
        """
        self.push_input(items)
        head = self.graph.head
        head_extra = max(head.peek_rates[0] - head.pop_rates[0], 0)
        channel = self._head_runtime.channels[GRAPH_INPUT]
        if not self.initialized:
            if len(channel) >= self.schedule.init_in + head_extra:
                self.run_init()
            else:
                self.drain()
                return self.take_output()
        steady_in = self.schedule.steady_in
        if steady_in > 0:
            pending = (len(channel) - head_extra) // steady_in
            if pending > 0:
                self.run_steady(pending)
        self.drain()
        return self.take_output()

    # -- state ---------------------------------------------------------------

    def capture_state(self) -> ProgramState:
        """Merged per-blob snapshot at the synchronized boundary.

        Blob captures are disjoint except for the global counters,
        where :meth:`ProgramState.merge` keeps the maximum — the head's
        ``consumed`` and the tail's ``emitted`` are the only non-zero
        contributions, so the merge equals a whole-graph capture at the
        same iteration boundary.
        """
        merged = ProgramState()
        for runtime in self.runtimes:
            merged.merge(runtime.capture_state())
        return merged
