"""The fine-grained reference interpreter.

Executes a whole stream graph one firing at a time on a single logical
thread.  This is (a) the canonical-semantics oracle used by the tests
(any distributed, reconfigured execution must produce byte-identical
output), and (b) the engine the runtime switches to while draining,
which is why draining reduces throughput to near zero (paper
Section 4.1).
"""

from __future__ import annotations

import heapq
from typing import Any, Dict, Iterable, List, Optional, Tuple

from repro.graph.topology import StreamGraph
from repro.graph.workers import Worker
from repro.runtime.channels import (
    GRAPH_INPUT,
    GRAPH_OUTPUT,
    ArrayChannel,
    Channel,
    InputPort,
    OutputPort,
)
from repro.runtime.fastpath import (
    FusedPlan,
    select_codegen,
    select_vectorized,
    vector_capable,
)
from repro.runtime.state import ProgramState
from repro.sched.schedule import Schedule, make_schedule

__all__ = ["GraphInterpreter", "fire_worker"]


def fire_worker(
    worker: Worker,
    in_channels: List[Channel],
    out_channels: List[Channel],
    check_rates: bool = True,
    rate_only: bool = False,
) -> None:
    """Execute one firing of ``worker``.

    With ``rate_only`` the work function is skipped and placeholder
    items flow instead — identical rate behaviour at a fraction of the
    cost, used by the timing benchmarks.
    """
    if rate_only:
        for channel, pop in zip(in_channels, worker.pop_rates):
            channel.pop_many(pop)
        for channel, push in zip(out_channels, worker.push_rates):
            channel.push_many([None] * push)
        return
    if check_rates:
        inputs = [
            InputPort(channel, pop, peek)
            for channel, pop, peek in zip(
                in_channels, worker.pop_rates, worker.peek_rates
            )
        ]
        outputs = [
            OutputPort(channel, push)
            for channel, push in zip(out_channels, worker.push_rates)
        ]
        worker.fire(inputs, outputs)
        for port in inputs:
            port.finish(worker.name)
        for port in outputs:
            port.finish(worker.name)
    else:
        worker.fire(in_channels, out_channels)


class GraphInterpreter:
    """Interpret a whole stream graph with canonical SDF semantics."""

    def __init__(
        self,
        graph: StreamGraph,
        schedule: Optional[Schedule] = None,
        state: Optional[ProgramState] = None,
        check_rates: bool = True,
        rate_only: bool = False,
        vectorize: Optional[bool] = None,
        codegen: Optional[bool] = None,
    ):
        self.graph = graph
        self.check_rates = check_rates
        self.rate_only = rate_only
        initial_contents = (
            {k: len(v) for k, v in state.edge_contents.items()}
            if state is not None else None
        )
        self.schedule = schedule or make_schedule(
            graph, initial_contents=initial_contents
        )
        # Backend selection: ``None`` picks the vectorized backend
        # automatically whenever the selection rule allows (all workers
        # numeric, no rate checking, real data, batches large enough to
        # amortize); ``False`` forces the scalar backend; ``True``
        # demands vectorization and fails loudly when the graph cannot
        # support it.
        if vectorize is None:
            mean_firings = (sum(self.schedule.repetitions.values())
                            / max(len(graph.workers), 1))
            self.vectorized = select_vectorized(
                graph.workers, check_rates, rate_only,
                mean_firings=mean_firings)
        elif vectorize:
            if check_rates or rate_only:
                raise ValueError(
                    "vectorize=True requires check_rates=False and "
                    "rate_only=False")
            if not vector_capable(graph.workers):
                raise ValueError(
                    "graph is not vector-capable: %s"
                    % sorted(w.name for w in graph.workers
                             if not w.vector_items))
            self.vectorized = True
        else:
            self.vectorized = False
        # Codegen layers on the vectorized backend: ``None`` follows
        # the REPRO_CODEGEN opt-in, ``True`` demands it (and therefore
        # a vectorized plan), ``False`` pins the _VectorStep path.
        if codegen is None:
            self.codegen = select_codegen(self.vectorized)
        elif codegen:
            if not self.vectorized:
                raise ValueError(
                    "codegen=True requires the vectorized backend "
                    "(pass vectorize=True or let selection pick it)")
            self.codegen = True
        else:
            self.codegen = False
        edge_channel = ArrayChannel if self.vectorized else Channel
        self.channels: Dict[int, Channel] = {
            edge.index: edge_channel() for edge in graph.edges
        }
        # The external pseudo-channels stay deques: input may carry
        # arbitrary objects before the graph sees it and take_output
        # hands the deque contents back verbatim.
        self.channels[GRAPH_INPUT] = Channel()
        self.channels[GRAPH_OUTPUT] = Channel()
        if state is not None:
            self._install_state(state)
        self._in_channels: Dict[int, List[Channel]] = {}
        self._out_channels: Dict[int, List[Channel]] = {}
        for worker in graph.workers:
            self._in_channels[worker.worker_id] = [
                self.channels[edge.index if edge is not None else GRAPH_INPUT]
                for edge in (graph.in_edge(worker.worker_id, p)
                             for p in range(worker.n_inputs))
            ]
            self._out_channels[worker.worker_id] = [
                self.channels[edge.index if edge is not None else GRAPH_OUTPUT]
                for edge in (graph.out_edge(worker.worker_id, p)
                             for p in range(worker.n_outputs))
            ]
        self._topo = graph.topological_order()
        # Prebound per-worker firing context: resolving the worker and
        # its peek requirements once here keeps them out of the
        # per-firing loops in can_fire/fire.
        self._fire_bindings: Dict[int, Tuple[Worker, List[Channel],
                                             List[Channel]]] = {}
        self._peek_bindings: Dict[int, List[Tuple[Channel, int]]] = {}
        for worker in graph.workers:
            worker_id = worker.worker_id
            self._fire_bindings[worker_id] = (
                worker,
                self._in_channels[worker_id],
                self._out_channels[worker_id],
            )
            self._peek_bindings[worker_id] = [
                (channel, peek)
                for channel, peek in zip(self._in_channels[worker_id],
                                         worker.peek_rates)
                if peek > 0
            ]
        # Worklist support for drain(): topo position and successors.
        self._topo_position = {w: i for i, w in enumerate(self._topo)}
        self._successors = {
            w: list(dict.fromkeys(graph.successors(w)))
            for w in self._topo
        }
        self._fused: Optional[FusedPlan] = None
        self.initialized = False
        self.iteration = 0

    # -- I/O -----------------------------------------------------------------

    def push_input(self, items: Iterable[Any]) -> None:
        self.channels[GRAPH_INPUT].push_many(items)

    def take_output(self) -> List[Any]:
        channel = self.channels[GRAPH_OUTPUT]
        items = list(channel.items)
        channel.items.clear()
        channel.total_popped += len(items)
        return items

    @property
    def consumed(self) -> int:
        """Items popped from the graph input so far."""
        return self.channels[GRAPH_INPUT].total_popped

    @property
    def emitted(self) -> int:
        """Items pushed to the graph output so far."""
        return self.channels[GRAPH_OUTPUT].total_pushed

    # -- firing ----------------------------------------------------------------

    def can_fire(self, worker_id: int) -> bool:
        for channel, peek in self._peek_bindings[worker_id]:
            if len(channel) < peek:
                return False
        return True

    def fire(self, worker_id: int) -> None:
        worker, ins, outs = self._fire_bindings[worker_id]
        fire_worker(
            worker, ins, outs,
            check_rates=self.check_rates,
            rate_only=self.rate_only,
        )

    def _run_order(self, order: List[Tuple[int, int]]) -> None:
        for worker_id, firings in order:
            for _ in range(firings):
                self.fire(worker_id)

    # -- phases ------------------------------------------------------------------

    def run_init(self) -> None:
        """Execute the initialization schedule (requires input buffered)."""
        if self.initialized:
            raise RuntimeError("already initialized")
        self._run_order(self.schedule.init_order())
        self.initialized = True

    def _fused_plan(self) -> FusedPlan:
        if self._fused is None:
            self._fused = FusedPlan(
                self.graph, self.schedule.firing_order(),
                self._in_channels, self._out_channels,
                rate_only=self.rate_only,
                vectorized=self.vectorized,
                codegen=self.codegen,
            )
        return self._fused

    def run_steady(self, iterations: int = 1) -> None:
        """Execute ``iterations`` steady-state iterations.

        Steady iterations route through the fused fast path unless
        ``check_rates`` demands canonical per-firing validation; init
        and drain always stay per-firing.
        """
        if not self.initialized:
            self.run_init()
        if self.rate_only or not self.check_rates:
            self._fused_plan().run(iterations)
            self.iteration += iterations
            return
        order = self.schedule.firing_order()
        for _ in range(iterations):
            self._run_order(order)
            self.iteration += 1

    def run_on(self, items: Iterable[Any]) -> List[Any]:
        """Feed ``items``, run as many iterations as possible, drain, return output.

        Convenience for tests: the canonical output of a graph on a
        finite input prefix.
        """
        self.push_input(items)
        head = self.graph.head
        head_extra = max(head.peek_rates[0] - head.pop_rates[0], 0)
        if not self.initialized:
            if len(self.channels[GRAPH_INPUT]) >= (
                self.schedule.init_in + head_extra
            ):
                self.run_init()
            else:
                self.drain()
                return self.take_output()
        steady_in = self.schedule.steady_in
        while len(self.channels[GRAPH_INPUT]) >= steady_in + head_extra:
            self.run_steady()
        self.drain()
        return self.take_output()

    def drain(self) -> int:
        """Fire opportunistically until nothing can fire; return firings.

        This flushes everything flushable; items pinned by peeking
        buffers or indivisible pop chunks stay behind (paper
        footnote 2).

        Worklist formulation: a worker is only (re)examined when one of
        its input channels changed since its last attempt.  Seeded with
        the full topological order and processed in topo position, a
        worker's predecessors are always exhausted before it runs, so
        firing counts and outputs match the naive fixpoint scan that
        re-walks the whole order until quiescence.
        """
        total = 0
        position = self._topo_position
        heap = list(range(len(self._topo)))  # positions, already sorted
        pending = set(self._topo)
        while heap:
            worker_id = self._topo[heapq.heappop(heap)]
            if worker_id not in pending:
                continue
            pending.discard(worker_id)
            fired = False
            while self.can_fire(worker_id):
                self.fire(worker_id)
                total += 1
                fired = True
            if not fired:
                continue
            # This worker's outputs changed: requeue any successor not
            # already awaiting examination.
            for successor in self._successors[worker_id]:
                if successor not in pending:
                    pending.add(successor)
                    heapq.heappush(heap, position[successor])
        return total

    def run_to_boundary(self, iteration: int) -> None:
        """Run init plus steady iterations up to the given boundary."""
        if not self.initialized:
            self.run_init()
        while self.iteration < iteration:
            self.run_steady()

    # -- state --------------------------------------------------------------------

    def capture_state(self) -> ProgramState:
        """Snapshot worker states and all buffered items.

        The graph-input channel is excluded: unconsumed input is
        re-sent by the duplicator rather than carried in the state
        (see :mod:`repro.core.duplication`).
        """
        state = ProgramState(consumed=self.consumed, emitted=self.emitted)
        for worker in self.graph.workers:
            if worker.is_stateful:
                state.worker_states[worker.worker_id] = worker.get_state()
        for edge in self.graph.edges:
            channel = self.channels[edge.index]
            if len(channel):
                state.edge_contents[edge.index] = channel.snapshot()
        return state

    def _install_state(self, state: ProgramState) -> None:
        for worker_id, worker_state in state.worker_states.items():
            self.graph.worker(worker_id).set_state(worker_state)
        for edge_index, items in state.edge_contents.items():
            if edge_index == GRAPH_INPUT:
                continue
            self.channels[edge_index].push_many(items)
