"""The fused steady-state execution fast path.

The reference interpreter executes one firing at a time: every firing
re-resolves the worker, re-zips its channel lists and (with rate
checking on) allocates fresh port views.  That is the right shape for
the canonical oracle and for draining, but steady-state execution
repeats the *same* firing order every iteration, so all of that
per-firing work can be done once.

:class:`FusedPlan` compiles a (graph, firing order, channel bindings)
triple into a linear program: one step per worker with its channels,
firing count and work function prebound.  Rate conformance is checked
once — structurally at plan-build time (arity and per-channel flow
balance over one iteration) and optionally dynamically on the first
executed iteration through *reusable* port objects — and elided on
every firing thereafter.

In ``rate_only`` mode a step collapses further: all of a worker's
firings become one batched ``pop_many`` per input and one batched
``push_many`` of a preallocated placeholder buffer per output,
replacing the per-firing ``[None] * push`` allocation in
:func:`~repro.runtime.interpreter.fire_worker`.  Batching per worker
is exact because the steady schedule already fires each worker all of
its repetitions consecutively in topological order.

In ``vectorized`` mode the data itself is batched, not just the
firings: edges live in contiguous :class:`ArrayChannel` buffers and
each step executes all of a worker's firings as one
``work_batch(inputs, outputs, n_firings)`` call over zero-copy views.
Workers without a batch kernel fall back to the per-firing scalar loop
inside the same plan, so a blob vectorizes as a whole whenever all its
workers merely *store* floats (``vector_items``), even if only some
ship kernels.  Selection is automatic (:func:`select_vectorized`):
never with rate checking or rate-only timing, and — because a NumPy
call over one or two items costs more than the scalar loop it
replaces — only when the steady schedule gives the average worker at
least :data:`VECTOR_MIN_MEAN_FIRINGS` firings per iteration to
amortize over.  ``REPRO_VECTORIZE=0`` opts out entirely;
``REPRO_VECTORIZE=1`` (or ``force``) skips the amortization threshold
and vectorizes every capable graph.

The plan never changes scheduling decisions: it executes exactly the
firing order it was built from, so fused output is byte-identical to
the per-firing interpreter (the test suite asserts this for all
apps and for the vectorized backend).
"""

from __future__ import annotations

import os
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from repro.graph.topology import StreamGraph
from repro.graph.workers import Worker
from repro.runtime.channels import (
    ArrayChannel,
    Channel,
    HAVE_NUMPY,
    InputPort,
    OutputPort,
    RateViolationError,
)

try:
    import numpy as _np
except ImportError:  # pragma: no cover - the toolchain bakes numpy in
    _np = None

__all__ = [
    "FusedPlan",
    "ReusableInputPort",
    "ReusableOutputPort",
    "VECTOR_MIN_MEAN_FIRINGS",
    "select_codegen",
    "select_vectorized",
    "vector_capable",
]

#: Auto-selection threshold: mean steady firings per worker below
#: which batch kernels cannot amortize their per-call overhead and the
#: scalar backend stays faster.  Measured break-even on the shipped
#: apps sits around 4-8 firings; schedules boosted for throughput
#: (cluster multipliers, the vectorized benchmark tier) clear it by
#: orders of magnitude.
VECTOR_MIN_MEAN_FIRINGS = 8.0


def vector_capable(workers: Iterable[Worker]) -> bool:
    """Structural capability: may these workers' edges be float64 buffers?

    True when NumPy is available and every worker declares
    ``vector_items`` — the conjunction matters because edges are shared,
    so one worker exchanging non-numeric items (e.g. ``Counter``'s
    tagged tuples) excludes its whole blob.
    """
    if not HAVE_NUMPY:
        return False
    return all(worker.vector_items for worker in workers)


def select_vectorized(workers: Iterable[Worker], check_rates: bool,
                      rate_only: bool,
                      mean_firings: float = None) -> bool:
    """The backend-selection rule applied per graph (or per blob).

    Vectorized execution is chosen exactly when (a) canonical
    per-firing rate enforcement is off — ``check_rates`` keeps the
    scalar oracle authoritative, (b) the run moves real data
    (``rate_only`` flows placeholders that have no numeric form),
    (c) every worker opts in structurally, (d) the operator has not
    set ``REPRO_VECTORIZE=0``, and (e) the steady schedule offers
    enough firings per worker (``mean_firings``, when the caller knows
    it) to amortize the per-call overhead of a batch kernel.

    ``REPRO_VECTORIZE=1`` (or ``force``) bypasses the amortization
    threshold: every capable graph vectorizes regardless of batch
    size.  Correctness never depends on the threshold — both backends
    are byte-identical — so forcing is always safe, just not always
    faster.
    """
    if check_rates or rate_only:
        return False
    env = os.environ.get("REPRO_VECTORIZE", "auto")
    if env == "0":
        return False
    if (env not in ("1", "force")
            and mean_firings is not None
            and mean_firings < VECTOR_MIN_MEAN_FIRINGS):
        return False
    return vector_capable(workers)


def select_codegen(vectorized: bool) -> bool:
    """Whether a vectorized plan should compile to a generated kernel.

    Codegen is strictly layered on the vectorized backend (it
    specializes the ``_VectorStep`` list, so there is nothing to
    generate without one) and is opt-in: ``REPRO_CODEGEN=1`` (or
    ``force``) turns it on wherever vectorization is active.  It is
    behavior-preserving by contract — byte-identical output, channels
    left fully consistent after every iteration — so forcing it is
    always safe; the default stays off to keep the well-measured
    vectorized tier the baseline.
    """
    if not vectorized:
        return False
    return os.environ.get("REPRO_CODEGEN", "0") in ("1", "force")


class ReusableInputPort(InputPort):
    """An :class:`InputPort` whose budget can be re-armed between firings.

    The slow path allocates a fresh port per firing; the fused path's
    validated first iteration reuses one port object per (worker,
    input) pair and just resets its counter.
    """

    __slots__ = ()

    def reset(self) -> None:
        self.popped = 0


class ReusableOutputPort(OutputPort):
    """An :class:`OutputPort` with a re-armable budget (see above)."""

    __slots__ = ()

    def reset(self) -> None:
        self.pushed = 0


class _Step:
    """One worker's firings within a steady iteration, fully prebound."""

    __slots__ = ("worker", "fire", "ins", "outs", "firings",
                 "in_ports", "out_ports")

    def __init__(self, worker, ins: List[Channel], outs: List[Channel],
                 firings: int):
        self.worker = worker
        self.fire = worker.fire
        self.ins = ins
        self.outs = outs
        self.firings = firings
        self.in_ports = [
            ReusableInputPort(channel, pop, peek)
            for channel, pop, peek in zip(ins, worker.pop_rates,
                                          worker.peek_rates)
        ]
        self.out_ports = [
            ReusableOutputPort(channel, push)
            for channel, push in zip(outs, worker.push_rates)
        ]


class _VectorStep:
    """One worker's firings as a single batch call, channels prebound.

    ``in_specs`` rows are ``(channel, consume, window, is_array)`` —
    ``window`` includes the peeking overhang beyond the ``consume``
    items the batch pops; ``out_specs`` rows are ``(channel, count,
    is_array)``.  Non-array channels (the graph-input/-output deques
    and blob staging buffers) are bridged through temporary arrays.
    ``batch`` is ``None`` for workers without a kernel: they run the
    per-firing scalar loop inside the vectorized plan.
    """

    __slots__ = ("worker", "fire", "ins", "outs", "firings", "batch",
                 "in_specs", "out_specs")

    def __init__(self, step: "_Step"):
        worker = step.worker
        self.worker = worker
        self.fire = step.fire
        self.ins = step.ins
        self.outs = step.outs
        self.firings = step.firings
        self.batch = worker.work_batch if worker.supports_work_batch else None
        self.in_specs = [
            (channel, pop * step.firings,
             pop * step.firings + (peek - pop),
             isinstance(channel, ArrayChannel))
            for channel, pop, peek in zip(step.ins, worker.pop_rates,
                                          worker.peek_rates)
        ]
        self.out_specs = [
            (channel, push * step.firings, isinstance(channel, ArrayChannel))
            for channel, push in zip(step.outs, worker.push_rates)
        ]


class FusedPlan:
    """A steady-state firing order compiled into a linear program.

    ``order`` is the (worker_id, firings) sequence to flatten —
    typically ``schedule.firing_order()`` for a whole graph, or the
    blob-restricted equivalent.  ``in_channels`` / ``out_channels``
    map worker id to already-bound channel lists, exactly as the
    interpreter and blob executor hold them.
    """

    def __init__(
        self,
        graph: StreamGraph,
        order: Sequence[Tuple[int, int]],
        in_channels: Mapping[int, List[Channel]],
        out_channels: Mapping[int, List[Channel]],
        rate_only: bool = False,
        vectorized: bool = False,
        codegen: bool = False,
    ):
        self.graph = graph
        self.rate_only = rate_only
        if vectorized and rate_only:
            raise ValueError(
                "vectorized and rate_only modes are mutually exclusive")
        if codegen and not vectorized:
            raise ValueError("codegen requires the vectorized backend")
        self.vectorized = vectorized
        self.codegen = codegen
        self.codegen_error: Optional[str] = None
        self._codegen = None
        self.validated = False
        self.iterations = 0
        self._steps: List[_Step] = []
        for worker_id, firings in order:
            if firings <= 0:
                continue
            worker = graph.worker(worker_id)
            ins = in_channels[worker_id]
            outs = out_channels[worker_id]
            if (len(ins) != worker.n_inputs
                    or len(outs) != worker.n_outputs):
                raise RateViolationError(
                    "%s bound to %d/%d channels, declares %d/%d ports"
                    % (worker.name, len(ins), len(outs),
                       worker.n_inputs, worker.n_outputs))
            self._steps.append(_Step(worker, ins, outs, firings))
        self._check_flow_balance()
        # Rate-only linear program: per worker, one batched pop per
        # input channel and one batched push of a preallocated
        # placeholder buffer per output channel.  Steps stay in order —
        # a step's pops may consume what earlier steps pushed this very
        # iteration, so pops and pushes cannot be hoisted across steps.
        self._rate_steps: List[Tuple[List[Tuple[Channel, int]],
                                     List[Tuple[Channel, List[None]]]]] = []
        for step in self._steps:
            worker = step.worker
            pops = [
                (channel, pop * step.firings)
                for channel, pop in zip(step.ins, worker.pop_rates)
                if pop
            ]
            pushes = [
                (channel, [None] * (push * step.firings))
                for channel, push in zip(step.outs, worker.push_rates)
                if push
            ]
            if pops or pushes:
                self._rate_steps.append((pops, pushes))
        # Vectorized linear program: one batch kernel call per step
        # over zero-copy channel views (build-time capability check;
        # per-worker scalar fallback inside the same plan).
        self._vector_steps: List[_VectorStep] = []
        if vectorized:
            if _np is None:  # pragma: no cover - numpy is a baked-in dep
                raise RuntimeError("vectorized plan requires numpy")
            for step in self._steps:
                if not step.worker.vector_items:
                    raise ValueError(
                        "vectorized plan requires vector_items on every "
                        "worker; %s does not declare it" % step.worker.name)
                self._vector_steps.append(_VectorStep(step))

    # -- build-time rate checking -------------------------------------------

    def _check_flow_balance(self) -> None:
        """Once-per-build rate check, elided from every firing after.

        Any channel both produced and consumed inside the plan must
        see production equal consumption over one iteration —
        otherwise the firing order is not a steady schedule for these
        rates and repeated execution would drift.
        """
        # Channels are keyed by object (identity); the tallies are only
        # ever looked up per step, never iterated, so no ordering leaks.
        produced: Dict[Channel, int] = {}
        consumed: Dict[Channel, int] = {}
        for step in self._steps:
            worker = step.worker
            for channel, pop in zip(step.ins, worker.pop_rates):
                consumed[channel] = (consumed.get(channel, 0)
                                     + pop * step.firings)
            for channel, push in zip(step.outs, worker.push_rates):
                produced[channel] = (produced.get(channel, 0)
                                     + push * step.firings)
        for step in self._steps:
            worker = step.worker
            for channel in step.ins:
                if (channel in produced
                        and produced[channel] != consumed[channel]):
                    raise RateViolationError(
                        "unbalanced channel into %s: %d produced, "
                        "%d consumed per iteration"
                        % (worker.name, produced[channel],
                           consumed[channel]))

    # -- introspection -------------------------------------------------------

    @property
    def firings_per_iteration(self) -> int:
        return sum(step.firings for step in self._steps)

    @property
    def mode(self) -> str:
        """Execution backend: ``scalar``, ``rate_only``, ``vectorized``
        or ``codegen``."""
        if self.rate_only:
            return "rate_only"
        if self.vectorized:
            return "codegen" if self.codegen else "vectorized"
        return "scalar"

    @property
    def batched_steps(self) -> int:
        """Steps running a batch kernel (vs per-worker scalar fallback)."""
        return sum(1 for step in self._vector_steps
                   if step.batch is not None)

    # -- execution -----------------------------------------------------------

    def _run_vector_steps(self) -> None:
        """One steady iteration of batch kernel calls.

        Channel movement is done by the plan, in step order: inputs
        are consumed (counters advance exactly as ``consume`` scalar
        pops would) before the kernel runs, outputs are reserved as
        writable views the kernel must fill.  Views into an
        ArrayChannel stay valid for the whole step because only
        *other* channels are touched before the kernel finishes.
        """
        for step in self._vector_steps:
            batch = step.batch
            if batch is None:
                fire = step.fire
                ins = step.ins
                outs = step.outs
                for _ in range(step.firings):
                    fire(ins, outs)
                continue
            inputs = []
            for channel, consume, window, is_array in step.in_specs:
                if is_array:
                    view = channel.peek_block(window)
                    if consume:
                        channel.pop_block(consume)
                else:
                    view = _np.array(channel.snapshot_prefix(window),
                                     dtype=_np.float64)
                    view.flags.writeable = False
                    if consume:
                        channel.pop_many(consume)
                inputs.append(view)
            outputs = []
            staged = None
            for channel, count, is_array in step.out_specs:
                if is_array:
                    outputs.append(channel.push_block(count))
                else:
                    buffer = _np.empty(count, dtype=_np.float64)
                    outputs.append(buffer)
                    if staged is None:
                        staged = []
                    staged.append((channel, buffer))
            batch(inputs, outputs, step.firings)
            if staged is not None:
                for channel, buffer in staged:
                    channel.push_many(buffer.tolist())

    def _run_codegen(self) -> None:
        """One steady iteration through the generated kernel.

        The kernel is built lazily on first use (and rebound whenever
        its pinned-channel guard trips); a plan whose shape codegen
        cannot pin falls back to the ``_VectorStep`` path permanently,
        recording why in ``codegen_error``.  The fallback is safe at
        any point: unsupported shapes are detected during binding,
        before the iteration mutates anything.
        """
        kernel = self._codegen
        if kernel is None:
            from repro.runtime.codegen import CodegenKernel
            kernel = self._codegen = CodegenKernel(self)
        if not kernel.run_iteration():
            self.codegen = False
            self.codegen_error = kernel.error
            self._codegen = None
            self._run_vector_steps()

    def run_iteration(self) -> None:
        """One steady iteration with all checks elided."""
        if self.rate_only:
            for pops, pushes in self._rate_steps:
                for channel, count in pops:
                    channel.pop_many(count)
                for channel, buffer in pushes:
                    channel.push_many(buffer)
        elif self.vectorized:
            if self.codegen:
                self._run_codegen()
            else:
                self._run_vector_steps()
        else:
            for step in self._steps:
                fire = step.fire
                ins = step.ins
                outs = step.outs
                for _ in range(step.firings):
                    fire(ins, outs)
        self.iterations += 1

    def run_iteration_validated(self) -> None:
        """One steady iteration through reusable rate-enforcing ports.

        Used for the first executed iteration: dynamically proves that
        every worker honors its declared rates against this plan's
        bindings, after which per-firing checks are elided for good.
        Vectorized plans validate the same way — their first iteration
        runs the scalar port path (byte-identical by construction), and
        batch kernels take over from the second iteration on.
        Rate-only mode needs no dynamic pass — ``pop_many`` already
        enforces the only property placeholders have.
        """
        if self.rate_only:
            self.run_iteration()
            self.validated = True
            return
        for step in self._steps:
            fire = step.fire
            in_ports = step.in_ports
            out_ports = step.out_ports
            name = step.worker.name
            for _ in range(step.firings):
                for port in in_ports:
                    port.reset()
                for port in out_ports:
                    port.reset()
                fire(in_ports, out_ports)
                for port in in_ports:
                    port.finish(name)
                for port in out_ports:
                    port.finish(name)
        self.iterations += 1
        self.validated = True

    def run(self, iterations: int = 1, validate_first: bool = True) -> None:
        """Execute ``iterations`` steady iterations.

        The first iteration ever executed runs through the validated
        path when ``validate_first`` (the rate check "performed once");
        all subsequent iterations take the raw fused path.
        """
        if iterations <= 0:
            return
        if validate_first and not self.validated:
            self.run_iteration_validated()
            iterations -= 1
        for _ in range(iterations):
            self.run_iteration()
