"""The fused steady-state execution fast path.

The reference interpreter executes one firing at a time: every firing
re-resolves the worker, re-zips its channel lists and (with rate
checking on) allocates fresh port views.  That is the right shape for
the canonical oracle and for draining, but steady-state execution
repeats the *same* firing order every iteration, so all of that
per-firing work can be done once.

:class:`FusedPlan` compiles a (graph, firing order, channel bindings)
triple into a linear program: one step per worker with its channels,
firing count and work function prebound.  Rate conformance is checked
once — structurally at plan-build time (arity and per-channel flow
balance over one iteration) and optionally dynamically on the first
executed iteration through *reusable* port objects — and elided on
every firing thereafter.

In ``rate_only`` mode a step collapses further: all of a worker's
firings become one batched ``pop_many`` per input and one batched
``push_many`` of a preallocated placeholder buffer per output,
replacing the per-firing ``[None] * push`` allocation in
:func:`~repro.runtime.interpreter.fire_worker`.  Batching per worker
is exact because the steady schedule already fires each worker all of
its repetitions consecutively in topological order.

The plan never changes scheduling decisions: it executes exactly the
firing order it was built from, so fused output is byte-identical to
the per-firing interpreter (the test suite asserts this for all
apps).
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Sequence, Tuple

from repro.graph.topology import StreamGraph
from repro.runtime.channels import (
    Channel,
    InputPort,
    OutputPort,
    RateViolationError,
)

__all__ = ["FusedPlan", "ReusableInputPort", "ReusableOutputPort"]


class ReusableInputPort(InputPort):
    """An :class:`InputPort` whose budget can be re-armed between firings.

    The slow path allocates a fresh port per firing; the fused path's
    validated first iteration reuses one port object per (worker,
    input) pair and just resets its counter.
    """

    __slots__ = ()

    def reset(self) -> None:
        self.popped = 0


class ReusableOutputPort(OutputPort):
    """An :class:`OutputPort` with a re-armable budget (see above)."""

    __slots__ = ()

    def reset(self) -> None:
        self.pushed = 0


class _Step:
    """One worker's firings within a steady iteration, fully prebound."""

    __slots__ = ("worker", "fire", "ins", "outs", "firings",
                 "in_ports", "out_ports")

    def __init__(self, worker, ins: List[Channel], outs: List[Channel],
                 firings: int):
        self.worker = worker
        self.fire = worker.fire
        self.ins = ins
        self.outs = outs
        self.firings = firings
        self.in_ports = [
            ReusableInputPort(channel, pop, peek)
            for channel, pop, peek in zip(ins, worker.pop_rates,
                                          worker.peek_rates)
        ]
        self.out_ports = [
            ReusableOutputPort(channel, push)
            for channel, push in zip(outs, worker.push_rates)
        ]


class FusedPlan:
    """A steady-state firing order compiled into a linear program.

    ``order`` is the (worker_id, firings) sequence to flatten —
    typically ``schedule.firing_order()`` for a whole graph, or the
    blob-restricted equivalent.  ``in_channels`` / ``out_channels``
    map worker id to already-bound channel lists, exactly as the
    interpreter and blob executor hold them.
    """

    def __init__(
        self,
        graph: StreamGraph,
        order: Sequence[Tuple[int, int]],
        in_channels: Mapping[int, List[Channel]],
        out_channels: Mapping[int, List[Channel]],
        rate_only: bool = False,
    ):
        self.graph = graph
        self.rate_only = rate_only
        self.validated = False
        self.iterations = 0
        self._steps: List[_Step] = []
        for worker_id, firings in order:
            if firings <= 0:
                continue
            worker = graph.worker(worker_id)
            ins = in_channels[worker_id]
            outs = out_channels[worker_id]
            if (len(ins) != worker.n_inputs
                    or len(outs) != worker.n_outputs):
                raise RateViolationError(
                    "%s bound to %d/%d channels, declares %d/%d ports"
                    % (worker.name, len(ins), len(outs),
                       worker.n_inputs, worker.n_outputs))
            self._steps.append(_Step(worker, ins, outs, firings))
        self._check_flow_balance()
        # Rate-only linear program: per worker, one batched pop per
        # input channel and one batched push of a preallocated
        # placeholder buffer per output channel.  Steps stay in order —
        # a step's pops may consume what earlier steps pushed this very
        # iteration, so pops and pushes cannot be hoisted across steps.
        self._rate_steps: List[Tuple[List[Tuple[Channel, int]],
                                     List[Tuple[Channel, List[None]]]]] = []
        for step in self._steps:
            worker = step.worker
            pops = [
                (channel, pop * step.firings)
                for channel, pop in zip(step.ins, worker.pop_rates)
                if pop
            ]
            pushes = [
                (channel, [None] * (push * step.firings))
                for channel, push in zip(step.outs, worker.push_rates)
                if push
            ]
            if pops or pushes:
                self._rate_steps.append((pops, pushes))

    # -- build-time rate checking -------------------------------------------

    def _check_flow_balance(self) -> None:
        """Once-per-build rate check, elided from every firing after.

        Any channel both produced and consumed inside the plan must
        see production equal consumption over one iteration —
        otherwise the firing order is not a steady schedule for these
        rates and repeated execution would drift.
        """
        # Channels are keyed by object (identity); the tallies are only
        # ever looked up per step, never iterated, so no ordering leaks.
        produced: Dict[Channel, int] = {}
        consumed: Dict[Channel, int] = {}
        for step in self._steps:
            worker = step.worker
            for channel, pop in zip(step.ins, worker.pop_rates):
                consumed[channel] = (consumed.get(channel, 0)
                                     + pop * step.firings)
            for channel, push in zip(step.outs, worker.push_rates):
                produced[channel] = (produced.get(channel, 0)
                                     + push * step.firings)
        for step in self._steps:
            worker = step.worker
            for channel in step.ins:
                if (channel in produced
                        and produced[channel] != consumed[channel]):
                    raise RateViolationError(
                        "unbalanced channel into %s: %d produced, "
                        "%d consumed per iteration"
                        % (worker.name, produced[channel],
                           consumed[channel]))

    # -- introspection -------------------------------------------------------

    @property
    def firings_per_iteration(self) -> int:
        return sum(step.firings for step in self._steps)

    # -- execution -----------------------------------------------------------

    def run_iteration(self) -> None:
        """One steady iteration with all checks elided."""
        if self.rate_only:
            for pops, pushes in self._rate_steps:
                for channel, count in pops:
                    channel.pop_many(count)
                for channel, buffer in pushes:
                    channel.push_many(buffer)
        else:
            for step in self._steps:
                fire = step.fire
                ins = step.ins
                outs = step.outs
                for _ in range(step.firings):
                    fire(ins, outs)
        self.iterations += 1

    def run_iteration_validated(self) -> None:
        """One steady iteration through reusable rate-enforcing ports.

        Used for the first executed iteration: dynamically proves that
        every worker honors its declared rates against this plan's
        bindings, after which per-firing checks are elided for good.
        Rate-only mode needs no dynamic pass — ``pop_many`` already
        enforces the only property placeholders have.
        """
        if self.rate_only:
            self.run_iteration()
            self.validated = True
            return
        for step in self._steps:
            fire = step.fire
            in_ports = step.in_ports
            out_ports = step.out_ports
            name = step.worker.name
            for _ in range(step.firings):
                for port in in_ports:
                    port.reset()
                for port in out_ports:
                    port.reset()
                fire(in_ports, out_ports)
                for port in in_ports:
                    port.finish(name)
                for port in out_ports:
                    port.finish(name)
        self.iterations += 1
        self.validated = True

    def run(self, iterations: int = 1, validate_first: bool = True) -> None:
        """Execute ``iterations`` steady iterations.

        The first iteration ever executed runs through the validated
        path when ``validate_first`` (the rate check "performed once");
        all subsequent iterations take the raw fused path.
        """
        if iterations <= 0:
            return
        if validate_first and not self.validated:
            self.run_iteration_validated()
            iterations -= 1
        for _ in range(iterations):
            self.run_iteration()
