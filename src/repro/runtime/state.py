"""Program state: the unit of transfer between graph instances.

The *program state* of a running stream program is (paper Section 4.1)
the state of every stateful worker plus the data items buffered on
every edge.  :class:`ProgramState` also records the canonical input /
output positions at capture time, which is what lets the output merger
splice old- and new-instance output streams exactly.
"""

from __future__ import annotations

import sys
from dataclasses import dataclass, field
from typing import Any, Dict, List

__all__ = ["ProgramState", "estimate_bytes"]


def estimate_bytes(value: Any, _depth: int = 0) -> int:
    """Rough deep size of a state value, for transfer-time modelling.

    Numeric items count 8 bytes; containers recurse (to a sane depth).
    Exactness is unimportant — Figure 14b only needs state sizes that
    scale with the declared payload.
    """
    if value is None:
        return 0
    if isinstance(value, (int, float, bool)):
        return 8
    if isinstance(value, complex):
        return 16
    if isinstance(value, str):
        return len(value)
    if isinstance(value, (bytes, bytearray)):
        return len(value)
    if _depth > 6:
        return sys.getsizeof(value)
    if isinstance(value, dict):
        return sum(
            estimate_bytes(k, _depth + 1) + estimate_bytes(v, _depth + 1)
            for k, v in value.items()
        )
    if isinstance(value, (list, tuple, set, frozenset)):
        items = list(value)
        if len(items) > 64:
            # Sample for speed on large homogeneous arrays.
            sampled = sum(estimate_bytes(v, _depth + 1) for v in items[:64])
            return int(sampled * len(items) / 64)
        return sum(estimate_bytes(v, _depth + 1) for v in items)
    return sys.getsizeof(value)


@dataclass
class ProgramState:
    """Captured state of a (possibly distributed) graph instance.

    ``edge_contents`` is keyed by edge index (plus the pseudo keys
    ``GRAPH_INPUT``/``GRAPH_OUTPUT`` from :mod:`repro.runtime.channels`
    when external buffers hold items).  ``consumed`` / ``emitted`` are
    instance-local counts at the capture point; adding the instance's
    canonical offsets yields global stream positions.
    """

    worker_states: Dict[int, Dict[str, Any]] = field(default_factory=dict)
    edge_contents: Dict[int, List[Any]] = field(default_factory=dict)
    consumed: int = 0
    emitted: int = 0

    def merge(self, other: "ProgramState") -> "ProgramState":
        """Merge a per-blob partial state into this one (controller side).

        Blob states are disjoint except for the global counters, where
        the maximum wins (every blob reports its own view of the same
        global cut).
        """
        overlap_workers = set(self.worker_states) & set(other.worker_states)
        if overlap_workers:
            raise ValueError(
                "blob states overlap on workers %r" % (sorted(overlap_workers),)
            )
        overlap_edges = set(self.edge_contents) & set(other.edge_contents)
        if overlap_edges:
            raise ValueError(
                "blob states overlap on edges %r" % (sorted(overlap_edges),)
            )
        self.worker_states.update(other.worker_states)
        self.edge_contents.update(other.edge_contents)
        self.consumed = max(self.consumed, other.consumed)
        self.emitted = max(self.emitted, other.emitted)
        return self

    def edge_counts(self) -> Dict[int, int]:
        """Buffered-item counts per edge — the compiler-facing summary."""
        return {key: len(items) for key, items in self.edge_contents.items()}

    @property
    def total_buffered_items(self) -> int:
        return sum(len(items) for items in self.edge_contents.values())

    def size_bytes(self) -> int:
        """Estimated serialized size, used for transfer-time modelling."""
        total = 0
        for state in self.worker_states.values():
            total += estimate_bytes(state)
        for items in self.edge_contents.values():
            # Rate-only execution buffers ``None`` placeholders; count
            # them at one word each so sizes stay comparable.
            total += sum(max(estimate_bytes(item), 8) for item in items)
        return total

    def __repr__(self) -> str:
        return (
            "<ProgramState: %d stateful workers, %d items on %d edges, "
            "consumed=%d emitted=%d>" % (
                len(self.worker_states),
                self.total_buffered_items,
                len(self.edge_contents),
                self.consumed,
                self.emitted,
            )
        )
