"""Trace exporters.

The primary target is the Chrome trace-event JSON format, viewable in
``chrome://tracing`` (or Perfetto's legacy loader): spans become
complete (``"ph": "X"``) events, instants become ``"ph": "i"`` events
and counters become ``"ph": "C"`` events.  Timestamps are simulated
seconds scaled to microseconds, so one trace second equals one
simulated second.

Tracks map to thread ids (one tid per track, named via ``"ph": "M"``
metadata events), which is what makes spans of the same logical
activity — one reconfiguration, one instance — nest visually.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List

from repro.obs.tracer import Tracer

__all__ = ["chrome_trace_events", "to_chrome_trace", "write_chrome_trace"]

#: The process id used for all events (there is one simulated program).
_PID = 1

#: Seconds -> microseconds (the trace-event timestamp unit).
_US = 1_000_000.0


def _track_ids(tracer: Tracer) -> Dict[str, int]:
    """Stable track -> tid mapping in order of first appearance."""
    tids: Dict[str, int] = {}
    for span in tracer.spans:
        tids.setdefault(span.track, len(tids) + 1)
    for _, _, _, track, _ in tracer.instants:
        tids.setdefault(track, len(tids) + 1)
    for _, _, _, track, _ in tracer.counters:
        tids.setdefault(track, len(tids) + 1)
    return tids


def _jsonable(args: Dict[str, Any]) -> Dict[str, Any]:
    """Coerce metadata values to JSON-safe primitives."""
    clean: Dict[str, Any] = {}
    for key, value in args.items():
        if isinstance(value, (bool, int, float, str)) or value is None:
            clean[key] = value
        else:
            clean[key] = repr(value)
    return clean


def chrome_trace_events(tracer: Tracer) -> List[Dict[str, Any]]:
    """Flatten a tracer's records into trace-event dicts."""
    tids = _track_ids(tracer)
    events: List[Dict[str, Any]] = []
    for track, tid in tids.items():
        events.append({
            "ph": "M", "pid": _PID, "tid": tid, "ts": 0,
            "name": "thread_name", "args": {"name": track},
        })
    horizon = tracer.now
    for span in tracer.spans:
        end = span.end if span.end is not None else horizon
        args = _jsonable(span.args)
        if span.end is None:
            args["unfinished"] = True
        events.append({
            "ph": "X", "pid": _PID, "tid": tids[span.track],
            "ts": span.start * _US, "dur": max(end - span.start, 0.0) * _US,
            "cat": span.category, "name": span.name, "args": args,
        })
    for time, category, name, track, args in tracer.instants:
        events.append({
            "ph": "i", "s": "t", "pid": _PID, "tid": tids[track],
            "ts": time * _US, "cat": category, "name": name,
            "args": _jsonable(args),
        })
    for time, category, name, track, value in tracer.counters:
        events.append({
            "ph": "C", "pid": _PID, "tid": tids[track],
            "ts": time * _US, "cat": category, "name": name,
            "args": {"value": value},
        })
    events.sort(key=lambda event: (event["ts"], event["ph"] != "M"))
    return events


def to_chrome_trace(tracer: Tracer, **metadata: Any) -> Dict[str, Any]:
    """The full ``chrome://tracing`` JSON object."""
    return {
        "traceEvents": chrome_trace_events(tracer),
        "displayTimeUnit": "ms",
        "otherData": dict(metadata),
    }


def write_chrome_trace(tracer: Tracer, path: str, **metadata: Any) -> str:
    with open(path, "w") as handle:
        json.dump(to_chrome_trace(tracer, **metadata), handle)
    return path
