"""Observability: structured tracing of reconfiguration timelines.

Enable tracing by constructing a cluster with a :class:`Tracer`::

    from repro import Cluster, StreamApp
    from repro.obs import Tracer, write_chrome_trace

    tracer = Tracer()
    cluster = Cluster(n_nodes=3, tracer=tracer)
    app = StreamApp(cluster, blueprint)
    ...  # launch, reconfigure, run
    write_chrome_trace(tracer, "trace.json")  # open in chrome://tracing

When no tracer is supplied the runtime holds the :data:`NULL_TRACER`
singleton and every instrumentation point is a no-op.
"""

from repro.obs.tracer import NULL_TRACER, NullTracer, Span, Tracer
from repro.obs.export import (
    chrome_trace_events,
    to_chrome_trace,
    write_chrome_trace,
)
from repro.obs.report import (
    output_series_from_trace,
    phase_timeline,
    reconfiguration_metrics,
    trace_disruption,
)

__all__ = [
    "NULL_TRACER",
    "NullTracer",
    "Span",
    "Tracer",
    "chrome_trace_events",
    "output_series_from_trace",
    "phase_timeline",
    "reconfiguration_metrics",
    "to_chrome_trace",
    "trace_disruption",
    "write_chrome_trace",
]
