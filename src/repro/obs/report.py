"""Trace-derived timelines and per-reconfiguration metrics.

Two consumers:

* :func:`phase_timeline` — the human-readable report: every
  reconfiguration span with its child phase spans (drain, phase-1
  compile, AST, phase-2 compile, overlap, discard) indented under it.
* :func:`reconfiguration_metrics` — per-reconfiguration downtime,
  overlap duration and duplicated-output counts *derived from the
  trace*, cross-checked against the merger-measured downtime from the
  real :class:`~repro.metrics.series.ThroughputSeries`.  The output
  merger samples its emission counts into trace counter events at
  one-second granularity, so the trace-derived downtime must agree
  with the merger-derived one within one measurement bucket — the
  consistency invariant the observability tests assert.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from repro.metrics.analysis import analyze_reconfiguration
from repro.metrics.series import ThroughputSeries
from repro.obs.tracer import Span, Tracer

__all__ = [
    "output_series_from_trace",
    "phase_timeline",
    "reconfiguration_metrics",
    "trace_disruption",
]

#: Counter category/name the output merger samples emissions under.
OUTPUT_CATEGORY = "output"
OUTPUT_COUNTER = "items"


def output_series_from_trace(tracer: Tracer) -> ThroughputSeries:
    """Rebuild an output series from the merger's trace counter samples.

    Each sample carries the items emitted during one sampling bucket,
    timestamped at the bucket midpoint, so bucketized analysis of the
    reconstructed series matches the true series to within one bucket.
    """
    series = ThroughputSeries()
    for time, category, name, _track, value in tracer.counters:
        if category == OUTPUT_CATEGORY and name == OUTPUT_COUNTER:
            series.record(time, int(value))
    return series


def trace_disruption(tracer: Tracer, start: float, horizon: float, **kwargs):
    """Disruption analysis over the trace-reconstructed output series."""
    return analyze_reconfiguration(
        output_series_from_trace(tracer), start, horizon, **kwargs)


def _children(tracer: Tracer, span: Span) -> List[Span]:
    return [s for s in tracer.spans if s.parent_id == span.span_id]


def _span_overlap(tracer: Tracer, reconfig_span: Optional[Span]
                  ) -> Optional[float]:
    if reconfig_span is None:
        return None
    for child in _children(tracer, reconfig_span):
        if child.name == "overlap":
            return child.duration
    return None


def reconfiguration_metrics(app, horizon_after: float = 60.0,
                            **analysis_kwargs) -> List[Dict[str, Any]]:
    """Per-reconfiguration metrics, trace-derived and cross-checked.

    ``app`` is a :class:`~repro.cluster.app.StreamApp` (duck-typed:
    needs ``tracer``, ``series``, ``merger``, ``reconfigurations`` and
    ``env``).  Requires tracing to have been enabled for the run.
    """
    tracer = app.tracer
    flush = getattr(app.merger, "flush_trace_output", None)
    if flush is not None:
        flush()
    bucket = analysis_kwargs.get("bucket", 1.0)
    rows: List[Dict[str, Any]] = []
    for index, report in enumerate(app.reconfigurations):
        start = report.requested_at
        horizon = min(start + horizon_after, app.env.now)
        measured = analyze_reconfiguration(
            app.series, start, horizon, **analysis_kwargs)
        traced = trace_disruption(tracer, start, horizon, **analysis_kwargs)
        span = getattr(report, "trace_span", None)
        overlap_trace = _span_overlap(tracer, span)
        rows.append({
            "index": index,
            "strategy": report.strategy,
            "config": report.config_name,
            "requested_at": start,
            "downtime_measured": measured.downtime,
            "downtime_trace": traced.downtime,
            "downtime_agrees": (
                abs(traced.downtime - measured.downtime) <= bucket),
            "overlap_seconds": report.overlap_seconds,
            "overlap_trace": overlap_trace,
            "duplicate_output_items": getattr(
                app.merger, "duplicate_items", 0),
            "state_bytes": report.state_bytes,
            "duplication_iterations": report.duplication_iterations,
            "total_seconds": report.total_seconds,
        })
    return rows


def _format_span(span: Span, indent: int) -> str:
    end = span.end if span.end is not None else float("nan")
    duration = span.duration if span.duration is not None else float("nan")
    extras = ""
    if span.args:
        extras = "  " + ", ".join(
            "%s=%r" % (key, value) for key, value in sorted(span.args.items()))
    return "%s%-18s %9.3f .. %9.3f  %8.3fs%s" % (
        "  " * indent, span.name, span.start, end, duration, extras)


def _compile_cache_summary(tracer: Tracer) -> Optional[str]:
    """One-line compile-cache summary from the cumulative counter
    samples :func:`~repro.compiler.two_phase.plan_configuration` emits
    (latest sample wins; absent when caching is off or never hit)."""
    latest: Dict[str, int] = {}
    for _time, category, name, _track, value in tracer.counters:
        if category == "compile" and name.startswith("cache_"):
            latest[name] = int(value)
    if not latest:
        return None
    plan_hits = latest.get("cache_plan_hits", 0)
    plan_total = plan_hits + latest.get("cache_plan_misses", 0)
    sched_hits = latest.get("cache_schedule_hits", 0)
    sched_total = sched_hits + latest.get("cache_schedule_misses", 0)
    hits = plan_hits + sched_hits
    total = plan_total + sched_total
    rate = 100.0 * hits / total if total else 0.0
    return ("compile cache: plans %d/%d hit, schedules %d/%d hit "
            "(%.0f%% overall)" % (plan_hits, plan_total,
                                  sched_hits, sched_total, rate))


def phase_timeline(tracer: Tracer, category: str = "reconfig") -> str:
    """Human-readable phase timeline of every reconfiguration span."""
    lines: List[str] = []
    roots = [s for s in tracer.spans
             if s.category == category and s.parent_id is None]
    if not roots:
        return "(no %s spans recorded)" % category
    for index, root in enumerate(roots):
        end = root.end if root.end is not None else float("nan")
        lines.append("reconfig #%d %s -> %s  [%.3fs .. %.3fs]" % (
            index, root.name, root.args.get("config", "?"),
            root.start, end))
        stack = [(child, 1) for child in reversed(_children(tracer, root))]
        while stack:
            span, depth = stack.pop()
            lines.append(_format_span(span, depth))
            stack.extend((grandchild, depth + 1)
                         for grandchild in reversed(_children(tracer, span)))
        marks = [record for record in tracer.instants
                 if root.start <= record[0] <= (root.end or tracer.now)]
        for time, cat, name, _track, args in marks:
            if cat == category or cat == "app":
                lines.append("  @%9.3f  %s %s" % (
                    time, name,
                    " ".join("%s=%r" % kv for kv in sorted(args.items()))))
    summary = _compile_cache_summary(tracer)
    if summary is not None:
        lines.append(summary)
    return "\n".join(lines)
