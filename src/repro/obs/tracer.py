"""Structured span/event tracing against the simulated clock.

The paper's whole evaluation is a timeline argument: when draining
started, how long phase-1 vs phase-2 compilation ran, how long the two
instances overlapped, when the old instance was discarded.  The
:class:`Tracer` records those timelines as structured records —
*spans* (start/end in simulated seconds, category, name, metadata),
*instants* (point events) and *counters* (sampled values, e.g. output
throughput) — that exporters turn into Chrome ``chrome://tracing``
JSON or human-readable phase reports.

Tracing is opt-in.  The disabled path is the module-level
:data:`NULL_TRACER` singleton whose methods are no-ops returning a
shared null span, so instrumented code can call ``tracer.instant(...)``
unconditionally with near-zero overhead; per-emission hot paths
additionally guard on ``tracer.enabled``.

Spans nest per *track* (one track per logical activity: a
reconfiguration, an instance, a node): ``begin`` parents the new span
under the innermost open span of the same track, which keeps nesting
correct even though spans from concurrently simulated processes
interleave in wall-call order.
"""

from __future__ import annotations

import itertools
import threading
from typing import Any, Callable, Dict, Iterator, List, Optional, Tuple

__all__ = ["NULL_TRACER", "NullTracer", "Span", "Tracer"]


class Span:
    """One timed activity: half-open ``[start, end)`` in sim seconds."""

    __slots__ = ("_tracer", "span_id", "parent_id", "category", "name",
                 "track", "start", "end", "args")

    def __init__(self, tracer: "Tracer", span_id: int,
                 parent_id: Optional[int], category: str, name: str,
                 track: str, start: float, args: Dict[str, Any]):
        self._tracer = tracer
        self.span_id = span_id
        self.parent_id = parent_id
        self.category = category
        self.name = name
        self.track = track
        self.start = start
        self.end: Optional[float] = None
        self.args = args

    @property
    def finished(self) -> bool:
        return self.end is not None

    @property
    def duration(self) -> Optional[float]:
        if self.end is None:
            return None
        return self.end - self.start

    def annotate(self, **args: Any) -> "Span":
        self.args.update(args)
        return self

    def finish(self, **args: Any) -> "Span":
        """Close the span at the current simulated time (idempotent)."""
        if self.end is None:
            if args:
                self.args.update(args)
            self._tracer._finish(self)
        return self

    # Spans double as context managers so straight-line (and
    # generator-suspended) code can ``with tracer.span(...):``.
    def __enter__(self) -> "Span":
        return self

    def __exit__(self, exc_type, exc, _tb) -> bool:
        if exc is not None and self.end is None:
            self.annotate(error=type(exc).__name__)
        self.finish()
        return False

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        end = "%.6f" % self.end if self.end is not None else "open"
        return "<Span %s/%s [%0.6f, %s) %r>" % (
            self.category, self.name, self.start, end, self.args)


class Tracer:
    """Records spans, instants and counters against a bound clock."""

    enabled = True

    def __init__(self, clock: Optional[Callable[[], float]] = None):
        self._clock = clock
        self._ids = itertools.count(1)
        self.spans: List[Span] = []
        #: (time, category, name, track, args) point events.
        self.instants: List[Tuple[float, str, str, str, Dict[str, Any]]] = []
        #: (time, category, name, track, value) sampled counters.
        self.counters: List[Tuple[float, str, str, str, float]] = []
        self._open: Dict[str, List[Span]] = {}
        # Emission is thread-safe: the parallel blob executor traces
        # from worker threads, and the per-track open-span stacks (and
        # id allocation) must not interleave mid-update.
        self._lock = threading.Lock()

    # -- clock ---------------------------------------------------------------

    @property
    def now(self) -> float:
        return self._clock() if self._clock is not None else 0.0

    def bind_clock(self, clock: Callable[[], float]) -> None:
        """Attach the simulation clock (done by the Environment)."""
        self._clock = clock

    # -- recording -----------------------------------------------------------

    def begin(self, category: str, name: str, track: Optional[str] = None,
              **args: Any) -> Span:
        """Open a span; it parents under the track's innermost open span."""
        track = track if track is not None else category
        with self._lock:
            stack = self._open.setdefault(track, [])
            parent_id = stack[-1].span_id if stack else None
            span = Span(self, next(self._ids), parent_id, category, name,
                        track, self.now, args)
            self.spans.append(span)
            stack.append(span)
        return span

    # ``span`` is the context-manager spelling of ``begin``.
    span = begin

    def _finish(self, span: Span) -> None:
        with self._lock:
            span.end = self.now
            stack = self._open.get(span.track)
            if stack is not None and span in stack:
                # Tolerate out-of-order finishes (an interrupted process
                # may close an outer span while an inner one is still
                # open).
                stack.remove(span)

    def instant(self, category: str, name: str,
                track: Optional[str] = None, **args: Any) -> None:
        with self._lock:
            self.instants.append(
                (self.now, category, name,
                 track if track is not None else category, args))

    def counter(self, category: str, name: str, value: float,
                track: Optional[str] = None,
                time: Optional[float] = None) -> None:
        """Record a sampled value; ``time`` backdates the sample (used
        by bucket-aggregating samplers that flush a completed bucket)."""
        with self._lock:
            self.counters.append(
                (self.now if time is None else time, category, name,
                 track if track is not None else category, float(value)))

    # -- queries -------------------------------------------------------------

    def find_spans(self, category: Optional[str] = None,
                   name: Optional[str] = None,
                   track: Optional[str] = None) -> List[Span]:
        return [s for s in self.spans
                if (category is None or s.category == category)
                and (name is None or s.name == name)
                and (track is None or s.track == track)]

    def find_instants(self, category: Optional[str] = None,
                      name: Optional[str] = None) -> List[Tuple]:
        return [record for record in self.instants
                if (category is None or record[1] == category)
                and (name is None or record[2] == name)]

    def open_spans(self) -> List[Span]:
        return [s for s in self.spans if not s.finished]

    def span_names(self) -> Iterator[str]:
        return (s.name for s in self.spans)

    def finish_open(self, **args: Any) -> int:
        """Close every open span at the current time (export hygiene)."""
        closed = 0
        for span in list(self.open_spans()):
            span.finish(unfinished=True, **args)
            closed += 1
        return closed

    # -- cross-process merge --------------------------------------------------

    def export_records(self) -> Dict[str, List[Tuple]]:
        """Plain-tuple form of every record, for shipping over a pipe.

        Span objects hold a tracer backref and are not picklable across
        process boundaries; worker processes export this form and the
        parent re-materializes it via :meth:`absorb`.
        """
        with self._lock:
            return {
                "spans": [(s.span_id, s.parent_id, s.category, s.name,
                           s.track, s.start, s.end, dict(s.args))
                          for s in self.spans],
                "instants": list(self.instants),
                "counters": list(self.counters),
            }

    def absorb(self, records: Dict[str, List[Tuple]]) -> int:
        """Merge records exported by another tracer into this one.

        Spans get fresh ids from this tracer's sequence; parent links
        are remapped through the same translation so per-track nesting
        survives the merge.  Absorbed spans never join the open-span
        stacks — they are history, not activities this process can
        still close.  Returns the number of records merged.
        """
        with self._lock:
            id_map: Dict[int, Span] = {}
            for (span_id, _parent, category, name, track,
                 start, end, args) in records.get("spans", ()):
                span = Span(self, next(self._ids), None, category, name,
                            track, start, dict(args))
                span.end = end
                self.spans.append(span)
                id_map[span_id] = span
            for (span_id, parent_id, *_rest) in records.get("spans", ()):
                if parent_id is not None and parent_id in id_map:
                    id_map[span_id].parent_id = id_map[parent_id].span_id
            instants = [tuple(r) for r in records.get("instants", ())]
            counters = [tuple(r) for r in records.get("counters", ())]
            self.instants.extend(instants)
            self.counters.extend(counters)
            return len(id_map) + len(instants) + len(counters)


class _NullSpan:
    """The shared no-op span handed out by the disabled tracer."""

    __slots__ = ()
    span_id = 0
    parent_id = None
    category = name = track = ""
    start = 0.0
    end: Optional[float] = None
    args: Dict[str, Any] = {}
    finished = False
    duration: Optional[float] = None

    def annotate(self, **args: Any) -> "_NullSpan":
        return self

    def finish(self, **args: Any) -> "_NullSpan":
        return self

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, _tb) -> bool:
        return False


class NullTracer:
    """Disabled tracer: every method is a no-op.

    Instrumented code holds a tracer unconditionally; when tracing is
    off it holds this singleton, so the per-call cost is one method
    dispatch returning immediately — no records, no allocation.
    """

    enabled = False
    spans: Tuple = ()
    instants: Tuple = ()
    counters: Tuple = ()

    @property
    def now(self) -> float:
        return 0.0

    def bind_clock(self, clock: Callable[[], float]) -> None:
        pass

    def begin(self, category: str, name: str, track: Optional[str] = None,
              **args: Any) -> _NullSpan:
        return _NULL_SPAN

    span = begin

    def instant(self, category: str, name: str,
                track: Optional[str] = None, **args: Any) -> None:
        pass

    def counter(self, category: str, name: str, value: float,
                track: Optional[str] = None,
                time: Optional[float] = None) -> None:
        pass

    def find_spans(self, category: Optional[str] = None,
                   name: Optional[str] = None,
                   track: Optional[str] = None) -> List[Span]:
        return []

    def find_instants(self, category: Optional[str] = None,
                      name: Optional[str] = None) -> List[Tuple]:
        return []

    def open_spans(self) -> List[Span]:
        return []

    def finish_open(self, **args: Any) -> int:
        return 0

    def export_records(self) -> Dict[str, List[Tuple]]:
        return {"spans": [], "instants": [], "counters": []}

    def absorb(self, records: Dict[str, List[Tuple]]) -> int:
        return 0


_NULL_SPAN = _NullSpan()
NULL_TRACER = NullTracer()
