"""Stop-and-copy reconfiguration (paper Section 4.1).

Stop the world: drain every blob (through the slow fine-grained
interpreter, upstream first), collect the complete program state at
the controller, recompile the new configuration *with* that state
(single-phase — the state dependency is satisfied by waiting), then
start the new instance, whose initialization phase must refill the
pipeline before output resumes.  The three downtime contributors —
draining, recompilation, initialization — are exactly Figure 4's
breakdown.
"""

from __future__ import annotations

from repro.compiler.config import Configuration
from repro.core.base import Reconfigurer

__all__ = ["StopAndCopyReconfigurer"]


class StopAndCopyReconfigurer(Reconfigurer):
    """Drain, copy, recompile, restart — with downtime."""

    name = "stop_and_copy"

    def run(self, configuration: Configuration):
        app = self.app
        report = self._begin(configuration)
        old = app.current

        # 1. Drain the old instance and collect the program state.
        state = yield from old.drain()
        report.drained_at = self.env.now
        report.state_bytes = state.size_bytes()
        app.note("drained", bytes=report.state_bytes)

        # 2. Recompile with the complete program state (fusion and the
        #    init schedule can now see the actual buffered items).
        program = app.compile(configuration, state=state)
        yield from app.charge_compile_time(
            app.compile_seconds_per_node(program, "full"),
            label="compile.full", track="reconfig")
        report.phase1_done_at = self.env.now
        app.note("compiled")

        # 3. Start the state-absorbed new instance.
        input_offset = old.input_offset + state.consumed
        output_offset = old.output_offset + old.emitted_local
        new_instance = app.spawn_instance(
            program, input_offset, output_offset, label=configuration.name)
        report.new_instance = new_instance.instance_id
        report.old_stopped_at = report.drained_at
        with app.tracer.span("reconfig", "discard-old", track="reconfig",
                             instance=old.instance_id):
            app.current = new_instance
            app.merger.set_primary(new_instance.instance_id)
        report.new_started_at = self.env.now
        with app.tracer.span("reconfig", "init", track="reconfig",
                             instance=new_instance.instance_id):
            new_instance.start()
            yield new_instance.running_event
        report.new_running_at = self.env.now
        app.note("new_running", instance=new_instance.instance_id)
        return self._finish(report)
