"""Stop-and-copy reconfiguration (paper Section 4.1).

Stop the world: drain every blob (through the slow fine-grained
interpreter, upstream first), collect the complete program state at
the controller, recompile the new configuration *with* that state
(single-phase — the state dependency is satisfied by waiting), then
start the new instance, whose initialization phase must refill the
pipeline before output resumes.  The three downtime contributors —
draining, recompilation, initialization — are exactly Figure 4's
breakdown.

Graceful degradation: once the old instance is drained there is
nothing left to "keep serving", so a failure after the drain (a
compiler crash, the new instance dying with its node) rolls back by
*restarting the old configuration* with the drained state — the
rollback is itself a stop-and-copy, back onto the old epoch.  The
rollback compile is labelled ``compile.rollback`` so fault plans
targeting the forward path never kill the recovery path.
"""

from __future__ import annotations

from repro.compiler.config import Configuration
from repro.core.base import Reconfigurer, describe_cause
from repro.core.report import ReconfigReport

__all__ = ["StopAndCopyReconfigurer"]


class StopAndCopyReconfigurer(Reconfigurer):
    """Drain, copy, recompile, restart — with downtime."""

    name = "stop_and_copy"

    def __init__(self, app):
        super().__init__(app)
        self._old_configuration = None
        self._captured_state = None

    def _execute(self, configuration: Configuration,
                 report: ReconfigReport):
        app = self.app
        old = app.current
        self._old_configuration = old.program.configuration

        # 1. Drain the old instance and collect the program state.
        state = yield from old.drain()
        self._captured_state = state
        report.drained_at = self.env.now
        report.state_bytes = state.size_bytes()
        app.note("drained", bytes=report.state_bytes)

        # 2. Recompile with the complete program state (fusion and the
        #    init schedule can now see the actual buffered items).
        program = app.compile(configuration, state=state)
        yield from app.charge_compile_time(
            app.compile_seconds_per_node(program, "full"),
            label="compile.full", track="reconfig")
        report.phase1_done_at = self.env.now
        app.note("compiled")

        # 3. Start the state-absorbed new instance.
        input_offset = old.input_offset + state.consumed
        output_offset = old.output_offset + old.emitted_local
        new_instance = app.spawn_instance(
            program, input_offset, output_offset, label=configuration.name)
        report.new_instance = new_instance.instance_id
        report.old_stopped_at = report.drained_at
        with app.tracer.span("reconfig", "discard-old", track="reconfig",
                             instance=old.instance_id):
            app.current = new_instance
            app.merger.set_primary(new_instance.instance_id)
        report.new_started_at = self.env.now
        with app.tracer.span("reconfig", "init", track="reconfig",
                             instance=new_instance.instance_id):
            new_instance.start()
            yield from self._wait_watching(
                new_instance.running_event, new_instance)
        report.new_running_at = self.env.now
        app.note("new_running", instance=new_instance.instance_id)

    def _abort(self, configuration: Configuration, report: ReconfigReport,
               cause: object):
        app = self.app
        old = self._instance(report.old_instance)
        state = self._captured_state
        if old is None or old.alive or state is None:
            # Failure before the drain completed: the old instance is
            # still serving; the default rollback applies.
            yield from super()._abort(configuration, report, cause)
            return

        # The old instance is already drained.  Restart the *old*
        # configuration with the drained state; the rollback instance
        # recomputes the exact output items any partially-started new
        # instance may have emitted, and the merger discards the
        # duplicated prefix by canonical index.
        with app.tracer.span("reconfig", "rollback", track="reconfig",
                             strategy=self.name, mode="restart-old",
                             cause=describe_cause(cause)) as span:
            dead = self._instance(report.new_instance)
            if dead is not None and dead.alive:
                dead.abandon()
            program = app.compile(self._old_configuration, state=state)
            yield from app.charge_compile_time(
                app.compile_seconds_per_node(program, "full"),
                label="compile.rollback", track="reconfig")
            input_offset = old.input_offset + state.consumed
            output_offset = old.output_offset + old.emitted_local
            instance = app.spawn_instance(
                program, input_offset, output_offset,
                label=old.label + "-rollback")
            app.merger.abort_transition()
            app.merger.set_primary(instance.instance_id)
            app.current = instance
            instance.start()
            yield instance.running_event
            span.annotate(serving=instance.instance_id)
        report.rolled_back_at = self.env.now
        app.note("rollback", strategy=self.name, mode="restart-old",
                 cause=describe_cause(cause))
