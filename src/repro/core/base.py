"""Shared machinery for reconfiguration strategies.

The seamless strategies share their whole preparation pipeline
(concurrent compilation, state transfer, offset computation, spawning
the new instance); they differ only in how they switch between the
instances, so :class:`Reconfigurer` hosts the pipeline and the
subclasses override the switchover.

:meth:`Reconfigurer.run` is a template: it wraps the subclass's
:meth:`_execute` in an abort path so that *any* failure during the
reconfiguration — an injected compiler crash, the new instance dying
with its node, a manager timeout interrupt — rolls the program back
to the old epoch instead of wedging it.  A rolled-back run raises
:class:`ReconfigurationAborted`, which the reconfiguration manager
treats as retriable.
"""

from __future__ import annotations

import math

from repro.compiler.config import Configuration
from repro.compiler.two_phase import absorb_state, plan_configuration
from repro.core.planner import (
    boundary_edge_counts,
    duplication_iterations_stateful,
    duplication_iterations_stateless,
)
from repro.core.report import ReconfigReport
from repro.cluster.instance import GraphInstance
from repro.sim.kernel import Interrupt

__all__ = [
    "InstanceFailure",
    "ReconfigurationAborted",
    "Reconfigurer",
    "describe_cause",
]


class InstanceFailure(RuntimeError):
    """The new instance died mid-reconfiguration (e.g. node crash)."""

    def __init__(self, message: str, cause: object = None):
        super().__init__(message)
        self.cause = cause


class ReconfigurationAborted(RuntimeError):
    """A reconfiguration failed and was rolled back.

    By the time this propagates the rollback has already happened: the
    old epoch is serving output again.  The manager treats it as
    retriable (anything else escaping a strategy is a bug).
    """

    def __init__(self, cause: object = None):
        self.cause = cause
        super().__init__("reconfiguration aborted: %s"
                         % (describe_cause(cause),))


def describe_cause(cause: object) -> str:
    """Human/trace-friendly one-liner for an abort cause."""
    if isinstance(cause, BaseException):
        return "%s: %s" % (type(cause).__name__, cause)
    return str(cause)


class Reconfigurer:
    """Base class: owns the app handle and the preparation pipeline."""

    name = "base"

    def __init__(self, app):
        self.app = app
        self.env = app.env
        self.cost_model = app.cost_model
        #: The overlap span (concurrent execution), closed by _abort if
        #: the strategy dies while both instances run.
        self._overlap = None

    # -- strategy interface --------------------------------------------------

    def run(self, configuration: Configuration):
        """Generator: execute the strategy with graceful degradation.

        Failures inside :meth:`_execute` (including a manager-timeout
        :class:`~repro.sim.kernel.Interrupt`) trigger :meth:`_abort`,
        which restores the old epoch; the process then fails with
        :class:`ReconfigurationAborted` so callers can observe (and
        the manager can retry) the outcome.
        """
        report = self._begin(configuration)
        try:
            yield from self._execute(configuration, report)
        except Exception as exc:
            cause = exc.cause if isinstance(exc, Interrupt) else exc
            yield from self._abort(configuration, report, cause)
            self._finish_aborted(report, cause)
            raise ReconfigurationAborted(cause) from exc
        return self._finish(report)

    def _execute(self, configuration: Configuration,
                 report: ReconfigReport):
        """Generator implementing the strategy; must be overridden."""
        raise NotImplementedError
        yield  # pragma: no cover - marks this as a generator template

    # -- abort / rollback ----------------------------------------------------

    def _instance(self, instance_id: int):
        if 0 <= instance_id < len(self.app.instances):
            return self.app.instances[instance_id]
        return None

    def _abort(self, configuration: Configuration, report: ReconfigReport,
               cause: object):
        """Generator: roll back to the old epoch.

        The default rollback covers failures while the old instance is
        still serving (the seamless strategies' whole concurrent
        phase): discard the new instance, drop the merger transition,
        and restore every resource the strategy may have taken from
        the old instance — pending stop requests, core weight, input
        throttling, outstanding AST requests.  Stop-and-copy overrides
        this (its old instance is already drained when things break).
        """
        app = self.app
        old = self._instance(report.old_instance)
        new = self._instance(report.new_instance)
        if self._overlap is not None and not self._overlap.finished:
            self._overlap.finish(aborted=True)
        with app.tracer.span("reconfig", "rollback", track="reconfig",
                             strategy=self.name,
                             cause=describe_cause(cause)) as span:
            if new is not None and new.alive:
                new.abandon()
            app.merger.abort_transition()
            if old is not None and old.alive:
                old.cancel_stop()
                old.set_core_weight(1.0)
                old.input_view.unthrottle()
                for process in old.blob_procs.values():
                    process.ast = None
                    process.notify()
                app.current = old
                span.annotate(serving=old.instance_id)
        report.rolled_back_at = self.env.now
        app.note("rollback", strategy=self.name,
                 cause=describe_cause(cause))
        return
        yield  # pragma: no cover - marks this as a generator template

    def _finish_aborted(self, report: ReconfigReport,
                        cause: object) -> ReconfigReport:
        report.aborted = True
        report.abort_cause = describe_cause(cause)
        report.completed_at = self.env.now
        if report.trace_span is not None:
            report.trace_span.finish(aborted=True,
                                     cause=report.abort_cause)
        self.app.note("reconfig_aborted", strategy=self.name,
                      cause=report.abort_cause)
        self.app.reconfigurations.append(report)
        return report

    def _wait_watching(self, event, instance: GraphInstance):
        """Generator: wait for ``event``, aborting if ``instance`` dies.

        Every wait of the concurrent phase goes through this so a new
        instance killed by a fault surfaces as :class:`InstanceFailure`
        immediately instead of wedging the strategy on an event that
        will never fire.
        """
        if not event.triggered:
            yield self.env.any_of([event, instance.failed_event])
        if instance.status == "failed":
            raise InstanceFailure(
                "instance %d died mid-reconfiguration (%s)"
                % (instance.instance_id,
                   describe_cause(instance.failure_cause)),
                instance.failure_cause)

    # -- shared pipeline --------------------------------------------------------

    def _begin(self, configuration: Configuration) -> ReconfigReport:
        old = self.app.current
        if old is None or old.status != "running":
            raise RuntimeError(
                "cannot reconfigure: no running instance (status %r)"
                % (None if old is None else old.status,)
            )
        report = ReconfigReport(
            strategy=self.name,
            config_name=configuration.name or "cfg",
            requested_at=self.env.now,
            old_instance=old.instance_id,
            stateful=old.program.graph.is_stateful,
        )
        report.trace_span = self.app.tracer.begin(
            "reconfig", self.name, track="reconfig",
            config=report.config_name, stateful=report.stateful)
        self.app.note("reconfig_start", strategy=self.name,
                      config=configuration.name)
        return report

    def _finish(self, report: ReconfigReport) -> ReconfigReport:
        report.completed_at = self.env.now
        if report.trace_span is not None:
            report.trace_span.finish(
                new_instance=report.new_instance,
                duplication_iterations=report.duplication_iterations,
                state_bytes=report.state_bytes)
        self.app.note("reconfig_done", strategy=self.name)
        self.app.reconfigurations.append(report)
        return report

    def _init_coverage_iterations(self, old: GraphInstance,
                                  program) -> int:
        """Old-instance iterations covering the new init phase.

        The fixed scheme precomputes how long the old instance must
        keep processing duplicated input so the new instance can
        finish initializing.  The prediction is *static* — it uses the
        old instance's currently observed iteration time and the new
        blobs' nominal init durations, ignoring how core sharing will
        change both during concurrent execution.  That mis-prediction
        is exactly what yields Figure 8's downtime (new slower than
        predicted) and output spikes (old slower than predicted); the
        paper notes a robust throughput predictor is impractical
        (Section 7.1.3), which is what motivates the adaptive scheme.
        """
        # Upper bound on the pipeline-chained initialization: each
        # blob's init waits on its upstream blob's init output.
        new_init_seconds = sum(blob.init_seconds() for blob in program.blobs)
        old_iteration = max(old.estimate_iteration_seconds(), 1e-9)
        return int(math.ceil(new_init_seconds / old_iteration))

    def _transfer_state(self, old: GraphInstance, report: ReconfigReport):
        """Generator: move the program state; returns (state, boundary).

        The default is the paper's one-shot asynchronous state
        transfer.  The fluid strategy overrides this hook to spread
        the transfer over bounded batches — everything else in
        :meth:`_prepare_concurrent` (phase-1/phase-2 split, offset and
        duplication arithmetic against the returned boundary) applies
        unchanged to whatever boundary the override settles on.
        """
        app = self.app
        with app.tracer.span("reconfig", "ast", track="reconfig") as ast:
            state, boundary = yield from old.ast_capture()
            ast.annotate(boundary=boundary, bytes=state.size_bytes())
        report.state_captured_at = self.env.now
        report.boundary = boundary
        report.state_bytes = state.size_bytes()
        app.note("ast_done", boundary=boundary,
                 bytes=report.state_bytes)
        return state, boundary

    def _progress(self, report: ReconfigReport) -> None:
        """Record forward progress (read by the manager's watchdog).

        Long-running strategies call this at internal milestones (the
        fluid strategy: after every migrated batch) so a progress-aware
        watchdog can distinguish a long healthy migration from a
        wedged one.
        """
        report.last_progress_at = self.env.now
        self.app.reconfig_progress_at = self.env.now

    def _prepare_concurrent(self, configuration: Configuration,
                            report: ReconfigReport):
        """Generator: concurrent recompilation + state transfer.

        Runs phase-1 while the old instance executes; for stateful
        programs performs asynchronous state transfer and phase-2.
        Returns ``(new_instance, old_instance, X)`` with the new
        instance *not yet started*.
        """
        app = self.app
        old: GraphInstance = app.current
        stateful = old.program.graph.is_stateful
        fresh = getattr(app, "fresh_graph", app.blueprint)
        new_graph = fresh()

        if stateful:
            # Phase 1 against the meta program state (boundary counts
            # are known before the state exists).
            meta_counts = boundary_edge_counts(old.schedule)
            plan = plan_configuration(
                new_graph, configuration, self.cost_model, meta_counts,
                check_rates=app.check_rates, rate_only=app.rate_only,
                tracer=app.tracer,
                cache=getattr(app, "compile_cache", None),
            )
            yield from app.charge_compile_time({
                node: seconds for node, seconds
                in plan.phase1_seconds_per_node.items()
            }, label="compile.phase1", track="reconfig")
            report.phase1_done_at = self.env.now
            app.note("phase1_done")

            # Asynchronous state transfer at a future boundary.
            state, boundary = yield from self._transfer_state(old, report)

            # Phase 2: absorb the state into the pseudo-blobs.
            program = absorb_state(plan, state, tracer=app.tracer)
            yield from app.charge_compile_time({
                node: seconds for node, seconds
                in plan.phase2_seconds_per_node.items()
            }, label="compile.phase2", track="reconfig")
            report.phase2_done_at = self.env.now
            app.note("phase2_done")

            input_offset = old.input_offset + old.consumed_at_boundary(boundary)
            output_offset = old.output_offset + old.emitted_at_boundary(boundary)
            duplication = max(
                duplication_iterations_stateful(
                    old.schedule, program.schedule),
                self._init_coverage_iterations(old, program),
            )
            stop_iteration = boundary + duplication
        else:
            # Stateless: compile with no initial state; implicit state
            # transfer via input duplication.  The whole (hidden)
            # concurrent compile is the phase-1 span here.
            program = app.compile(configuration)
            yield from app.charge_compile_time(
                app.compile_seconds_per_node(program, "full"),
                label="compile.phase1", track="reconfig")
            report.phase1_done_at = self.env.now
            app.note("phase1_done")

            # Duplication start: aligned to the graph quantum, at (or
            # just behind) the old instance's output frontier, so the
            # new instance's output stream splices exactly.
            q_in = old.schedule.input_quantum
            q_out = old.schedule.output_quantum
            frontier = old.output_offset + old.emitted_local
            units = frontier // q_out
            input_offset = units * q_in
            output_offset = units * q_out
            duplication = max(
                duplication_iterations_stateless(
                    old.schedule, program.schedule),
                self._init_coverage_iterations(old, program),
            )
            stop_iteration = old.max_iteration + 1 + duplication

        report.duplication_iterations = duplication
        new_instance = app.spawn_instance(
            program, input_offset, output_offset,
            label=configuration.name,
        )
        report.new_instance = new_instance.instance_id
        return new_instance, old, stop_iteration
