"""Fixed seamless reconfiguration (paper Section 7.1).

Concurrent recompilation plus input duplication with a *fixed*,
precomputed switchover: the old instance stops after processing
``X * OLD_steady_in`` duplicated items; the new instance's redundant
output is held back and discarded.  When the two configurations run
at different speeds this leaves downtime (old faster: it finishes
before the new one has ramped up — Figure 8a) or output-rate spikes
(old slower: the new instance's held-back output floods out at the
switch — Figure 8b).
"""

from __future__ import annotations

from repro.compiler.config import Configuration
from repro.core.base import Reconfigurer

__all__ = ["FixedSeamlessReconfigurer"]


class FixedSeamlessReconfigurer(Reconfigurer):
    """Seamless reconfiguration with a fixed transition point."""

    name = "fixed"

    def _execute(self, configuration: Configuration, report):
        app = self.app

        new_instance, old, stop_iteration = yield from (
            self._prepare_concurrent(configuration, report))

        # Concurrent execution on duplicated input; the merger holds
        # back the new instance's output until the old one stops.
        app.merger.begin_transition(
            old.instance_id, new_instance.instance_id, mode="fixed")
        report.new_started_at = self.env.now
        self._overlap = app.tracer.begin(
            "reconfig", "overlap", track="reconfig",
            old=old.instance_id, new=new_instance.instance_id,
            stop_iteration=stop_iteration)
        new_instance.start()
        app.note("concurrent_execution",
                 old=old.instance_id, new=new_instance.instance_id)
        old.request_stop_at(stop_iteration)

        # A new instance killed by a fault mid-overlap aborts the
        # reconfiguration (the rollback withdraws the stop request, so
        # the old instance keeps serving).
        yield from self._wait_watching(old.stopped_event, new_instance)
        self._overlap.finish()
        report.old_stopped_at = self.env.now
        app.note("old_stopped", instance=old.instance_id)
        with app.tracer.span("reconfig", "discard-old", track="reconfig",
                             instance=old.instance_id):
            app.merger.finish_transition()
            app.current = new_instance

        yield from self._wait_watching(
            new_instance.running_event, new_instance)
        report.new_running_at = self.env.now
