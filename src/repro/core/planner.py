"""The duplication planner — paper Section 7.1 formulas.

How much input must be duplicated so the new graph instance can
complete its initialization schedule while the old one finishes
processing everything it has seen?

* stateless: ``X = ceil(max(OLD_init_in, NEW_init_in) / OLD_steady_in)``
* stateful:  ``X = ceil(NEW_init_in / OLD_steady_in)`` (the state
  transfer already carries the old buffers, so only the new init
  matters)

Also computes the *meta program state* for phase-1 compilation: at any
iteration boundary the per-edge buffered-item counts equal the
post-init contents (production and consumption balance within each
iteration), so they are known before the state itself exists — the
observation that makes concurrent recompilation possible.
"""

from __future__ import annotations

import math
from typing import Dict

from repro.sched.schedule import Schedule

__all__ = [
    "boundary_edge_counts",
    "duplication_iterations_stateful",
    "duplication_iterations_stateless",
]


def duplication_iterations_stateless(old: Schedule, new: Schedule) -> int:
    """X for stateless graphs (paper Section 7.1.1)."""
    return max(
        int(math.ceil(max(old.init_in, new.init_in) / max(old.steady_in, 1))),
        1,
    )


def duplication_iterations_stateful(old: Schedule, new: Schedule) -> int:
    """X for stateful graphs (paper Section 7.1.2)."""
    return max(
        int(math.ceil(new.init_in / max(old.steady_in, 1))),
        1,
    )


def boundary_edge_counts(schedule: Schedule) -> Dict[int, int]:
    """Buffered-item counts at any steady-state iteration boundary.

    ``initial contents + init production - init consumption`` per
    edge; a steady iteration is net zero on every edge, so this is
    boundary-independent.  Zero-count edges are omitted (matching
    :meth:`ProgramState.edge_counts` for a snapshot at a boundary).
    """
    graph = schedule.graph
    counts: Dict[int, int] = {}
    for edge in graph.edges:
        src = graph.worker(edge.src)
        dst = graph.worker(edge.dst)
        count = (
            schedule.initial_contents.get(edge.index, 0)
            + src.push_rates[edge.src_port] * schedule.init[edge.src]
            - dst.pop_rates[edge.dst_port] * schedule.init[edge.dst]
        )
        if count:
            counts[edge.index] = count
    return counts
