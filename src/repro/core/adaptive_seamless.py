"""Adaptive seamless reconfiguration (paper Section 7.2, Figure 9).

Same concurrent-recompilation pipeline as the fixed scheme, but the
switchover is dynamic:

* **Adaptive merging** — the old instance is abandoned the moment the
  new instance's output frontier catches up, so no redundant output
  accumulates and no spike occurs.
* **Resource throttling** — while the new instance lags, the old
  instance's core share is repeatedly halved (then its input rate
  restricted), guaranteeing the new instance catches up and
  eliminating downtime even when moving to a slower configuration.

The amount of duplicated input is therefore open-ended: the old
instance has no fixed stop point; it runs (increasingly slowly) until
abandoned.
"""

from __future__ import annotations

from repro.compiler.config import Configuration
from repro.core.base import Reconfigurer
from repro.sim.kernel import Interrupt

__all__ = ["AdaptiveSeamlessReconfigurer"]


class AdaptiveSeamlessReconfigurer(Reconfigurer):
    """Zero-downtime reconfiguration via adaptive merging + throttling."""

    name = "adaptive"

    #: Core-share halvings before input-rate restriction kicks in.
    core_throttle_steps = 3

    def __init__(self, app):
        super().__init__(app)
        self._throttler = None

    def _execute(self, configuration: Configuration, report):
        app = self.app

        new_instance, old, _ = yield from (
            self._prepare_concurrent(configuration, report))
        report.duplication_iterations = None  # open-ended duplication

        app.merger.begin_transition(
            old.instance_id, new_instance.instance_id, mode="adaptive")
        report.new_started_at = self.env.now
        self._overlap = app.tracer.begin(
            "reconfig", "overlap", track="reconfig",
            old=old.instance_id, new=new_instance.instance_id)
        new_instance.start()
        app.note("concurrent_execution",
                 old=old.instance_id, new=new_instance.instance_id)

        self._throttler = self.env.process(
            self._throttle(old, new_instance))

        # Adaptive merging: switch the moment the new instance catches
        # up with the old one's output frontier.  A new instance killed
        # by a fault aborts instead (the rollback stops the throttler
        # and restores the old instance's cores and input rate).
        yield from self._wait_watching(app.merger.caught_up, new_instance)
        self._overlap.finish()
        self._throttler.interrupt("switched")
        with app.tracer.span("reconfig", "discard-old", track="reconfig",
                             instance=old.instance_id):
            old.abandon()
            report.old_stopped_at = self.env.now
            app.note("old_stopped", instance=old.instance_id)
            app.merger.finish_transition()
            app.current = new_instance

        yield from self._wait_watching(
            new_instance.running_event, new_instance)
        report.new_running_at = self.env.now

    def _abort(self, configuration, report, cause):
        if self._throttler is not None and self._throttler.is_alive:
            self._throttler.interrupt("aborted")
        yield from super()._abort(configuration, report, cause)

    def _throttle(self, old, new):
        """Resource throttling: gradually slow the old instance down.

        Throttling only helps once the new instance is executing its
        steady state — freeing cores during its (single-threaded)
        initialization would crater the old instance's output for no
        catch-up benefit — so the cadence starts at the new instance's
        running event.
        """
        interval = self.cost_model.throttle_interval
        weight = 1.0
        steps = 0
        try:
            if not new.running_event.triggered:
                yield new.running_event
            while True:
                yield self.env.timeout(interval)
                steps += 1
                if steps <= self.core_throttle_steps:
                    weight /= 2.0
                    old.set_core_weight(weight)
                    self.app.note("throttle_cores", weight=weight,
                                  instance=old.instance_id)
                else:
                    # Stage 2: restrict the old instance's input rate,
                    # halving again at each step.
                    iteration_seconds = max(
                        old.estimate_iteration_seconds(), 1e-6)
                    rate = old.schedule.steady_in / iteration_seconds
                    factor = 2.0 ** (steps - self.core_throttle_steps)
                    # Floor at four iterations per second: the old
                    # instance must keep emitting (at sub-second
                    # granularity) while the new one catches up, or
                    # throttling itself would create the downtime it
                    # exists to prevent.
                    floor = 4.0 * old.schedule.steady_in
                    effective = max(rate / factor, floor)
                    old.throttle_input(effective)
                    self.app.note("throttle_input", rate=effective,
                                  instance=old.instance_id)
        except Interrupt:
            pass
