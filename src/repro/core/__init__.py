"""Gloss's live reconfiguration strategies — the paper's contribution.

Three strategies of increasing sophistication (paper Section 4), plus
a fourth for bounded-latency migration of large state:

* :class:`StopAndCopyReconfigurer` — drain, collect state, recompile
  with complete state, restart.  Correct but seconds of downtime.
* :class:`FixedSeamlessReconfigurer` — concurrent recompilation
  (two-phase for stateful programs), asynchronous state transfer,
  input duplication and concurrent execution, with a *fixed*
  precomputed switchover; downtime or output spikes remain when the
  configurations' speeds differ (Figure 8).
* :class:`AdaptiveSeamlessReconfigurer` — adds adaptive merging and
  resource throttling, eliminating downtime entirely (Table 1).
* :class:`FluidReconfigurer` — Megaphone-style extension: keyed state
  migrates in bounded batches interleaved with processing, so the
  per-boundary pause is capped by ``CostModel.fluid_batch_bytes``
  instead of scaling with state size; switchover is adaptive.

Use :func:`make_reconfigurer` (or
``StreamApp.reconfigure(config, strategy=...)``) to instantiate by
name: ``"stop_and_copy"``, ``"fixed"``, ``"adaptive"``, ``"fluid"``.
"""

from repro.core.report import ReconfigReport
from repro.core.planner import (
    boundary_edge_counts,
    duplication_iterations_stateful,
    duplication_iterations_stateless,
)
from repro.core.base import (
    InstanceFailure,
    ReconfigurationAborted,
    Reconfigurer,
    describe_cause,
)
from repro.core.stop_copy import StopAndCopyReconfigurer
from repro.core.fixed_seamless import FixedSeamlessReconfigurer
from repro.core.adaptive_seamless import AdaptiveSeamlessReconfigurer
from repro.core.fluid import FluidReconfigurer
from repro.core.migration import MigrationPlan, StateShard, plan_migration
from repro.core.manager import ReconfigurationManager, RequestOutcome

_STRATEGIES = {
    "stop_and_copy": StopAndCopyReconfigurer,
    "stop-and-copy": StopAndCopyReconfigurer,
    "fixed": FixedSeamlessReconfigurer,
    "adaptive": AdaptiveSeamlessReconfigurer,
    "fluid": FluidReconfigurer,
}


def make_reconfigurer(strategy: str, app) -> Reconfigurer:
    """Instantiate a reconfiguration strategy by name."""
    try:
        cls = _STRATEGIES[strategy]
    except KeyError:
        raise ValueError(
            "unknown strategy %r (choose from %s)"
            % (strategy, ", ".join(sorted(set(_STRATEGIES))))
        ) from None
    return cls(app)


__all__ = [
    "AdaptiveSeamlessReconfigurer",
    "FixedSeamlessReconfigurer",
    "FluidReconfigurer",
    "InstanceFailure",
    "MigrationPlan",
    "ReconfigReport",
    "ReconfigurationAborted",
    "ReconfigurationManager",
    "RequestOutcome",
    "Reconfigurer",
    "StateShard",
    "StopAndCopyReconfigurer",
    "boundary_edge_counts",
    "describe_cause",
    "duplication_iterations_stateful",
    "duplication_iterations_stateless",
    "make_reconfigurer",
    "plan_migration",
]
