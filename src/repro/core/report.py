"""Per-reconfiguration timelines."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Optional

__all__ = ["ReconfigReport"]


@dataclass
class ReconfigReport:
    """Timeline of one reconfiguration, in simulated seconds.

    Fields are populated as the strategy progresses; strategies leave
    unused fields at ``None`` (e.g. stop-and-copy has no AST, a
    stateless fixed reconfiguration has no phase-2).
    """

    strategy: str
    config_name: str
    requested_at: float
    old_instance: int = -1
    new_instance: int = -1
    stateful: bool = False

    drained_at: Optional[float] = None
    phase1_done_at: Optional[float] = None
    state_captured_at: Optional[float] = None
    phase2_done_at: Optional[float] = None
    new_started_at: Optional[float] = None
    new_running_at: Optional[float] = None
    old_stopped_at: Optional[float] = None
    completed_at: Optional[float] = None

    #: True when the reconfiguration failed and was rolled back; the
    #: old epoch kept (or resumed) serving.
    aborted: bool = False
    #: One-line description of what killed the aborted run.
    abort_cause: Optional[str] = None
    #: When the rollback finished restoring the old epoch.
    rolled_back_at: Optional[float] = None

    #: The AST boundary iteration (stateful seamless strategies).
    boundary: Optional[int] = None
    #: Iterations of duplicated input (the X of paper Section 7.1);
    #: None for adaptive (duplication is open-ended).
    duplication_iterations: Optional[int] = None
    #: Bytes of program state moved.
    state_bytes: int = 0

    #: Fluid migration: planned batch count (None for other strategies).
    migration_batches: Optional[int] = None
    #: Fluid migration: batches completed so far (progress reporting;
    #: on an abort this shows how far the migration got).
    migration_batches_done: int = 0
    #: Fluid migration: the batch-size knob in effect, bytes.
    migration_batch_bytes: Optional[int] = None
    #: Fluid migration: bytes shipped in early shard batches (the
    #: remainder of ``state_bytes`` moved at the final residual cut).
    migration_moved_bytes: int = 0
    #: Last time the strategy reported forward progress (see
    #: :meth:`Reconfigurer._progress`); the manager's progress-aware
    #: watchdog keys off this.
    last_progress_at: Optional[float] = None
    #: The strategy's trace span (the null span when tracing is off);
    #: links this report to its phase spans in the exported trace.
    trace_span: Optional[Any] = field(
        default=None, repr=False, compare=False)

    @property
    def total_seconds(self) -> float:
        if self.completed_at is None:
            return float("nan")
        return self.completed_at - self.requested_at

    @property
    def overlap_seconds(self) -> float:
        """Time both instances executed concurrently."""
        if self.new_started_at is None or self.old_stopped_at is None:
            return 0.0
        return max(self.old_stopped_at - self.new_started_at, 0.0)

    @property
    def drain_seconds(self) -> Optional[float]:
        if self.drained_at is None:
            return None
        return self.drained_at - self.requested_at

    @property
    def visible_recompilation_seconds(self) -> Optional[float]:
        """Recompilation time on the critical path.

        For two-phase strategies this is only phase-2 (phase-1 is
        hidden behind the old instance's execution); for stop-and-copy
        it is the whole compilation.
        """
        if self.phase2_done_at is not None and self.state_captured_at is not None:
            return self.phase2_done_at - self.state_captured_at
        if self.phase1_done_at is not None and self.drained_at is not None:
            return self.phase1_done_at - self.drained_at
        return None

    def phase_durations(self) -> Dict[str, float]:
        """Named durations of each recorded phase, in seconds.

        Only phases this strategy actually went through appear; the
        same numbers are recoverable from the exported trace spans —
        :mod:`repro.obs.report` cross-checks the two views.
        """
        durations: Dict[str, float] = {}
        if self.drained_at is not None:
            durations["drain"] = self.drained_at - self.requested_at
        if self.phase1_done_at is not None:
            anchor = self.drained_at if self.drained_at is not None \
                else self.requested_at
            durations["compile.phase1"] = self.phase1_done_at - anchor
        if (self.state_captured_at is not None
                and self.phase1_done_at is not None):
            durations["ast"] = self.state_captured_at - self.phase1_done_at
        if (self.phase2_done_at is not None
                and self.state_captured_at is not None):
            durations["compile.phase2"] = (
                self.phase2_done_at - self.state_captured_at)
        overlap = self.overlap_seconds
        if overlap > 0:
            durations["overlap"] = overlap
        if self.completed_at is not None:
            durations["total"] = self.total_seconds
        return durations

    def describe(self) -> str:
        parts = ["%s -> %s (%s)%s" % (
            self.strategy, self.config_name,
            "stateful" if self.stateful else "stateless",
            " ABORTED: %s" % self.abort_cause if self.aborted else "")]
        for label, value in (
            ("requested", self.requested_at),
            ("drained", self.drained_at),
            ("phase1", self.phase1_done_at),
            ("state", self.state_captured_at),
            ("phase2", self.phase2_done_at),
            ("new running", self.new_running_at),
            ("old stopped", self.old_stopped_at),
            ("rolled back", self.rolled_back_at),
            ("completed", self.completed_at),
        ):
            if value is not None:
                parts.append("  %-12s %.3fs" % (label, value))
        return "\n".join(parts)
