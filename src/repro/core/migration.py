"""Fluid migration planning: bounded batches of keyed state.

The fluid strategy (:mod:`repro.core.fluid`) moves a stateful
program's state in batches instead of one bulk transfer.  This module
holds the static part: given the *old* graph and the batch-size knob
(``CostModel.fluid_batch_bytes``), derive which keyed workers shard
into how many pieces, pack the shards into batches, and validate that
the plan covers every stateful worker exactly once — the property
glosslint's R004 pass checks before a fluid reconfiguration is
admitted.

Non-keyed stateful workers (and all edge contents) are not sharded;
they move at the final residual cut, which is why fluid is most
effective when the dominant state lives in keyed tables.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Dict, List

from repro.graph.keyed import (
    KeyedStateWorker,
    merge_shards,
    split_state,
)
from repro.runtime.state import estimate_bytes

__all__ = ["MigrationPlan", "StateShard", "plan_migration"]


@dataclass(frozen=True)
class StateShard:
    """One key-range shard of one keyed worker's table."""

    worker_id: int
    worker_name: str
    shard_index: int
    n_shards: int
    estimated_bytes: int


@dataclass
class MigrationPlan:
    """The batch plan for one fluid migration.

    ``shards`` lists keyed shards in capture order; ``final_workers``
    are the stateful workers whose (small) state moves only at the
    final cut.  ``batches()`` packs the shards greedily under the
    byte bound.
    """

    batch_bytes: int
    shards: List[StateShard] = field(default_factory=list)
    final_workers: List[int] = field(default_factory=list)
    #: worker_id -> keyed field name, for residual reassembly.
    keyed_fields: Dict[int, str] = field(default_factory=dict)

    @property
    def total_shard_bytes(self) -> int:
        return sum(shard.estimated_bytes for shard in self.shards)

    def batches(self) -> List[List[StateShard]]:
        """Greedy packing: consecutive shards until the byte bound.

        Every batch holds at least one shard, so a single shard larger
        than the bound (a giant value under one key) still moves — it
        just blows the latency budget, which R004 reports as an INFO
        finding rather than silently stalling.
        """
        batches: List[List[StateShard]] = []
        current: List[StateShard] = []
        current_bytes = 0
        for shard in self.shards:
            if current and current_bytes + shard.estimated_bytes > self.batch_bytes:
                batches.append(current)
                current, current_bytes = [], 0
            current.append(shard)
            current_bytes += shard.estimated_bytes
        if current:
            batches.append(current)
        return batches

    def validate(self, graph) -> List[str]:
        """Completeness check; returns problem descriptions (empty = ok).

        Checked properties:

        * every stateful worker is covered exactly once — either by a
          full set of keyed shards or by the final cut, never both,
          never neither;
        * each sharded worker's shard indices form ``range(n)`` with a
          consistent ``n``;
        * declared keyed fields exist in ``state_fields`` and hold
          dicts;
        * splitting the current table and merging the shards round-
          trips to the identity (guards subclassed split logic).
        """
        problems: List[str] = []
        by_worker: Dict[int, List[StateShard]] = {}
        for shard in self.shards:
            by_worker.setdefault(shard.worker_id, []).append(shard)

        stateful_ids = {w.worker_id for w in graph.workers if w.is_stateful}
        covered = set(by_worker) | set(self.final_workers)
        for worker_id in sorted(stateful_ids - covered):
            problems.append(
                "stateful worker %d (%s) is not covered by the batch plan"
                % (worker_id, graph.worker(worker_id).name))
        for worker_id in sorted(covered - stateful_ids):
            problems.append(
                "batch plan covers worker %d which holds no state"
                % worker_id)
        for worker_id in sorted(set(by_worker) & set(self.final_workers)):
            problems.append(
                "worker %d is covered both by shards and by the final cut"
                % worker_id)

        for worker_id, shards in sorted(by_worker.items()):
            counts = {shard.n_shards for shard in shards}
            if len(counts) != 1:
                problems.append(
                    "worker %d has inconsistent shard counts %r"
                    % (worker_id, sorted(counts)))
                continue
            n_shards = counts.pop()
            indices = sorted(shard.shard_index for shard in shards)
            if indices != list(range(n_shards)):
                problems.append(
                    "worker %d shard indices %r do not form range(%d)"
                    % (worker_id, indices, n_shards))

        for worker_id, field_name in sorted(self.keyed_fields.items()):
            worker = graph.worker(worker_id)
            if field_name not in worker.state_fields:
                problems.append(
                    "worker %d (%s) declares keyed_field %r which is not "
                    "in state_fields %r"
                    % (worker_id, worker.name, field_name,
                       worker.state_fields))
                continue
            table = getattr(worker, field_name, None)
            if not isinstance(table, dict):
                problems.append(
                    "worker %d (%s) keyed_field %r holds %s, not a dict"
                    % (worker_id, worker.name, field_name,
                       type(table).__name__))
                continue
            shards = by_worker.get(worker_id)
            if shards:
                n_shards = shards[0].n_shards
                pieces = split_state(dict(table), n_shards)
                if merge_shards(pieces) != dict(table):
                    problems.append(
                        "worker %d (%s): split/merge round-trip is not "
                        "the identity" % (worker_id, worker.name))
        return problems


def plan_migration(graph, batch_bytes: int) -> MigrationPlan:
    """Derive the batch plan from the old graph's live state.

    Keyed workers shard their tables into
    ``ceil(table_bytes / batch_bytes)`` pieces; everything else moves
    at the final cut.  Sizes are estimates
    (:func:`repro.runtime.state.estimate_bytes`) — the plan bounds
    *expected* per-batch bytes, and dirty keys re-sent in the residual
    are additional.
    """
    if batch_bytes < 1:
        raise ValueError("batch_bytes must be >= 1, got %r" % (batch_bytes,))
    plan = MigrationPlan(batch_bytes=int(batch_bytes))
    for worker in graph.workers:
        if not worker.is_stateful:
            continue
        worker_id = worker.worker_id
        if (isinstance(worker, KeyedStateWorker)
                and worker.keyed_field is not None):
            plan.keyed_fields[worker_id] = worker.keyed_field
            table: Any = getattr(worker, worker.keyed_field, None)
            if not isinstance(table, dict):
                # Broken declaration: leave it to the final cut;
                # validate() reports the problem.
                plan.final_workers.append(worker_id)
                continue
            table_bytes = estimate_bytes(dict(table))
            n_shards = max(1, int(math.ceil(table_bytes / batch_bytes)))
            per_shard = int(math.ceil(table_bytes / n_shards)) if table else 0
            for index in range(n_shards):
                plan.shards.append(StateShard(
                    worker_id=worker_id,
                    worker_name=worker.name,
                    shard_index=index,
                    n_shards=n_shards,
                    estimated_bytes=per_shard,
                ))
        else:
            plan.final_workers.append(worker_id)
    return plan
