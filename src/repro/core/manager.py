"""Serialized reconfiguration management.

Reconfigurations are not instantaneous: the seamless schemes keep two
instances alive for seconds.  Drivers that issue requests reactively
(scaling policies, autotuners, operators) need requests *serialized* —
Gloss reconfigures from the *current* instance, so overlapping
requests would race.  :class:`ReconfigurationManager` queues requests,
runs them one at a time, coalesces bursts (only the newest pending
request survives), and records the outcome of each.

Before any strategy touches the live epoch the manager runs the
static analyzer over the requested plan
(:func:`repro.analysis.check_reconfiguration`): a plan with
error-severity findings — incompatible external rates, incomplete
state transfer, an invalid partition — is **rejected** with the
diagnostic report attached (``outcome.status == "rejected"``,
``outcome.error`` an :class:`~repro.analysis.AnalysisError`) instead
of being allowed to corrupt a live epoch mid-transfer.  The gate is
purely synchronous (no simulation events), so traces and determinism
fingerprints of accepted requests are unchanged; ``analysis_gate=
False`` disables it for tests that deliberately submit broken plans
deeper into the machinery.

The manager is also the robustness boundary.  A strategy that fails
rolls the program back to the old epoch and raises
:class:`~repro.core.base.ReconfigurationAborted` — the manager treats
that (and only that) as retriable, re-submitting the request after an
exponentially backed-off delay up to ``max_retries`` times.  A
``request_timeout`` arms a watchdog per attempt that interrupts a
wedged strategy (e.g. an AST capture waiting on a partitioned blob),
which triggers the same rollback-then-retry path.  Anything other
than an abort escaping a strategy is a bug and marks the request
failed immediately.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.compiler.config import Configuration
from repro.core.base import ReconfigurationAborted, describe_cause
from repro.sim.kernel import Environment, Event, Interrupt

__all__ = ["ReconfigurationManager", "RequestOutcome"]


@dataclass
class RequestOutcome:
    """What happened to one submitted request."""

    configuration: Configuration
    strategy: str
    submitted_at: float
    status: str = "pending"  # pending | superseded | rejected | completed | failed
    started_at: Optional[float] = None
    finished_at: Optional[float] = None
    error: Optional[BaseException] = None
    done: Optional[Event] = None
    #: Attempts actually run (1 on the happy path; > 1 after retries).
    attempts: int = 0
    #: Errors of aborted attempts, in order (the final error — abort
    #: or bug — also lands in ``error``).
    abort_errors: List[BaseException] = field(default_factory=list)
    #: Span covering the time the request sat in the queue.
    queue_span: Optional[object] = field(default=None, repr=False)

    @property
    def queue_wait_seconds(self) -> Optional[float]:
        if self.started_at is None:
            return None
        return self.started_at - self.submitted_at


class ReconfigurationManager:
    """Queues and serializes live reconfiguration requests."""

    def __init__(self, app, coalesce: bool = True,
                 max_retries: int = 2,
                 retry_initial_delay: float = 0.5,
                 retry_backoff: float = 2.0,
                 request_timeout: Optional[float] = None,
                 progress_timeout: Optional[float] = None,
                 analysis_gate: bool = True):
        self.app = app
        self.env: Environment = app.env
        self.coalesce = coalesce
        #: Statically vet each plan before running it (see module doc).
        self.analysis_gate = analysis_gate
        #: Additional attempts after an aborted one (0 = no retries).
        self.max_retries = max_retries
        #: Backoff before the first retry, in simulated seconds.
        self.retry_initial_delay = retry_initial_delay
        #: Multiplier applied to the delay after each retry.
        self.retry_backoff = retry_backoff
        #: Per-attempt watchdog: interrupt the strategy (forcing its
        #: rollback) after this many simulated seconds.  None disables.
        self.request_timeout = request_timeout
        #: Inactivity watchdog: interrupt a strategy that reports no
        #: forward progress (``Reconfigurer._progress``; the fluid
        #: strategy stamps every migrated batch) for this long.  A
        #: long *healthy* migration keeps resetting the clock, so this
        #: can sit far below ``request_timeout``.  None disables.
        self.progress_timeout = progress_timeout
        self.outcomes: List[RequestOutcome] = []
        self._pending: List[RequestOutcome] = []
        self._worker = None
        self._wake: Optional[Event] = None

    @property
    def busy(self) -> bool:
        return self._worker is not None and self._worker.is_alive

    def submit(self, configuration: Configuration,
               strategy: str = "adaptive") -> RequestOutcome:
        """Queue a reconfiguration; returns its outcome record.

        ``outcome.done`` fires when the request completes, fails, or
        is superseded by a newer one (with coalescing on).
        """
        outcome = RequestOutcome(
            configuration=configuration,
            strategy=strategy,
            submitted_at=self.env.now,
            done=self.env.event(),
            queue_span=self.env.tracer.begin(
                "manager", "queue-wait", track="manager",
                strategy=strategy, config=configuration.name or "<anon>"),
        )
        if self.coalesce:
            for stale in self._pending:
                stale.status = "superseded"
                if stale.queue_span is not None:
                    stale.queue_span.finish(superseded=True)
                if not stale.done.triggered:
                    stale.done.succeed(stale)
            self._pending = [outcome]
        else:
            self._pending.append(outcome)
        self.outcomes.append(outcome)
        if self._worker is None or not self._worker.is_alive:
            self._worker = self.env.process(self._drain_queue())
        return outcome

    def _drain_queue(self):
        while self._pending:
            outcome = self._pending.pop(0)
            if outcome.status == "superseded":
                continue
            outcome.status = "running"
            outcome.started_at = self.env.now
            if outcome.queue_span is not None:
                outcome.queue_span.finish()
            yield from self._run_request(outcome)
            outcome.finished_at = self.env.now
            if not outcome.done.triggered:
                outcome.done.succeed(outcome)

    def _vet_request(self, outcome: RequestOutcome) -> bool:
        """Run the static analyzer over the plan; reject on errors.

        Synchronous — schedules no simulation events — so accepted
        requests leave the event stream (and hence determinism
        fingerprints) untouched.  Returns True when the plan may run.
        """
        current = self.app.current
        if current is None:
            return True  # nothing live to protect; launch path validates.
        from repro.analysis import AnalysisError, check_reconfiguration
        availability = {
            node_id: node.available
            for node_id, node in sorted(self.app.cluster.nodes.items())
        }
        report = check_reconfiguration(
            current.program.graph,
            current.program.configuration,
            self.app.blueprint(),
            outcome.configuration,
            old_schedule=current.schedule,
            cost_model=self.app.cost_model,
            node_availability=availability,
            name="reconfigure -> %s" % (outcome.configuration.name
                                        or "<anon>"),
        )
        if report.ok:
            return True
        outcome.status = "rejected"
        outcome.error = AnalysisError(report)
        self.env.tracer.instant(
            "manager", "request-rejected", track="manager",
            errors=len(report.errors),
            rules=",".join(sorted({f.rule for f in report.errors})))
        return False

    def _run_request(self, outcome: RequestOutcome):
        """Generator: run one request with watchdog, retries, backoff."""
        if self.analysis_gate and not self._vet_request(outcome):
            return
        delay = self.retry_initial_delay
        tracer = self.env.tracer
        for attempt in range(self.max_retries + 1):
            outcome.attempts = attempt + 1
            process = self.app.reconfigure(outcome.configuration,
                                           strategy=outcome.strategy)
            watchdogs = []
            if self.request_timeout is not None:
                watchdogs.append(self.env.process(
                    self._watchdog(process, self.request_timeout)))
            if self.progress_timeout is not None:
                watchdogs.append(self.env.process(
                    self._progress_watchdog(process, self.progress_timeout)))
            try:
                yield process
                outcome.status = "completed"
                return
            except ReconfigurationAborted as exc:
                # The strategy already rolled back to the old epoch;
                # the request is retriable.
                outcome.error = exc
                outcome.abort_errors.append(exc)
                tracer.instant(
                    "manager", "request-aborted", track="manager",
                    attempt=outcome.attempts,
                    cause=describe_cause(exc.cause))
                if attempt >= self.max_retries:
                    break
                with tracer.span("manager", "retry-backoff",
                                 track="manager",
                                 attempt=outcome.attempts,
                                 delay=round(delay, 6)):
                    yield self.env.timeout(delay)
                delay *= self.retry_backoff
            except BaseException as exc:
                # Anything other than an abort is a bug in the strategy
                # (or a deliberate test probe): not retriable.
                outcome.status = "failed"
                outcome.error = exc
                return
            finally:
                for watchdog in watchdogs:
                    if watchdog.is_alive:
                        watchdog.interrupt("request finished")
        outcome.status = "failed"

    def _watchdog(self, process, timeout: float):
        """Interrupt a strategy that outlives its per-attempt budget.

        The interrupt surfaces inside the strategy's ``run`` template,
        which rolls back to the old epoch and fails the process with
        ``ReconfigurationAborted`` — so a timeout and an injected
        fault take the exact same recovery path.
        """
        try:
            yield self.env.timeout(timeout)
        except Interrupt:
            return  # the attempt finished first
        if process.is_alive:
            self.env.tracer.instant(
                "manager", "request-timeout", track="manager",
                timeout=timeout)
            process.interrupt(
                "manager timeout after %gs" % (timeout,))

    def _progress_watchdog(self, process, timeout: float):
        """Interrupt a strategy that stops reporting progress.

        The deadline is ``timeout`` seconds after the later of the
        attempt's start and the strategy's last ``_progress`` stamp
        (``app.reconfig_progress_at``); each stamp pushes the deadline
        out, so total duration is unbounded as long as work advances.
        """
        start = self.env.now

        def _anchor() -> float:
            last = self.app.reconfig_progress_at
            return start if last is None else max(start, last)

        while True:
            deadline = _anchor() + timeout
            try:
                yield self.env.timeout(max(deadline - self.env.now, 1e-9))
            except Interrupt:
                return  # the attempt finished first
            if self.env.now + 1e-9 >= _anchor() + timeout:
                break
        if process.is_alive:
            self.env.tracer.instant(
                "manager", "request-stalled", track="manager",
                timeout=timeout)
            process.interrupt(
                "no reconfiguration progress for %gs" % (timeout,))

    # -- reporting -----------------------------------------------------------

    def summary(self) -> List[Tuple[str, str, float]]:
        return [
            (o.configuration.name or "<anon>", o.status, o.submitted_at)
            for o in self.outcomes
        ]

    def trace_metrics(self, horizon_after: float = 60.0, **kwargs):
        """Per-reconfiguration downtime/overlap/duplication, derived
        from the trace and cross-checked against the merger-measured
        series (requires tracing enabled on the app's cluster)."""
        from repro.obs.report import reconfiguration_metrics
        return reconfiguration_metrics(
            self.app, horizon_after=horizon_after, **kwargs)

    def queue_waits(self) -> List[Tuple[str, Optional[float]]]:
        """(config name, seconds queued) per request that started."""
        return [
            (o.configuration.name or "<anon>", o.queue_wait_seconds)
            for o in self.outcomes
        ]

    @property
    def completed(self) -> List[RequestOutcome]:
        return [o for o in self.outcomes if o.status == "completed"]

    @property
    def superseded(self) -> List[RequestOutcome]:
        return [o for o in self.outcomes if o.status == "superseded"]

    @property
    def failed(self) -> List[RequestOutcome]:
        return [o for o in self.outcomes if o.status == "failed"]

    @property
    def rejected(self) -> List[RequestOutcome]:
        """Requests the static-analysis gate refused to run."""
        return [o for o in self.outcomes if o.status == "rejected"]

    @property
    def retried(self) -> List[RequestOutcome]:
        """Requests that needed more than one attempt."""
        return [o for o in self.outcomes if o.attempts > 1]
