"""Serialized reconfiguration management.

Reconfigurations are not instantaneous: the seamless schemes keep two
instances alive for seconds.  Drivers that issue requests reactively
(scaling policies, autotuners, operators) need requests *serialized* —
Gloss reconfigures from the *current* instance, so overlapping
requests would race.  :class:`ReconfigurationManager` queues requests,
runs them one at a time, coalesces bursts (only the newest pending
request survives), and records the outcome of each.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.compiler.config import Configuration
from repro.sim.kernel import Environment, Event

__all__ = ["ReconfigurationManager", "RequestOutcome"]


@dataclass
class RequestOutcome:
    """What happened to one submitted request."""

    configuration: Configuration
    strategy: str
    submitted_at: float
    status: str = "pending"  # pending | superseded | completed | failed
    started_at: Optional[float] = None
    finished_at: Optional[float] = None
    error: Optional[BaseException] = None
    done: Optional[Event] = None
    #: Span covering the time the request sat in the queue.
    queue_span: Optional[object] = field(default=None, repr=False)

    @property
    def queue_wait_seconds(self) -> Optional[float]:
        if self.started_at is None:
            return None
        return self.started_at - self.submitted_at


class ReconfigurationManager:
    """Queues and serializes live reconfiguration requests."""

    def __init__(self, app, coalesce: bool = True):
        self.app = app
        self.env: Environment = app.env
        self.coalesce = coalesce
        self.outcomes: List[RequestOutcome] = []
        self._pending: List[RequestOutcome] = []
        self._worker = None
        self._wake: Optional[Event] = None

    @property
    def busy(self) -> bool:
        return self._worker is not None and self._worker.is_alive

    def submit(self, configuration: Configuration,
               strategy: str = "adaptive") -> RequestOutcome:
        """Queue a reconfiguration; returns its outcome record.

        ``outcome.done`` fires when the request completes, fails, or
        is superseded by a newer one (with coalescing on).
        """
        outcome = RequestOutcome(
            configuration=configuration,
            strategy=strategy,
            submitted_at=self.env.now,
            done=self.env.event(),
            queue_span=self.env.tracer.begin(
                "manager", "queue-wait", track="manager",
                strategy=strategy, config=configuration.name or "<anon>"),
        )
        if self.coalesce:
            for stale in self._pending:
                stale.status = "superseded"
                if stale.queue_span is not None:
                    stale.queue_span.finish(superseded=True)
                if not stale.done.triggered:
                    stale.done.succeed(stale)
            self._pending = [outcome]
        else:
            self._pending.append(outcome)
        self.outcomes.append(outcome)
        if self._worker is None or not self._worker.is_alive:
            self._worker = self.env.process(self._drain_queue())
        return outcome

    def _drain_queue(self):
        while self._pending:
            outcome = self._pending.pop(0)
            if outcome.status == "superseded":
                continue
            outcome.status = "running"
            outcome.started_at = self.env.now
            if outcome.queue_span is not None:
                outcome.queue_span.finish()
            process = self.app.reconfigure(outcome.configuration,
                                           strategy=outcome.strategy)
            try:
                yield process
                outcome.status = "completed"
            except BaseException as exc:
                # A failed strategy process re-raises here; record it
                # and keep draining the queue.
                outcome.status = "failed"
                outcome.error = exc
            outcome.finished_at = self.env.now
            if not outcome.done.triggered:
                outcome.done.succeed(outcome)

    # -- reporting -----------------------------------------------------------

    def summary(self) -> List[Tuple[str, str, float]]:
        return [
            (o.configuration.name or "<anon>", o.status, o.submitted_at)
            for o in self.outcomes
        ]

    def trace_metrics(self, horizon_after: float = 60.0, **kwargs):
        """Per-reconfiguration downtime/overlap/duplication, derived
        from the trace and cross-checked against the merger-measured
        series (requires tracing enabled on the app's cluster)."""
        from repro.obs.report import reconfiguration_metrics
        return reconfiguration_metrics(
            self.app, horizon_after=horizon_after, **kwargs)

    def queue_waits(self) -> List[Tuple[str, Optional[float]]]:
        """(config name, seconds queued) per request that started."""
        return [
            (o.configuration.name or "<anon>", o.queue_wait_seconds)
            for o in self.outcomes
        ]

    @property
    def completed(self) -> List[RequestOutcome]:
        return [o for o in self.outcomes if o.status == "completed"]

    @property
    def superseded(self) -> List[RequestOutcome]:
        return [o for o in self.outcomes if o.status == "superseded"]
