"""Fluid, latency-bounded state migration (Megaphone-style).

The paper's three strategies move program state in one reconfiguration
event, so the latency spike scales with state size (Figures 14b/15).
Megaphone (PAPERS.md) bounds the spike by migrating state in small
batches interleaved with normal processing; this module is that fourth
strategy.

Mechanics — all state is still logically cut at a *single* final
boundary ``B``; only the bytes are spread out:

1. Plan: shard each keyed worker's table into
   ``ceil(bytes / fluid_batch_bytes)`` key ranges
   (:mod:`repro.core.migration`).
2. Install dirty tracking on every keyed table
   (:class:`repro.graph.keyed.KeyMigrationSession`).
3. Capture shards batch by batch at successive iteration boundaries
   while the old instance keeps processing.  Each capture pauses the
   blob only for its own (bounded) snapshot cost.
4. Final cut at ``B``: a normal AST capture with ``residual=True`` —
   keyed workers report only dirty/new key overrides plus invalidated
   keys; non-keyed state and edge cuts are captured as usual.
5. Reassemble each keyed table from shards + residual
   (:func:`repro.graph.keyed.assemble_keyed_state`).  The result is
   exactly what a one-shot snapshot at ``B`` would have produced
   (property-tested), so phase-2 absorption, the offset/duplication
   arithmetic against ``B``, and the adaptive switchover all apply
   unchanged — fluid subclasses the adaptive strategy and overrides
   only the state-transfer hook.

Abort is copy-based and therefore trivial: the live tables were only
ever *read*; rollback closes the tracking sessions and discards the
shipped shards, restoring the pre-migration state exactly.
"""

from __future__ import annotations

from typing import Dict, List

from repro.cluster.instance import GraphInstance
from repro.core.adaptive_seamless import AdaptiveSeamlessReconfigurer
from repro.core.migration import plan_migration
from repro.core.report import ReconfigReport
from repro.graph.keyed import (
    KeyMigrationSession,
    assemble_keyed_state,
    is_residual,
    keyed_workers,
)
from repro.runtime.state import estimate_bytes

__all__ = ["FluidReconfigurer"]


class FluidReconfigurer(AdaptiveSeamlessReconfigurer):
    """Bounded-batch state migration with adaptive switchover."""

    name = "fluid"

    def __init__(self, app):
        super().__init__(app)
        self._sessions: List[KeyMigrationSession] = []

    # -- state transfer ------------------------------------------------------

    def _transfer_state(self, old: GraphInstance, report: ReconfigReport):
        app = self.app
        cost_model = self.cost_model
        graph = old.program.graph
        batch_bytes = max(1, int(cost_model.fluid_batch_bytes))

        plan = plan_migration(graph, batch_bytes)
        problems = plan.validate(graph)
        if problems:
            raise ValueError(
                "fluid batch plan invalid: %s" % "; ".join(problems))
        batches = plan.batches()
        report.migration_batches = len(batches)
        report.migration_batch_bytes = batch_bytes
        app.note("fluid_plan", batches=len(batches),
                 shards=len(plan.shards), batch_bytes=batch_bytes)
        self._progress(report)

        # Dirty tracking on every live keyed table.  From here on any
        # exit — normal or abort — must end the sessions; _abort and
        # the end of this method both do.
        for worker in keyed_workers(graph):
            self._sessions.append(worker.begin_key_migration())

        # Early batches: capture key-range shards at near boundaries,
        # interleaved with normal processing.
        shard_states: Dict[int, Dict[int, dict]] = {}
        moved = 0
        with app.tracer.span("reconfig", "fluid-migrate", track="reconfig",
                             batches=len(batches)) as migrate_span:
            for number, batch in enumerate(batches, start=1):
                with app.tracer.span("reconfig", "fluid-batch",
                                     track="reconfig", batch=number,
                                     shards=len(batch)):
                    for shard in batch:
                        payload, _ = yield from old.shard_capture(
                            shard.worker_id, shard.shard_index,
                            shard.n_shards)
                        shard_states.setdefault(
                            shard.worker_id, {})[shard.shard_index] = payload
                        moved += estimate_bytes(payload)
                report.migration_batches_done = number
                self._progress(report)
                app.note("fluid_batch", batch=number, of=len(batches),
                         bytes_moved=moved)

            # Final cut at boundary B: residual deltas for keyed
            # workers, full capture for everything else.
            with app.tracer.span("reconfig", "ast", track="reconfig",
                                 residual=True) as ast:
                state, boundary = yield from old.ast_capture(residual=True)
                ast.annotate(boundary=boundary, bytes=state.size_bytes())
            migrate_span.annotate(moved_bytes=moved,
                                  residual_bytes=state.size_bytes())

        # Reassemble: shards + residual == one-shot snapshot at B.
        for worker_id, field in plan.keyed_fields.items():
            worker_state = state.worker_states.get(worker_id)
            if worker_state is None:
                continue
            value = worker_state.get(field)
            if not is_residual(value):
                continue
            shards = shard_states.get(worker_id, {})
            ordered = [shards[index] for index in sorted(shards)]
            worker_state[field] = assemble_keyed_state(
                ordered, {"overrides": value["overrides"],
                          "invalid": value["invalid"]})
        self._end_sessions()

        report.state_captured_at = self.env.now
        report.boundary = boundary
        report.state_bytes = moved + state.size_bytes()
        report.migration_moved_bytes = moved
        app.note("ast_done", boundary=boundary, bytes=report.state_bytes,
                 moved_in_batches=moved)
        self._progress(report)
        return state, boundary

    # -- abort ---------------------------------------------------------------

    def _abort(self, configuration, report, cause):
        """Rollback mid-migration: discard shards, restore tracking-free
        tables.

        The migration never mutated the old instance's state — shards
        are copies — so ending the sessions (idempotent) is the whole
        state restoration; the inherited rollback then clears pending
        snapshot requests and resources as usual.
        """
        self._end_sessions()
        yield from super()._abort(configuration, report, cause)

    def _end_sessions(self) -> None:
        for session in self._sessions:
            worker = session.worker
            if worker.key_migration is session:
                worker.end_key_migration()
            else:
                session.close()
        self._sessions = []
