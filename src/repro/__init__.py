"""repro — a reproduction of *Gloss: Seamless Live Reconfiguration and
Reoptimization of Stream Programs* (ASPLOS 2018).

Quickstart::

    from repro import Cluster, StreamApp, partition_even

    cluster = Cluster(n_nodes=3, cores_per_node=16)
    app = StreamApp(cluster, blueprint=my_graph_factory,
                    input_fn=float, name="demo")
    app.launch(partition_even(app.blueprint(), [0, 1]))
    cluster.run(until=60)
    app.reconfigure(partition_even(app.blueprint(), [0, 1, 2]),
                    strategy="adaptive")
    cluster.run(until=120)
    print(app.analyze_all())  # downtime == 0 with the adaptive scheme

See :mod:`repro.apps` for the paper's benchmark applications and
``benchmarks/`` for the scripts regenerating every table and figure.
"""

from repro.graph import (
    DuplicateSplitter,
    Filter,
    Joiner,
    Pipeline,
    RoundRobinJoiner,
    RoundRobinSplitter,
    SplitJoin,
    Splitter,
    StatefulFilter,
    StreamGraph,
    Worker,
)
from repro.sched import Schedule, make_schedule
from repro.compiler import (
    Configuration,
    CostModel,
    compile_configuration,
    partition_even,
    single_blob_configuration,
)
from repro.runtime import GraphInterpreter, ProgramState
from repro.cluster import Cluster, StreamApp
from repro.core import (
    AdaptiveSeamlessReconfigurer,
    FixedSeamlessReconfigurer,
    ReconfigReport,
    ReconfigurationAborted,
    ReconfigurationManager,
    StopAndCopyReconfigurer,
)
from repro.faults import FaultInjector, FaultPlan
from repro.metrics import analyze_reconfiguration, bucketize
from repro.obs import Tracer, phase_timeline, write_chrome_trace

__version__ = "1.0.0"

__all__ = [
    "AdaptiveSeamlessReconfigurer",
    "Cluster",
    "Configuration",
    "CostModel",
    "DuplicateSplitter",
    "FaultInjector",
    "FaultPlan",
    "Filter",
    "FixedSeamlessReconfigurer",
    "GraphInterpreter",
    "Joiner",
    "Pipeline",
    "ProgramState",
    "ReconfigReport",
    "ReconfigurationAborted",
    "ReconfigurationManager",
    "RoundRobinJoiner",
    "RoundRobinSplitter",
    "Schedule",
    "SplitJoin",
    "Splitter",
    "StatefulFilter",
    "StopAndCopyReconfigurer",
    "StreamApp",
    "StreamGraph",
    "Tracer",
    "Worker",
    "analyze_reconfiguration",
    "bucketize",
    "compile_configuration",
    "make_schedule",
    "partition_even",
    "phase_timeline",
    "single_blob_configuration",
    "write_chrome_trace",
]
