"""The online autotuner.

A hill climber with random restarts: measure the current
configuration's throughput for a window, propose a neighbor (or an
occasional random jump), reconfigure *live* with the adaptive
seamless scheme, measure again, keep the better point.  The program
keeps producing output the whole time — which is the point of the
experiment (paper Section 9.5, Figure 13).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.compiler.cache import get_default_cache
from repro.tuning.search_space import ConfigurationSpace, TuningPoint

__all__ = ["OnlineAutotuner"]


@dataclass
class OnlineAutotuner:
    """Tunes a running :class:`StreamApp` by live reconfiguration."""

    app: object
    space: ConfigurationSpace
    measure_seconds: float = 12.0
    explore_probability: float = 0.25
    strategy: str = "adaptive"
    history: List[Tuple[TuningPoint, float]] = field(default_factory=list)
    best: Optional[Tuple[TuningPoint, float]] = None

    def run(self, trials: int, initial: Optional[TuningPoint] = None):
        """Generator (simulation process): run the tuning loop."""
        app = self.app
        nodes = app.cluster.available_node_ids
        current = initial or self.space.initial(nodes)
        throughput = yield from self._measure()
        self.history.append((current, throughput))
        self.best = (current, throughput)

        for trial in range(trials):
            nodes = app.cluster.available_node_ids
            if self.space.random.random() < self.explore_probability:
                candidate = self.space.random_point(nodes)
            else:
                candidate = self.space.neighbor(self.best[0], nodes)
            configuration = self.space.to_configuration(
                candidate, nodes, name="trial%d" % (trial + 1))
            done = app.reconfigure(configuration, strategy=self.strategy)
            yield done
            throughput = yield from self._measure()
            self.history.append((candidate, throughput))
            app.note("tuning_trial", trial=trial + 1,
                     point=candidate.describe(), throughput=throughput,
                     **self._cache_stats())
            if throughput > self.best[1]:
                self.best = (candidate, throughput)
        # Settle on the best seen if the last trial was not it.
        if self.best[0] != self.history[-1][0]:
            nodes = app.cluster.available_node_ids
            configuration = self.space.to_configuration(
                self.best[0], nodes, name="tuned-best")
            yield app.reconfigure(configuration, strategy=self.strategy)
        return self.best

    def _measure(self):
        env = self.app.env
        before = self.app.series.total_items
        yield env.timeout(self.measure_seconds)
        return (self.app.series.total_items - before) / self.measure_seconds

    def _cache_stats(self) -> dict:
        """Compilation-cache counters for the per-trial note.

        Revisited/neighboring points reuse schedules and phase-1
        pseudo-blobs, so the hit rate should climb as the climber
        narrows in; zero when caching is disabled.
        """
        cache = getattr(self.app, "compile_cache", None) or get_default_cache()
        if cache is None:
            return {}
        return {
            "cache_hit_rate": round(cache.hit_rate(), 4),
            "cache_plan_hits": cache.plan_hits,
            "cache_schedule_hits": cache.schedule_hits,
        }
