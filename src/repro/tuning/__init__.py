"""Online autotuning (paper Section 9.5).

Gloss makes online autotuning feasible because moving between any two
points of the optimization space is downtime-free; the tuner simply
issues live reconfigurations on production data and measures the
resulting throughput.
"""

from repro.tuning.search_space import ConfigurationSpace, TuningPoint
from repro.tuning.tuner import OnlineAutotuner

__all__ = ["ConfigurationSpace", "OnlineAutotuner", "TuningPoint"]
