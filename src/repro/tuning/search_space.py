"""The configuration search space.

A tuning point bundles the knobs the compiler exposes: how many nodes
to use, where to cut the graph (a continuous bias on the balanced
partitioner), the schedule multiplier, and whether fusion is enabled.
Points convert to concrete :class:`Configuration` objects against the
cluster's currently available nodes.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, replace
from typing import Callable, Sequence

from repro.compiler.config import Configuration
from repro.compiler.partition import partition_even
from repro.graph.topology import StreamGraph

__all__ = ["ConfigurationSpace", "TuningPoint"]

_MULTIPLIERS = (16, 24, 32, 48, 64, 96, 128, 192, 256)


@dataclass(frozen=True)
class TuningPoint:
    """One point in the optimization space."""

    n_nodes: int
    multiplier: int
    cut_bias: float = 0.0
    fusion: bool = True

    def describe(self) -> str:
        return "nodes=%d mult=%d bias=%+.2f fusion=%s" % (
            self.n_nodes, self.multiplier, self.cut_bias, self.fusion)


class ConfigurationSpace:
    """Generates and perturbs tuning points for one application."""

    def __init__(self, blueprint: Callable[[], StreamGraph],
                 seed: int = 1234, multipliers: Sequence[int] = _MULTIPLIERS):
        self.blueprint = blueprint
        self.random = random.Random(seed)
        self.multipliers = tuple(multipliers)
        self._n_workers = len(blueprint())

    def initial(self, available_nodes: Sequence[int]) -> TuningPoint:
        return TuningPoint(
            n_nodes=max(len(available_nodes) // 2, 1),
            multiplier=self.multipliers[len(self.multipliers) // 2],
        )

    def random_point(self, available_nodes: Sequence[int]) -> TuningPoint:
        max_nodes = min(len(available_nodes), max(self._n_workers // 2, 1))
        return TuningPoint(
            n_nodes=self.random.randint(1, max_nodes),
            multiplier=self.random.choice(self.multipliers),
            cut_bias=self.random.uniform(-0.3, 0.3),
            fusion=self.random.random() > 0.15,
        )

    def neighbor(self, point: TuningPoint,
                 available_nodes: Sequence[int]) -> TuningPoint:
        """A single-knob perturbation of ``point``."""
        max_nodes = min(len(available_nodes), max(self._n_workers // 2, 1))
        move = self.random.randrange(4)
        if move == 0:
            delta = self.random.choice((-1, 1))
            return replace(point, n_nodes=min(max(point.n_nodes + delta, 1),
                                              max_nodes))
        if move == 1:
            index = self.multipliers.index(point.multiplier) \
                if point.multiplier in self.multipliers else 0
            index = min(max(index + self.random.choice((-1, 1)), 0),
                        len(self.multipliers) - 1)
            return replace(point, multiplier=self.multipliers[index])
        if move == 2:
            bias = min(max(point.cut_bias + self.random.uniform(-0.15, 0.15),
                           -0.4), 0.4)
            return replace(point, cut_bias=bias)
        return replace(point, fusion=not point.fusion)

    def to_configuration(self, point: TuningPoint,
                         available_nodes: Sequence[int],
                         name: str = "") -> Configuration:
        nodes = list(available_nodes)[:point.n_nodes]
        graph = self.blueprint()
        configuration = partition_even(
            graph, nodes, multiplier=point.multiplier,
            cut_bias=point.cut_bias,
            name=name or ("tuned:" + point.describe()),
        )
        if not point.fusion:
            configuration = Configuration(
                blobs=configuration.blobs,
                multiplier=configuration.multiplier,
                fusion=False,
                removal=False,
                name=configuration.name,
            )
        # Every configuration the tuner emits is validated against the
        # graph it will run on; a broken point must die here, not after
        # a live reconfiguration has started.
        configuration.validate(graph)
        return configuration
