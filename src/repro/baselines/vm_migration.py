"""VM live migration baseline (vMotion-style pre-copy).

The de-facto standard for application-agnostic workload movement
(paper Section 9.3).  The mechanics reproduced here:

1. **Iterative pre-copy** — rounds copy the VM's memory while it
   runs; each round must re-copy the pages dirtied during the
   previous round.  A streaming program dirties memory proportionally
   to its ingest rate, so the dirty set does not shrink.
2. **Stun during page send** — when the remaining-dirty size stops
   decreasing, the hypervisor artificially slows the VM (reducing the
   dirty rate) so copying can converge [40].
3. **Stop-and-copy** — the VM is paused and the final dirty pages
   move; this is the hard downtime, followed by a resume/ARP delay.

The model manipulates a running :class:`GraphInstance` (pausing it
and throttling its cores) so the measured throughput curve shows the
same phases the paper's Figure 11 shows.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cluster.instance import GraphInstance

__all__ = ["VMMigrationModel", "migrate_instance"]


@dataclass
class VMMigrationModel:
    """Parameters of the migration (sizes in bytes, rates in bytes/s)."""

    #: Total VM memory to move (OS + JVM heap + stream buffers).
    memory_bytes: float = 24e9
    #: Network bandwidth dedicated to migration traffic.
    bandwidth: float = 1.25e9
    #: Bytes dirtied per data item ingested (buffers, queues, JIT data).
    dirty_bytes_per_item: float = 4096.0
    #: Pre-copy rounds stop when remaining size falls below this.
    final_threshold_bytes: float = 256e6
    #: Maximum pre-copy rounds before forcing the final copy.
    max_rounds: int = 12
    #: VM slowdown factor applied by stun-during-page-send.
    stun_factor: float = 0.25
    #: Resume cost after the final copy (reconnect, ARP, warm-up).
    resume_seconds: float = 1.5


def migrate_instance(app, model: VMMigrationModel = None):
    """Generator (simulation process): migrate ``app``'s instance.

    Timeline notes are recorded on the app (``migration_*`` labels);
    the throughput series shows the stun slowdown and the final
    stop-and-copy downtime.
    """
    model = model or VMMigrationModel()
    env = app.env
    instance: GraphInstance = app.current
    app.note("migration_start")

    def dirty_rate() -> float:
        # Estimate current ingest rate from the instance's schedule
        # and observed iteration time.
        iteration_seconds = max(instance.estimate_iteration_seconds(), 1e-6)
        items_per_second = instance.schedule.steady_in / iteration_seconds
        return items_per_second * model.dirty_bytes_per_item

    remaining = model.memory_bytes
    stunned = False
    rounds = 0
    while remaining > model.final_threshold_bytes and rounds < model.max_rounds:
        rounds += 1
        round_seconds = remaining / model.bandwidth
        yield env.timeout(round_seconds)
        dirtied = dirty_rate() * round_seconds
        if stunned:
            dirtied *= model.stun_factor
        next_remaining = min(dirtied, model.memory_bytes)
        if next_remaining >= remaining * 0.8:
            if not stunned:
                # Not converging: stun the VM (throttle its cores hard).
                stunned = True
                instance.set_core_weight(model.stun_factor)
                app.note("migration_stun", round=rounds)
            else:
                # Even stunned, the stream program dirties memory as
                # fast as it can be copied: give up iterating and
                # stop-and-copy whatever is left.  For streaming
                # workloads this is most of the working set — the
                # source of vMotion's tens-of-seconds blackout
                # (paper Figure 11).
                remaining = next_remaining
                app.note("migration_gave_up", round=rounds)
                break
        remaining = next_remaining

    # Final stop-and-copy: the VM is paused — hard downtime.
    instance.pause()
    app.note("migration_blackout_start", remaining_bytes=remaining)
    yield env.timeout(remaining / model.bandwidth + model.resume_seconds)
    instance.resume()
    instance.set_core_weight(1.0)
    app.note("migration_done", rounds=rounds)
    return rounds
