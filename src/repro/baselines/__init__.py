"""Comparison baselines.

* :mod:`repro.baselines.vm_migration` — VM live migration in the
  style of vMotion (paper Section 9.3): iterative pre-copy, "stun
  during page send" when dirtying outpaces copying, and a final
  stop-and-copy pause.  Stream programs dirty memory at their ingest
  rate, which is why migration shows tens of seconds of disruption.
* :mod:`repro.baselines.checkpoint` — DDF-style periodic
  checkpointing with input persisting and replay (Storm/MillWheel
  family, paper Section 10): overhead during *normal* execution plus
  downtime and recomputation on reconfiguration.
"""

from repro.baselines.vm_migration import VMMigrationModel, migrate_instance
from repro.baselines.checkpoint import CheckpointRuntime

__all__ = ["CheckpointRuntime", "VMMigrationModel", "migrate_instance"]
