"""Checkpoint/replay reconfiguration baseline (DDF-style).

Models the strategy of Storm, MillWheel, StreamScope and Spark
Streaming (paper Sections 6.2 and 10): record periodic checkpoints of
the program state at well-defined points and persist the input; on
reconfiguration, revert to the last checkpoint and reprocess the
persisted input.

Two costs Gloss avoids are made explicit:

* **Normal-execution overhead** — every checkpoint pauses the
  instance while its state is serialized and shipped (plus per-item
  acknowledgment overhead folded into an effective throughput tax).
* **Reconfiguration downtime + recomputation** — the work done since
  the last checkpoint is thrown away and replayed by the new
  configuration.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.compiler.config import Configuration

__all__ = ["CheckpointRuntime"]


@dataclass
class CheckpointRuntime:
    """Drives periodic checkpointing of a running app and
    checkpoint-based reconfiguration."""

    app: object
    interval_seconds: float = 10.0
    #: Fraction of cores lost to acknowledgment/persisting machinery.
    ack_overhead: float = 0.12
    checkpoints: List[Tuple[float, int]] = field(default_factory=list)

    def start(self):
        """Begin periodic checkpointing; returns the driver process."""
        app = self.app
        app.current.set_overhead_tax(self.ack_overhead)
        return app.env.process(self._checkpoint_loop())

    def _checkpoint_loop(self):
        app = self.app
        env = app.env
        while True:
            yield env.timeout(self.interval_seconds)
            instance = app.current
            if instance is None or instance.status != "running":
                continue
            # Pause at a consistent point, serialize, ship, resume.
            state_bytes = self._state_size_estimate(instance)
            instance.pause()
            yield env.timeout(app.cost_model.transfer_seconds(state_bytes))
            position = instance.input_offset + instance.consumed_local
            self.checkpoints.append((env.now, position))
            instance.resume()
            app.note("checkpoint", position=position, bytes=state_bytes)

    def _state_size_estimate(self, instance) -> int:
        # Buffered items plus worker state, at a word per item.
        schedule = instance.schedule
        buffered = sum(
            schedule.initial_contents.get(edge.index, 0)
            + 8 for edge in instance.program.graph.edges
        )
        return int(8 * (buffered + schedule.steady_in
                        * self.app.cost_model.pipeline_depth))

    @property
    def last_checkpoint_position(self) -> Optional[int]:
        return self.checkpoints[-1][1] if self.checkpoints else None

    def reconfigure(self, configuration: Configuration):
        """Generator: checkpoint-based reconfiguration.

        Kill the instance, recompile, restart *from the last
        checkpoint* and replay the persisted input — losing (and
        redoing) the work performed since the checkpoint.
        """
        app = self.app
        old = app.current
        app.note("reconfig_start", strategy="checkpoint",
                 config=configuration.name)
        replay_from = self.last_checkpoint_position
        if replay_from is None:
            replay_from = old.input_offset
        old.abandon()

        program = app.compile(configuration)
        yield from app.charge_compile_time(
            app.compile_seconds_per_node(program, "full"))

        # The new instance replays from the checkpoint; output indices
        # below the already-emitted frontier are deduplicated by the
        # merger, modelling the replayed (wasted) work.
        q_in = program.schedule.input_quantum
        q_out = program.schedule.output_quantum
        units = replay_from // q_in
        instance = app.spawn_instance(
            program, units * q_in, units * q_out,
            label=configuration.name)
        app.current = instance
        app.merger.set_primary(instance.instance_id)
        instance.start()
        instance.set_overhead_tax(self.ack_overhead)
        yield instance.running_event
        app.note("reconfig_done", strategy="checkpoint",
                 replayed_items=old.input_offset + old.consumed_local
                 - replay_from)
