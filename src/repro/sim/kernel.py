"""The discrete-event simulation kernel.

Deterministic by construction: events scheduled for the same simulated
time fire in scheduling order (a monotonically increasing tie-breaker is
attached to every scheduled event).
"""

from __future__ import annotations

import heapq
import itertools
import math
from typing import Any, Callable, Generator, Iterable, List, Optional

__all__ = [
    "AnyOf",
    "Environment",
    "Event",
    "Interrupt",
    "Process",
    "SimulationError",
    "Store",
    "Timeout",
]

_PENDING = object()


class SimulationError(Exception):
    """Raised for misuse of the kernel (double-trigger, bad yields...)."""


class Interrupt(Exception):
    """Thrown into a process when :meth:`Process.interrupt` is called.

    The ``cause`` attribute carries the value passed to ``interrupt``.
    """

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause


class Event:
    """A one-shot occurrence in simulated time.

    An event is *triggered* once :meth:`succeed` or :meth:`fail` is
    called, and *processed* once the environment has run its callbacks.
    Processes wait for events by ``yield``-ing them.
    """

    def __init__(self, env: "Environment"):
        self.env = env
        self.callbacks: Optional[List[Callable[["Event"], None]]] = []
        self._value: Any = _PENDING
        self._ok: Optional[bool] = None

    @property
    def triggered(self) -> bool:
        return self._value is not _PENDING

    @property
    def processed(self) -> bool:
        return self.callbacks is None

    @property
    def ok(self) -> bool:
        if self._ok is None:
            raise SimulationError("event has not been triggered yet")
        return self._ok

    @property
    def value(self) -> Any:
        if self._value is _PENDING:
            raise SimulationError("event has not been triggered yet")
        return self._value

    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully and schedule its callbacks."""
        if self.triggered:
            raise SimulationError("event already triggered")
        self._ok = True
        self._value = value
        self.env._schedule(self)
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger the event with an error; waiters will see it raised."""
        if self.triggered:
            raise SimulationError("event already triggered")
        if not isinstance(exception, BaseException):
            raise SimulationError("fail() requires an exception instance")
        self._ok = False
        self._value = exception
        self.env._schedule(self)
        return self


class Timeout(Event):
    """An event that fires ``delay`` simulated seconds in the future."""

    def __init__(self, env: "Environment", delay: float, value: Any = None):
        if delay < 0:
            raise SimulationError("negative delay: %r" % (delay,))
        super().__init__(env)
        self.delay = delay
        self._ok = True
        self._value = value
        env._schedule(self, delay=delay)

    def succeed(self, value: Any = None) -> "Event":  # pragma: no cover
        raise SimulationError("a Timeout triggers itself")


class Process(Event):
    """A generator-based coroutine driven by the environment.

    The generator may ``yield`` any :class:`Event`; the process resumes
    when that event fires, receiving the event's value (or having its
    exception thrown in).  The process object itself is an event that
    fires with the generator's return value.
    """

    def __init__(self, env: "Environment", generator: Generator):
        if not hasattr(generator, "send"):
            raise SimulationError("Process requires a generator")
        super().__init__(env)
        self._generator = generator
        self._target: Optional[Event] = None
        bootstrap = Event(env)
        bootstrap._ok = True
        bootstrap._value = None
        bootstrap.callbacks.append(self._resume)
        env._schedule(bootstrap)

    @property
    def is_alive(self) -> bool:
        return not self.triggered

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time.

        Interrupting a finished process is a no-op, which makes shutdown
        paths idempotent (adaptive merging may race with natural
        completion of the old graph instance).
        """
        if self.triggered:
            return
        target = self._target
        if target is not None and not target.processed:
            # Detach from whatever the process was waiting on so the
            # original event no longer resumes it.
            try:
                target.callbacks.remove(self._resume)
            except (ValueError, AttributeError):
                pass
        self._target = None
        punch = Event(self.env)
        punch.callbacks.append(self._resume)
        punch._ok = False
        punch._value = Interrupt(cause)
        self.env._schedule(punch)

    def _resume(self, event: Event) -> None:
        self._target = None
        try:
            if event._ok:
                next_event = self._generator.send(event._value)
            else:
                next_event = self._generator.throw(event._value)
        except StopIteration as stop:
            self._ok = True
            self._value = stop.value
            self.env._schedule(self)
            return
        except Interrupt as exc:
            # An un-caught interrupt terminates the process quietly with
            # the interrupt cause as its value.
            self._ok = True
            self._value = exc.cause
            self.env._schedule(self)
            return
        except BaseException as exc:
            self._ok = False
            self._value = exc
            self.env._schedule(self)
            return
        if not isinstance(next_event, Event):
            error = SimulationError(
                "process yielded a non-event: %r" % (next_event,)
            )
            self._generator.close()
            self._ok = False
            self._value = error
            self.env._schedule(self)
            return
        if next_event.processed:
            # Already fired and ran its callbacks: resume immediately.
            punch = Event(self.env)
            punch.callbacks.append(self._resume)
            punch._ok = next_event._ok
            punch._value = next_event._value
            self.env._schedule(punch)
            self._target = punch
        else:
            next_event.callbacks.append(self._resume)
            self._target = next_event


class AnyOf(Event):
    """Fires as soon as any child event fires.

    The value is the list of (index, value) pairs of children that had
    fired by the time the condition was processed.
    """

    def __init__(self, env: "Environment", events: Iterable[Event]):
        super().__init__(env)
        self._events = list(events)
        if not self._events:
            raise SimulationError("AnyOf requires at least one event")
        for event in self._events:
            if event.processed or event.triggered:
                self._on_child(event)
                break
            event.callbacks.append(self._on_child)

    def _on_child(self, event: Event) -> None:
        if self.triggered:
            return
        if not event._ok:
            self.fail(event._value)
            return
        fired = [
            (i, child._value)
            for i, child in enumerate(self._events)
            if child.triggered and child._ok
        ]
        self.succeed(fired)


class Store:
    """A FIFO of items with blocking ``get`` and (optionally) ``put``."""

    def __init__(self, env: "Environment", capacity: float = math.inf):
        if capacity <= 0:
            raise SimulationError("capacity must be positive")
        self.env = env
        self.capacity = capacity
        self.items: List[Any] = []
        self._getters: List[Event] = []
        self._putters: List[tuple] = []

    def __len__(self) -> int:
        return len(self.items)

    def put(self, item: Any) -> Event:
        """Return an event that fires once the item is in the store."""
        event = Event(self.env)
        self._putters.append((event, item))
        self._dispatch()
        return event

    def get(self) -> Event:
        """Return an event that fires with the next item."""
        event = Event(self.env)
        self._getters.append(event)
        self._dispatch()
        return event

    def _dispatch(self) -> None:
        progress = True
        while progress:
            progress = False
            while self._putters and len(self.items) < self.capacity:
                event, item = self._putters.pop(0)
                self.items.append(item)
                event.succeed()
                progress = True
            while self._getters and self.items:
                event = self._getters.pop(0)
                event.succeed(self.items.pop(0))
                progress = True


class Environment:
    """The simulation clock and event loop.

    The optional ``tracer`` is the observability hook: the kernel binds
    the tracer's clock to the simulation clock so every span and
    instant recorded anywhere in the system carries exact simulated
    timestamps.  When no tracer is given the null tracer is installed
    and every instrumentation point downstream is a no-op.
    """

    def __init__(self, initial_time: float = 0.0, tracer=None):
        from repro.obs.tracer import NULL_TRACER
        self._now = float(initial_time)
        self._queue: List[tuple] = []
        self._ids = itertools.count()
        self.events_processed = 0
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.tracer.bind_clock(lambda: self._now)

    @property
    def now(self) -> float:
        return self._now

    def _schedule(self, event: Event, delay: float = 0.0) -> None:
        heapq.heappush(self._queue, (self._now + delay, next(self._ids), event))

    # -- public API ------------------------------------------------------

    def event(self) -> Event:
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        return Timeout(self, delay, value)

    def process(self, generator: Generator) -> Process:
        return Process(self, generator)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        return AnyOf(self, events)

    def store(self, capacity: float = math.inf) -> Store:
        return Store(self, capacity)

    def call_at(self, when: float, callback: Callable[[], None]) -> Event:
        """Invoke ``callback`` at absolute simulated time ``when``.

        The scheduling hook used by the fault injector: callbacks fire
        in deterministic tie-breaker order like every other event, so a
        fault plan replays identically run over run.  Returns the
        underlying timeout event (for tests that want to wait on it).
        """
        if when < self._now:
            raise SimulationError(
                "cannot schedule callback in the past: %r < %r"
                % (when, self._now))
        event = self.timeout(when - self._now)
        event.callbacks.append(lambda _event: callback())
        return event

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` if none."""
        return self._queue[0][0] if self._queue else math.inf

    def step(self) -> None:
        """Process the single next event."""
        if not self._queue:
            raise SimulationError("no more events")
        when, _, event = heapq.heappop(self._queue)
        self._now = when
        self.events_processed += 1
        callbacks, event.callbacks = event.callbacks, None
        if callbacks is None:  # pragma: no cover - defensive
            return
        for callback in callbacks:
            callback(event)
        if not event._ok and not callbacks and not isinstance(event, Process):
            raise event._value

    def run(self, until: Optional[float] = None) -> None:
        """Run until the queue drains or the clock passes ``until``.

        When ``until`` is given, the clock is advanced exactly to
        ``until`` even if no event falls on it, so successive ``run``
        calls observe contiguous windows.
        """
        if until is None:
            while self._queue:
                self.step()
            return
        limit = float(until)
        if limit < self._now:
            raise SimulationError("cannot run backwards in time")
        while self._queue and self._queue[0][0] <= limit:
            self.step()
        self._now = limit
