"""Discrete-event simulation kernel.

A minimal, deterministic process-based simulator in the style of SimPy.
It provides simulated time for the cluster runtime (:mod:`repro.cluster`)
so that reconfiguration experiments measure *simulated* wall-clock
behaviour (throughput over time, downtime, overlap) reproducibly.

The kernel is intentionally small:

* :class:`Environment` — the event loop and clock.
* :class:`Event` — a one-shot occurrence carrying a value or an error.
* :class:`Timeout` — an event that fires after a simulated delay.
* :class:`Process` — a generator-based coroutine; ``yield`` an event to
  wait for it.  A process is itself an event that fires when the
  generator returns.
* :class:`Interrupt` / :meth:`Process.interrupt` — asynchronous
  cancellation, used by adaptive merging to abandon the old graph
  instance.
* :class:`Store` — an unbounded/bounded FIFO of items with blocking
  ``get``/``put``.
* :class:`AnyOf` — fires when any of its child events fires.
"""

from repro.sim.kernel import (
    AnyOf,
    Environment,
    Event,
    Interrupt,
    Process,
    SimulationError,
    Store,
    Timeout,
)

__all__ = [
    "AnyOf",
    "Environment",
    "Event",
    "Interrupt",
    "Process",
    "SimulationError",
    "Store",
    "Timeout",
]
