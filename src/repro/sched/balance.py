"""Solving the SDF balance equations.

For every edge ``u -> v`` with push rate ``p`` and pop rate ``c``, a
steady-state iteration must satisfy ``p * x_u == c * x_v``.  The
minimal positive integer solution ``x`` is the repetition vector.  For
the acyclic series-parallel graphs produced by :mod:`repro.graph` a
solution always exists, but the solver is general: it propagates exact
:class:`fractions.Fraction` ratios over the connected graph and
reports an inconsistency if two paths disagree.
"""

from __future__ import annotations

from fractions import Fraction
from math import gcd
from typing import Dict

from repro.graph.topology import StreamGraph

__all__ = ["repetition_vector", "RateInconsistencyError"]


class RateInconsistencyError(Exception):
    """The declared rates admit no steady-state schedule."""


def repetition_vector(graph: StreamGraph) -> Dict[int, int]:
    """Return the minimal repetition vector of ``graph``.

    Raises :class:`RateInconsistencyError` if the balance equations
    are inconsistent (possible with multi-path graphs whose splitter
    and joiner weights disagree) or if any connected port has a zero
    rate.
    """
    ratios: Dict[int, Fraction] = {}
    start = graph.workers[0].worker_id
    ratios[start] = Fraction(1)
    # Breadth-first propagation over edges in both directions.
    frontier = [start]
    while frontier:
        current = frontier.pop(0)
        for edge in graph.out_edges(current):
            push = graph.worker(edge.src).push_rates[edge.src_port]
            pop = graph.worker(edge.dst).pop_rates[edge.dst_port]
            if push == 0 or pop == 0:
                raise RateInconsistencyError(
                    "zero rate on connected edge %r" % (edge,)
                )
            implied = ratios[current] * Fraction(push, pop)
            _record(ratios, frontier, edge.dst, implied, edge)
        for edge in graph.in_edges(current):
            push = graph.worker(edge.src).push_rates[edge.src_port]
            pop = graph.worker(edge.dst).pop_rates[edge.dst_port]
            if push == 0 or pop == 0:
                raise RateInconsistencyError(
                    "zero rate on connected edge %r" % (edge,)
                )
            implied = ratios[current] * Fraction(pop, push)
            _record(ratios, frontier, edge.src, implied, edge)
    if len(ratios) != len(graph.workers):
        raise RateInconsistencyError("graph is not connected")
    # Scale to the minimal integer vector.
    denominator_lcm = 1
    for ratio in ratios.values():
        denominator_lcm = _lcm(denominator_lcm, ratio.denominator)
    scaled = {w: int(r * denominator_lcm) for w, r in ratios.items()}
    numerator_gcd = 0
    for value in scaled.values():
        numerator_gcd = gcd(numerator_gcd, value)
    return {w: v // numerator_gcd for w, v in scaled.items()}


def _record(ratios, frontier, worker_id, implied, edge) -> None:
    existing = ratios.get(worker_id)
    if existing is None:
        ratios[worker_id] = implied
        frontier.append(worker_id)
    elif existing != implied:
        raise RateInconsistencyError(
            "inconsistent rates at worker %d via %r: %s vs %s"
            % (worker_id, edge, existing, implied)
        )


def _lcm(a: int, b: int) -> int:
    return a * b // gcd(a, b)
