"""Solving the SDF balance equations.

For every edge ``u -> v`` with push rate ``p`` and pop rate ``c``, a
steady-state iteration must satisfy ``p * x_u == c * x_v``.  The
minimal positive integer solution ``x`` is the repetition vector.  For
the acyclic series-parallel graphs produced by :mod:`repro.graph` a
solution always exists, but the solver is general: it propagates exact
:class:`fractions.Fraction` ratios over the connected graph and
reports an inconsistency if two paths disagree.

On failure the raised :class:`RateInconsistencyError` carries the
offending edge and the full *implied-ratio chain* for both derivation
paths, so the diagnostic names every edge whose rates participate in
the contradiction — the same explanation
:mod:`repro.analysis.graph_passes` attaches to its findings.
"""

from __future__ import annotations

from fractions import Fraction
from math import gcd
from typing import Dict, List, Optional, Tuple

from repro.graph.topology import Edge, StreamGraph

__all__ = ["RateInconsistencyError", "ratio_chain", "repetition_vector"]


class RateInconsistencyError(Exception):
    """The declared rates admit no steady-state schedule.

    ``kind`` is one of ``"zero-rate"``, ``"inconsistent"`` or
    ``"disconnected"``; ``edge`` is the edge on which the problem was
    detected (None for disconnected graphs) and ``chain`` holds the
    human-readable implied-ratio derivation lines, one per hop.
    """

    def __init__(self, message: str, kind: str = "inconsistent",
                 edge: Optional[Edge] = None,
                 chain: Tuple[str, ...] = ()):
        if chain:
            message = message + "\n" + "\n".join(
                "  " + line for line in chain)
        super().__init__(message)
        self.kind = kind
        self.edge = edge
        self.chain = tuple(chain)


#: One derivation step: (edge, source worker, derived worker, ratio).
_ChainStep = Tuple[Edge, int, int, Fraction]


def _derivation(parents: Dict[int, Optional[Tuple[Edge, int]]],
                worker_id: int) -> List[Tuple[Edge, int, int]]:
    """Parent-pointer path from the anchor worker to ``worker_id``."""
    steps: List[Tuple[Edge, int, int]] = []
    current = worker_id
    while parents.get(current) is not None:
        edge, via = parents[current]
        steps.append((edge, via, current))
        current = via
    steps.reverse()
    return steps


def ratio_chain(graph: StreamGraph,
                ratios: Dict[int, Fraction],
                steps: List[Tuple[Edge, int, int]]) -> List[str]:
    """Render a derivation path as implied-ratio lines.

    Each line shows the edge traversed, its push/pop rates and the
    firing ratio it implies — the full arithmetic a user needs to see
    which rate declaration to fix.
    """
    if not steps:
        return []
    anchor = steps[0][1]
    lines = ["x[%s#%d] = %s (anchor)"
             % (graph.worker(anchor).name, anchor, ratios[anchor])]
    for edge, via, derived in steps:
        push = graph.worker(edge.src).push_rates[edge.src_port]
        pop = graph.worker(edge.dst).pop_rates[edge.dst_port]
        lines.append(
            "edge %d (%s#%d.%d -> %s#%d.%d, push %d / pop %d) implies "
            "x[%s#%d] = %s" % (
                edge.index,
                graph.worker(edge.src).name, edge.src, edge.src_port,
                graph.worker(edge.dst).name, edge.dst, edge.dst_port,
                push, pop,
                graph.worker(derived).name, derived, ratios[derived],
            ))
    return lines


def repetition_vector(graph: StreamGraph) -> Dict[int, int]:
    """Return the minimal repetition vector of ``graph``.

    Raises :class:`RateInconsistencyError` if the balance equations
    are inconsistent (possible with multi-path graphs whose splitter
    and joiner weights disagree) or if any connected port has a zero
    rate; the error message includes the implied-ratio chains of both
    conflicting derivation paths.
    """
    ratios: Dict[int, Fraction] = {}
    parents: Dict[int, Optional[Tuple[Edge, int]]] = {}
    start = graph.workers[0].worker_id
    ratios[start] = Fraction(1)
    parents[start] = None
    # Breadth-first propagation over edges in both directions.
    frontier = [start]
    while frontier:
        current = frontier.pop(0)
        for edge in graph.out_edges(current):
            push, pop = _edge_rates(graph, edge)
            implied = ratios[current] * Fraction(push, pop)
            _record(graph, ratios, parents, frontier,
                    current, edge.dst, implied, edge)
        for edge in graph.in_edges(current):
            push, pop = _edge_rates(graph, edge)
            implied = ratios[current] * Fraction(pop, push)
            _record(graph, ratios, parents, frontier,
                    current, edge.src, implied, edge)
    if len(ratios) != len(graph.workers):
        unreached = sorted(
            w.worker_id for w in graph.workers if w.worker_id not in ratios)
        raise RateInconsistencyError(
            "graph is not connected: workers %r unreachable from worker %d"
            % (unreached, start),
            kind="disconnected",
        )
    # Scale to the minimal integer vector.
    denominator_lcm = 1
    for ratio in ratios.values():
        denominator_lcm = _lcm(denominator_lcm, ratio.denominator)
    scaled = {w: int(r * denominator_lcm) for w, r in ratios.items()}
    numerator_gcd = 0
    for value in scaled.values():
        numerator_gcd = gcd(numerator_gcd, value)
    return {w: v // numerator_gcd for w, v in scaled.items()}


def _edge_rates(graph: StreamGraph, edge: Edge) -> Tuple[int, int]:
    push = graph.worker(edge.src).push_rates[edge.src_port]
    pop = graph.worker(edge.dst).pop_rates[edge.dst_port]
    if push == 0 or pop == 0:
        raise RateInconsistencyError(
            "zero rate on connected edge %r: %s#%d pushes %d, %s#%d pops %d"
            % (edge,
               graph.worker(edge.src).name, edge.src, push,
               graph.worker(edge.dst).name, edge.dst, pop),
            kind="zero-rate",
            edge=edge,
        )
    return push, pop


def _record(graph, ratios, parents, frontier, via, worker_id,
            implied, edge) -> None:
    existing = ratios.get(worker_id)
    if existing is None:
        ratios[worker_id] = implied
        parents[worker_id] = (edge, via)
        frontier.append(worker_id)
    elif existing != implied:
        # Two derivation paths disagree: explain both chains in full.
        established = ratio_chain(
            graph, ratios, _derivation(parents, worker_id))
        conflicting_ratios = dict(ratios)
        conflicting_ratios[worker_id] = implied
        conflicting = ratio_chain(
            graph, conflicting_ratios,
            _derivation(parents, via) + [(edge, via, worker_id)])
        chain = (
            ["established derivation:"]
            + ["  " + line for line in established]
            + ["conflicting derivation:"]
            + ["  " + line for line in conflicting]
        )
        raise RateInconsistencyError(
            "inconsistent rates at worker %s#%d via edge %d (%d.%d -> "
            "%d.%d): established firing ratio %s, but this path implies %s"
            % (graph.worker(worker_id).name, worker_id, edge.index,
               edge.src, edge.src_port, edge.dst, edge.dst_port,
               existing, implied),
            kind="inconsistent",
            edge=edge,
            chain=tuple(chain),
        )


def _lcm(a: int, b: int) -> int:
    return a * b // gcd(a, b)
