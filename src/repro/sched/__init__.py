"""SDF scheduling: balance equations, init/steady schedules, buffers.

Synchronous data flow's fixed rates admit static scheduling (Lee &
Messerschmitt 1987, paper reference [31]): solving the balance
equations yields a *repetition vector* — how many times each worker
fires per steady-state iteration so that every edge is in balance.
Peeking workers additionally require an *initialization schedule* that
pre-fills their peeking buffers (paper Section 2).

The quantities defined here are exactly the ones Gloss's duplication
planner uses (paper Section 7.1): ``G_init_in`` (input consumed by the
initialization schedule) and ``G_steady_in`` (input consumed per
steady-state execution).
"""

from repro.sched.balance import RateInconsistencyError, repetition_vector
from repro.sched.schedule import (
    Schedule,
    init_repetitions,
    make_schedule,
    steady_buffer_capacities,
    structural_leftover,
)

__all__ = [
    "RateInconsistencyError",
    "Schedule",
    "init_repetitions",
    "make_schedule",
    "repetition_vector",
    "steady_buffer_capacities",
    "structural_leftover",
]
