"""Init and steady-state schedules, and buffer sizing.

The *steady-state schedule* fires every worker ``reps[w] * multiplier``
times per iteration in topological order; this is admissible for
acyclic graphs once the initialization schedule has pre-filled every
peeking buffer with its *structural leftover* ``L_e = max(peek - pop,
0)`` items.

The *initialization schedule* is computed by a reverse-topological
pass (classic StreamIt-style): a worker must fire often enough during
init that each outgoing edge ends with at least its structural
leftover after downstream init firings have consumed their share.
When a new graph instance is compiled *with* program state (Gloss's
state-absorbed blobs), edges already hold items, so the required init
firings shrink accordingly — this is why the compiler needs the
program state (or at least the buffered-item counts, the *meta program
state*) before it can emit the initialization schedule (paper
Section 3.1).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.graph.topology import StreamGraph
from repro.sched.balance import repetition_vector

__all__ = [
    "Schedule",
    "init_repetitions",
    "make_schedule",
    "steady_buffer_capacities",
    "structural_leftover",
]


def structural_leftover(graph: StreamGraph) -> Dict[int, int]:
    """Items that must remain buffered on each edge: ``max(peek-pop, 0)``.

    Keyed by edge index.  This is the data that draining can never
    flush (paper footnote 2) and that implicit state transfer
    reconstructs through input duplication.
    """
    leftovers: Dict[int, int] = {}
    for edge in graph.edges:
        dst = graph.worker(edge.dst)
        leftovers[edge.index] = max(
            dst.peek_rates[edge.dst_port] - dst.pop_rates[edge.dst_port], 0
        )
    return leftovers


def init_repetitions(
    graph: StreamGraph,
    initial_contents: Optional[Dict[int, int]] = None,
    prefill: Optional[Dict[int, int]] = None,
) -> Dict[int, int]:
    """Init firing counts per worker.

    ``initial_contents`` maps edge index to the number of items already
    buffered on that edge (from transferred program state); edges not
    listed are empty.  With no initial contents this is the cold-start
    initialization schedule.

    ``prefill`` requests extra items (beyond the structural leftover)
    be left on selected edges after init.  The compiler prefills blob
    boundary edges with one iteration of data so blobs execute
    decoupled — StreamJIT's "buffering sufficient data for each group
    of fused workers to execute in parallel" (paper Section 2).  This
    buffered data is what draining must later flush.
    """
    contents = initial_contents or {}
    extra = prefill or {}
    leftovers = structural_leftover(graph)
    init: Dict[int, int] = {}
    for worker_id in reversed(graph.topological_order()):
        worker = graph.worker(worker_id)
        needed_firings = 0
        for edge in graph.out_edges(worker_id):
            dst = graph.worker(edge.dst)
            consumed = dst.pop_rates[edge.dst_port] * init[edge.dst]
            # The edge must end init holding >= its structural
            # leftover plus any requested prefill.
            target = leftovers[edge.index] + extra.get(edge.index, 0)
            required = consumed + target - contents.get(edge.index, 0)
            if required > 0:
                push = worker.push_rates[edge.src_port]
                needed_firings = max(
                    needed_firings, math.ceil(required / push)
                )
        init[worker_id] = needed_firings
    return init


def steady_buffer_capacities(
    graph: StreamGraph,
    repetitions: Dict[int, int],
    multiplier: int = 1,
    initial_contents: Optional[Dict[int, int]] = None,
    init: Optional[Dict[int, int]] = None,
) -> Dict[int, int]:
    """Steady-state buffer capacity per edge.

    With topological execution order the peak occupancy of an edge in
    one iteration is its post-init content plus one iteration's
    production.  These capacities are the *meta program state* that
    phase-1 compilation consumes (paper Section 5.1).
    """
    contents = initial_contents or {}
    if init is None:
        init = init_repetitions(graph, initial_contents)
    capacities: Dict[int, int] = {}
    for edge in graph.edges:
        src = graph.worker(edge.src)
        dst = graph.worker(edge.dst)
        push = src.push_rates[edge.src_port]
        pop = dst.pop_rates[edge.dst_port]
        after_init = (
            contents.get(edge.index, 0)
            + push * init[edge.src]
            - pop * init[edge.dst]
        )
        per_iteration = push * repetitions[edge.src] * multiplier
        capacities[edge.index] = after_init + per_iteration
    return capacities


@dataclass
class Schedule:
    """A complete execution schedule for one graph configuration.

    ``steady`` firing counts already include the ``multiplier``; the
    ``*_quantum`` fields are multiplier-free (the minimal repetition
    vector) because canonical stream indices are aligned to quanta,
    not to any particular configuration's iteration size (paper
    Section 7.1 computes X in units of the old configuration's steady
    executions; we keep both granularities explicit).
    """

    graph: StreamGraph
    repetitions: Dict[int, int]
    init: Dict[int, int]
    multiplier: int = 1
    initial_contents: Dict[int, int] = field(default_factory=dict)

    # -- steady-state firing counts (multiplier applied) ------------------

    def steady_firings(self, worker_id: int) -> int:
        return self.repetitions[worker_id] * self.multiplier

    # -- graph-level quanta (multiplier-free) ------------------------------

    @property
    def input_quantum(self) -> int:
        """Items consumed from the graph input per repetition-vector pass."""
        head = self.graph.head
        return head.pop_rates[0] * self.repetitions[head.worker_id]

    @property
    def output_quantum(self) -> int:
        """Items pushed to the graph output per repetition-vector pass."""
        tail = self.graph.tail
        return tail.push_rates[0] * self.repetitions[tail.worker_id]

    # -- paper Section 7.1 quantities --------------------------------------

    @property
    def steady_in(self) -> int:
        """``G_steady_in``: input consumed per steady-state iteration."""
        return self.input_quantum * self.multiplier

    @property
    def steady_out(self) -> int:
        """``G_steady_out``: output produced per steady-state iteration."""
        return self.output_quantum * self.multiplier

    @property
    def init_in(self) -> int:
        """``G_init_in``: input consumed by the initialization schedule."""
        head = self.graph.head
        return head.pop_rates[0] * self.init[head.worker_id]

    @property
    def init_out(self) -> int:
        """Output produced by the initialization schedule."""
        tail = self.graph.tail
        return tail.push_rates[0] * self.init[tail.worker_id]

    # -- work accounting ----------------------------------------------------

    @property
    def steady_work(self) -> float:
        """Work units of one steady-state iteration."""
        return sum(
            self.graph.worker(w).work_estimate * self.steady_firings(w)
            for w in self.repetitions
        )

    @property
    def init_work(self) -> float:
        return sum(
            self.graph.worker(w).work_estimate * firings
            for w, firings in self.init.items()
        )

    @property
    def init_firings_total(self) -> int:
        return sum(self.init.values())

    def buffer_capacities(self) -> Dict[int, int]:
        return steady_buffer_capacities(
            self.graph, self.repetitions, self.multiplier,
            self.initial_contents, self.init,
        )

    def firing_order(self) -> List[Tuple[int, int]]:
        """Steady-state (worker_id, firings) pairs in topological order."""
        return [
            (w, self.steady_firings(w))
            for w in self.graph.topological_order()
        ]

    def init_order(self) -> List[Tuple[int, int]]:
        """Init (worker_id, firings) pairs in topological order."""
        return [
            (w, self.init[w])
            for w in self.graph.topological_order()
            if self.init[w] > 0
        ]


def make_schedule(
    graph: StreamGraph,
    multiplier: int = 1,
    initial_contents: Optional[Dict[int, int]] = None,
    prefill: Optional[Dict[int, int]] = None,
) -> Schedule:
    """Compute the complete schedule for ``graph``.

    ``initial_contents`` (edge index -> buffered item count) makes this
    a *state-aware* schedule as used when compiling state-absorbed
    blobs; omitted for cold starts.  ``prefill`` requests extra
    buffering on selected edges (see :func:`init_repetitions`).
    """
    if multiplier < 1:
        raise ValueError("multiplier must be >= 1")
    repetitions = repetition_vector(graph)
    init = init_repetitions(graph, initial_contents, prefill)
    return Schedule(
        graph=graph,
        repetitions=repetitions,
        init=init,
        multiplier=multiplier,
        initial_contents=dict(initial_contents or {}),
    )
