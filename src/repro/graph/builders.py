"""Hierarchical graph composition: pipelines and split-joins.

Stream programs are written as nested :class:`Pipeline` and
:class:`SplitJoin` structures over worker instances (the StreamJIT
style) and then :func:`flattened <Pipeline.flatten>` into a
:class:`repro.graph.StreamGraph` for compilation.

Worker instances may appear in at most one graph; reconfiguration
builds a *new* graph instance from the application's blueprint (a
zero-argument callable returning a fresh composition), so old and new
instances never share mutable worker state.
"""

from __future__ import annotations

from typing import List, Tuple, Union

from repro.graph.topology import GraphValidationError, StreamGraph
from repro.graph.workers import Joiner, Splitter, Worker

__all__ = ["Pipeline", "SplitJoin"]

Element = Union[Worker, "Pipeline", "SplitJoin"]


class _Fragment:
    """A partially flattened subgraph with one free input and output."""

    def __init__(self, workers: List[Worker],
                 connections: List[Tuple[int, int, int, int]],
                 head: int, tail: int):
        self.workers = workers
        self.connections = connections
        self.head = head  # local index of the worker with the free input
        self.tail = tail  # local index of the worker with the free output


def _flatten_element(element: Element, workers: List[Worker],
                     connections: List[Tuple[int, int, int, int]]) -> Tuple[int, int]:
    """Append ``element`` to the accumulators; return (head, tail) ids."""
    if isinstance(element, Worker):
        if element in workers:
            raise GraphValidationError(
                "worker %r used more than once in a graph" % (element,)
            )
        workers.append(element)
        index = len(workers) - 1
        return index, index
    if isinstance(element, (Pipeline, SplitJoin)):
        return element._flatten_into(workers, connections)
    raise GraphValidationError("cannot flatten %r" % (element,))


class Pipeline:
    """A sequential composition of stream elements."""

    def __init__(self, *elements: Element):
        if not elements:
            raise GraphValidationError("empty pipeline")
        self.elements = list(elements)

    def add(self, element: Element) -> "Pipeline":
        self.elements.append(element)
        return self

    def _flatten_into(self, workers, connections) -> Tuple[int, int]:
        head = tail = None
        for element in self.elements:
            sub_head, sub_tail = _flatten_element(element, workers, connections)
            if head is None:
                head = sub_head
            else:
                connections.append((tail, _free_out_port(workers, connections, tail),
                                    sub_head, _free_in_port(workers, connections, sub_head)))
            tail = sub_tail
        return head, tail

    def flatten(self) -> StreamGraph:
        """Flatten this composition into a validated stream graph."""
        workers: List[Worker] = []
        connections: List[Tuple[int, int, int, int]] = []
        self._flatten_into(workers, connections)
        return StreamGraph(workers, connections)


class SplitJoin:
    """A parallel composition: splitter, N branches, joiner."""

    def __init__(self, splitter: Splitter, *branches_and_joiner: Element):
        if len(branches_and_joiner) < 2:
            raise GraphValidationError(
                "SplitJoin needs at least one branch and a joiner"
            )
        joiner = branches_and_joiner[-1]
        branches = list(branches_and_joiner[:-1])
        if not isinstance(splitter, Splitter):
            raise GraphValidationError("first element must be a Splitter")
        if not isinstance(joiner, Joiner):
            raise GraphValidationError("last element must be a Joiner")
        if splitter.n_outputs != len(branches):
            raise GraphValidationError(
                "splitter has %d outputs but %d branches given"
                % (splitter.n_outputs, len(branches))
            )
        if joiner.n_inputs != len(branches):
            raise GraphValidationError(
                "joiner has %d inputs but %d branches given"
                % (joiner.n_inputs, len(branches))
            )
        self.splitter = splitter
        self.branches = branches
        self.joiner = joiner

    def _flatten_into(self, workers, connections) -> Tuple[int, int]:
        split_head, split_tail = _flatten_element(self.splitter, workers, connections)
        join_added = False
        join_index = None
        for port, branch in enumerate(self.branches):
            branch_head, branch_tail = _flatten_element(branch, workers, connections)
            connections.append((split_tail, port,
                                branch_head,
                                _free_in_port(workers, connections, branch_head)))
            if not join_added:
                workers_before = len(workers)
                join_head, _ = _flatten_element(self.joiner, workers, connections)
                join_index = join_head
                join_added = True
                assert len(workers) == workers_before + 1
            connections.append((branch_tail,
                                _free_out_port(workers, connections, branch_tail),
                                join_index, port))
        return split_head, join_index

    def flatten(self) -> StreamGraph:
        workers: List[Worker] = []
        connections: List[Tuple[int, int, int, int]] = []
        self._flatten_into(workers, connections)
        return StreamGraph(workers, connections)


def _free_in_port(workers, connections, worker_index: int) -> int:
    """First input port of ``worker_index`` not yet wired."""
    used = {dp for (_, _, dst, dp) in connections if dst == worker_index}
    for port in range(workers[worker_index].n_inputs):
        if port not in used:
            return port
    raise GraphValidationError(
        "no free input port on %r" % (workers[worker_index],)
    )


def _free_out_port(workers, connections, worker_index: int) -> int:
    """First output port of ``worker_index`` not yet wired."""
    used = {sp for (src, sp, _, _) in connections if src == worker_index}
    for port in range(workers[worker_index].n_outputs):
        if port not in used:
            return port
    raise GraphValidationError(
        "no free output port on %r" % (workers[worker_index],)
    )
