"""Flattened stream graphs.

A :class:`StreamGraph` is the compiler's view of a program: a list of
workers in topological order plus directed edges between worker ports.
Exactly one worker (the *head*) has a free input port — the program
input — and exactly one (the *tail*) has a free output port — the
program output, matching StreamJIT's single-input single-output
graphs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.graph.workers import Worker

__all__ = ["Edge", "StreamGraph", "GraphValidationError"]


class GraphValidationError(Exception):
    """Raised when a stream graph is malformed."""


@dataclass(frozen=True)
class Edge:
    """A directed channel from ``src``'s output port to ``dst``'s input."""

    index: int
    src: int
    src_port: int
    dst: int
    dst_port: int

    def __repr__(self) -> str:
        return "<edge %d: %d.%d -> %d.%d>" % (
            self.index, self.src, self.src_port, self.dst, self.dst_port,
        )


class StreamGraph:
    """An immutable flattened stream graph.

    Construction wires worker ids and validates the topology; use
    :class:`repro.graph.Pipeline` / :class:`repro.graph.SplitJoin` to
    build graphs conveniently.
    """

    def __init__(self, workers: List[Worker],
                 connections: List[Tuple[int, int, int, int]]):
        self.workers: List[Worker] = list(workers)
        for worker_id, worker in enumerate(self.workers):
            worker.worker_id = worker_id
        self.edges: List[Edge] = [
            Edge(i, src, sp, dst, dp)
            for i, (src, sp, dst, dp) in enumerate(connections)
        ]
        self._in_edges: Dict[int, List[Optional[Edge]]] = {
            w.worker_id: [None] * w.n_inputs for w in self.workers
        }
        self._out_edges: Dict[int, List[Optional[Edge]]] = {
            w.worker_id: [None] * w.n_outputs for w in self.workers
        }
        for edge in self.edges:
            self._wire(edge)
        self.head: Worker = self._find_head()
        self.tail: Worker = self._find_tail()
        self._validate()

    # -- construction helpers ---------------------------------------------

    def _wire(self, edge: Edge) -> None:
        try:
            out_slots = self._out_edges[edge.src]
            in_slots = self._in_edges[edge.dst]
        except KeyError as exc:
            raise GraphValidationError("edge %r names unknown worker" % (edge,)) from exc
        if not (0 <= edge.src_port < len(out_slots)):
            raise GraphValidationError("bad src port on %r" % (edge,))
        if not (0 <= edge.dst_port < len(in_slots)):
            raise GraphValidationError("bad dst port on %r" % (edge,))
        if out_slots[edge.src_port] is not None:
            raise GraphValidationError("output port reused on %r" % (edge,))
        if in_slots[edge.dst_port] is not None:
            raise GraphValidationError("input port reused on %r" % (edge,))
        out_slots[edge.src_port] = edge
        in_slots[edge.dst_port] = edge

    def _find_head(self) -> Worker:
        heads = [
            w for w in self.workers
            if w.n_inputs == 1 and self._in_edges[w.worker_id][0] is None
        ]
        if len(heads) != 1:
            raise GraphValidationError(
                "expected exactly one free input port, found %d" % len(heads)
            )
        return heads[0]

    def _find_tail(self) -> Worker:
        tails = [
            w for w in self.workers
            if w.n_outputs == 1 and self._out_edges[w.worker_id][0] is None
        ]
        if len(tails) != 1:
            raise GraphValidationError(
                "expected exactly one free output port, found %d" % len(tails)
            )
        return tails[0]

    def _validate(self) -> None:
        for worker in self.workers:
            for port, edge in enumerate(self._in_edges[worker.worker_id]):
                if edge is None and worker is not self.head:
                    raise GraphValidationError(
                        "unconnected input %d of %r" % (port, worker)
                    )
            for port, edge in enumerate(self._out_edges[worker.worker_id]):
                if edge is None and worker is not self.tail:
                    raise GraphValidationError(
                        "unconnected output %d of %r" % (port, worker)
                    )
        order = self.topological_order()
        if len(order) != len(self.workers):
            raise GraphValidationError("graph contains a cycle")

    # -- queries ------------------------------------------------------------

    def __len__(self) -> int:
        return len(self.workers)

    def worker(self, worker_id: int) -> Worker:
        return self.workers[worker_id]

    def in_edges(self, worker_id: int) -> List[Edge]:
        return [e for e in self._in_edges[worker_id] if e is not None]

    def out_edges(self, worker_id: int) -> List[Edge]:
        return [e for e in self._out_edges[worker_id] if e is not None]

    def in_edge(self, worker_id: int, port: int) -> Optional[Edge]:
        return self._in_edges[worker_id][port]

    def out_edge(self, worker_id: int, port: int) -> Optional[Edge]:
        return self._out_edges[worker_id][port]

    def predecessors(self, worker_id: int) -> List[int]:
        return [e.src for e in self.in_edges(worker_id)]

    def successors(self, worker_id: int) -> List[int]:
        return [e.dst for e in self.out_edges(worker_id)]

    @property
    def is_stateful(self) -> bool:
        """True if any worker carries explicit state (paper Section 5)."""
        return any(w.is_stateful for w in self.workers)

    @property
    def is_peeking(self) -> bool:
        return any(w.is_peeking for w in self.workers)

    def topological_order(self) -> List[int]:
        """Worker ids in a deterministic topological order."""
        indegree = {w.worker_id: len(self.in_edges(w.worker_id))
                    for w in self.workers}
        ready = sorted(w for w, d in indegree.items() if d == 0)
        order: List[int] = []
        while ready:
            current = ready.pop(0)
            order.append(current)
            newly_ready = []
            for edge in self.out_edges(current):
                indegree[edge.dst] -= 1
                if indegree[edge.dst] == 0:
                    newly_ready.append(edge.dst)
            # Keep determinism: merge while preserving sorted order.
            ready = sorted(ready + newly_ready)
        return order

    def analyze(self, name: str = ""):
        """Run the static analyzer's graph passes over this graph.

        Returns an :class:`repro.analysis.AnalysisReport`; construction
        already enforces structural validity (:meth:`_validate`), this
        adds the semantic SDF checks (balance equations, deadlock
        freedom, peeking buffers) without raising.
        """
        from repro.analysis import check_graph
        return check_graph(self, name=name)

    def total_work_per_iteration(self, repetitions: Dict[int, int]) -> float:
        """Total work units of one steady-state iteration."""
        return sum(
            self.workers[w].work_estimate * reps
            for w, reps in repetitions.items()
        )

    def describe(self) -> str:
        """A human-readable multi-line description of the graph."""
        lines = ["StreamGraph with %d workers, %d edges" %
                 (len(self.workers), len(self.edges))]
        for worker in self.workers:
            kind = "stateful" if worker.is_stateful else (
                "peeking" if worker.is_peeking else "stateless")
            lines.append("  [%d] %s (%s) pop=%r peek=%r push=%r" % (
                worker.worker_id, worker.name, kind,
                worker.pop_rates, worker.peek_rates, worker.push_rates))
        for edge in self.edges:
            lines.append("  %r" % (edge,))
        return "\n".join(lines)
