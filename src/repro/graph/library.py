"""A library of reusable workers.

These are the building blocks from which the benchmark applications in
:mod:`repro.apps` are composed: arithmetic maps, FIR filters (peeking),
decimators, accumulators, and simple stateful transforms.  All numeric
workers operate on plain Python floats/ints so graph execution stays
deterministic and hashable for the output-equivalence tests.
"""

from __future__ import annotations

import math
from typing import Callable, List, Sequence

from repro.graph.workers import Filter, StatefulFilter

__all__ = [
    "Identity",
    "MapFilter",
    "ScaleFilter",
    "OffsetFilter",
    "FIRFilter",
    "MovingAverage",
    "Decimator",
    "Expander",
    "BlockTransform",
    "Accumulator",
    "Counter",
    "DelayFilter",
    "ArrayStateFilter",
    "HeavyCompute",
]


class Identity(Filter):
    """Pass items through unchanged (pop 1, push 1)."""

    def __init__(self, name: str = None):
        super().__init__(pop=1, push=1, work_estimate=0.1,
                         name=name or "identity")

    def work(self, input, output) -> None:
        output.push(input.pop())


class MapFilter(Filter):
    """Apply a pure function to every item."""

    def __init__(self, fn: Callable, work_estimate: float = 1.0,
                 name: str = None):
        super().__init__(pop=1, push=1, work_estimate=work_estimate,
                         name=name or "map")
        self._fn = fn

    def work(self, input, output) -> None:
        output.push(self._fn(input.pop()))


class ScaleFilter(Filter):
    """Multiply every item by a constant."""

    def __init__(self, factor: float, name: str = None):
        super().__init__(pop=1, push=1, work_estimate=0.5,
                         name=name or "scale")
        self.factor = factor

    def work(self, input, output) -> None:
        output.push(input.pop() * self.factor)


class OffsetFilter(Filter):
    """Add a constant to every item."""

    def __init__(self, offset: float, name: str = None):
        super().__init__(pop=1, push=1, work_estimate=0.5,
                         name=name or "offset")
        self.offset = offset

    def work(self, input, output) -> None:
        output.push(input.pop() + self.offset)


class FIRFilter(Filter):
    """A sliding-window FIR filter.

    Peeks ``len(coefficients)`` items, pops one, pushes the dot
    product.  Peeking keeps it stateless (paper Section 2), so the
    runtime maintains a peeking buffer of ``taps - 1`` items for it —
    the canonical source of implicit state in stateless graphs.
    """

    def __init__(self, coefficients: Sequence[float], name: str = None):
        coefficients = [float(c) for c in coefficients]
        if not coefficients:
            raise ValueError("FIR filter needs at least one coefficient")
        super().__init__(pop=1, push=1, peek=len(coefficients),
                         work_estimate=0.2 * len(coefficients),
                         name=name or "fir")
        self.coefficients = coefficients

    def work(self, input, output) -> None:
        total = 0.0
        for i, coefficient in enumerate(self.coefficients):
            total += coefficient * input.peek(i)
        input.pop()
        output.push(total)


class MovingAverage(FIRFilter):
    """An N-tap moving average (uniform FIR)."""

    def __init__(self, taps: int, name: str = None):
        super().__init__([1.0 / taps] * taps, name=name or "moving_average")


class Decimator(Filter):
    """Keep one item out of every ``factor`` (pop factor, push 1)."""

    def __init__(self, factor: int, name: str = None):
        if factor < 1:
            raise ValueError("factor must be >= 1")
        super().__init__(pop=factor, push=1, work_estimate=0.2 * factor,
                         name=name or "decimate")
        self.factor = factor

    def work(self, input, output) -> None:
        kept = input.pop()
        for _ in range(self.factor - 1):
            input.pop()
        output.push(kept)


class Expander(Filter):
    """Repeat every item ``factor`` times (pop 1, push factor)."""

    def __init__(self, factor: int, name: str = None):
        if factor < 1:
            raise ValueError("factor must be >= 1")
        super().__init__(pop=1, push=factor, work_estimate=0.2 * factor,
                         name=name or "expand")
        self.factor = factor

    def work(self, input, output) -> None:
        item = input.pop()
        for _ in range(self.factor):
            output.push(item)


class BlockTransform(Filter):
    """Apply a function to a block of items (pop N, push M).

    The function receives a list of N items and must return a list of
    M items.  Used to model FFTs, coders and block interleavers.
    """

    def __init__(self, pop: int, push: int,
                 fn: Callable[[List], List],
                 work_estimate: float = None, name: str = None):
        super().__init__(
            pop=pop, push=push,
            work_estimate=(work_estimate if work_estimate is not None
                           else 0.5 * (pop + push)),
            name=name or "block",
        )
        self._fn = fn

    def work(self, input, output) -> None:
        block = [input.pop() for _ in range(self.pop)]
        result = self._fn(block)
        if len(result) != self.push:
            raise ValueError(
                "%s returned %d items, declared push %d"
                % (self.name, len(result), self.push)
            )
        for item in result:
            output.push(item)


class Accumulator(StatefulFilter):
    """A running sum — the simplest stateful filter."""

    state_fields = ("total",)

    def __init__(self, name: str = None):
        super().__init__(pop=1, push=1, work_estimate=0.5,
                         name=name or "accumulate")
        self.total = 0.0

    def work(self, input, output) -> None:
        self.total += input.pop()
        output.push(self.total)


class Counter(StatefulFilter):
    """Tag each item with a monotonically increasing sequence number."""

    state_fields = ("count",)

    def __init__(self, name: str = None):
        super().__init__(pop=1, push=1, work_estimate=0.5,
                         name=name or "counter")
        self.count = 0

    def work(self, input, output) -> None:
        item = input.pop()
        output.push((self.count, item))
        self.count += 1


class DelayFilter(StatefulFilter):
    """Delay the stream by N items, emitting ``initial`` first.

    Stateful: the delay line is explicit state (unlike peeking, the
    emitted value depends on history that has already been popped).
    """

    state_fields = ("delay_line",)

    def __init__(self, delay: int, initial: float = 0.0, name: str = None):
        if delay < 1:
            raise ValueError("delay must be >= 1")
        super().__init__(pop=1, push=1, work_estimate=0.5,
                         name=name or "delay")
        self.delay_line = [initial] * delay

    def work(self, input, output) -> None:
        output.push(self.delay_line.pop(0))
        self.delay_line.append(input.pop())


class ArrayStateFilter(StatefulFilter):
    """A filter carrying a large mutable array as state.

    Used by the state-size experiments (paper Figure 14b): the array
    contributes ``8 * size`` bytes to the program state that
    asynchronous state transfer must move.
    """

    state_fields = ("array", "cursor")

    def __init__(self, size: int, name: str = None):
        if size < 1:
            raise ValueError("size must be >= 1")
        super().__init__(pop=1, push=1, work_estimate=1.0,
                         name=name or "array_state")
        self.array = [0.0] * size
        self.cursor = 0

    def work(self, input, output) -> None:
        item = input.pop()
        self.array[self.cursor] = item
        self.cursor = (self.cursor + 1) % len(self.array)
        output.push(item + self.array[self.cursor])


class HeavyCompute(Filter):
    """A stateless filter with tunable per-item compute cost.

    ``intensity`` scales the declared work estimate; the actual
    computation is a short deterministic transcendental chain so that
    outputs are still value-checked.  Used by the workload-fluctuation
    experiment (paper Figure 14a).
    """

    def __init__(self, intensity: float = 1.0, name: str = None):
        super().__init__(pop=1, push=1, work_estimate=max(intensity, 0.01),
                         name=name or "heavy")
        self.intensity = intensity

    def work(self, input, output) -> None:
        value = input.pop()
        output.push(math.sin(value) * math.cos(value) + value)
