"""A library of reusable workers.

These are the building blocks from which the benchmark applications in
:mod:`repro.apps` are composed: arithmetic maps, FIR filters (peeking),
decimators, accumulators, and simple stateful transforms.  All numeric
workers operate on plain Python floats/ints so graph execution stays
deterministic and hashable for the output-equivalence tests.

Most workers here also ship a ``work_batch`` kernel for the vectorized
fast path.  Every kernel is written to reproduce the scalar ``work``
bit-for-bit: accumulations start from an explicit zero and add terms
in the same left-to-right order (NumPy elementwise ops are IEEE-exact;
only reordered reductions are not), and transcendental kernels are
only enabled when this platform's NumPy ufuncs agree with ``math.*``
on a probe sweep (see :data:`NUMPY_TRIG_EXACT`) — otherwise the worker
silently keeps the scalar fallback.
"""

from __future__ import annotations

import math
from typing import Callable, List, Sequence

from repro.graph.workers import Filter, StatefulFilter

try:
    import numpy as _np
except ImportError:  # pragma: no cover - the toolchain bakes numpy in
    _np = None


def _probe_trig_exact() -> bool:
    """Whether ``np.sin``/``np.cos`` match ``math.sin``/``math.cos``.

    NumPy may route float64 trig through SIMD polynomial kernels that
    round differently from the C library behind :mod:`math`.  Batch
    kernels built on trig are only byte-identical to the scalar oracle
    when the two agree, so they are gated on this sweep over several
    magnitude decades of the canonical test-input lattice.
    """
    if _np is None:  # pragma: no cover - numpy is a baked-in dep
        return False
    base = [((i * 37 + 11) % 1000) / 1000.0 - 0.5 for i in range(512)]
    values = [v * scale for scale in (1.0, 3.7, 97.3, 1e4, 1e8)
              for v in base]
    array = _np.array(values)
    sines = _np.sin(array)
    cosines = _np.cos(array)
    return all(
        sines[i] == math.sin(v) and cosines[i] == math.cos(v)
        for i, v in enumerate(values)
    )


#: True when vectorized sin/cos reproduce libm bit-for-bit here.
NUMPY_TRIG_EXACT = _probe_trig_exact()

__all__ = [
    "NUMPY_TRIG_EXACT",
    "Identity",
    "MapFilter",
    "ScaleFilter",
    "OffsetFilter",
    "FIRFilter",
    "MovingAverage",
    "Decimator",
    "Expander",
    "BlockTransform",
    "Accumulator",
    "Counter",
    "DelayFilter",
    "ArrayStateFilter",
    "HeavyCompute",
]


class Identity(Filter):
    """Pass items through unchanged (pop 1, push 1)."""

    vector_items = True

    def __init__(self, name: str = None):
        super().__init__(pop=1, push=1, work_estimate=0.1,
                         name=name or "identity")

    def work(self, input, output) -> None:
        output.push(input.pop())

    def work_batch(self, inputs, outputs, n_firings) -> None:
        outputs[0][...] = inputs[0]


class MapFilter(Filter):
    """Apply a pure function to every item (numeric in and out)."""

    vector_items = True

    def __init__(self, fn: Callable, work_estimate: float = 1.0,
                 name: str = None):
        super().__init__(pop=1, push=1, work_estimate=work_estimate,
                         name=name or "map")
        self._fn = fn

    def work(self, input, output) -> None:
        output.push(self._fn(input.pop()))

    def work_batch(self, inputs, outputs, n_firings) -> None:
        # The function is arbitrary Python: apply it per item so batch
        # results match the scalar path exactly (only channel movement
        # is batched).
        fn = self._fn
        outputs[0][...] = [fn(item) for item in inputs[0].tolist()]


class ScaleFilter(Filter):
    """Multiply every item by a constant."""

    vector_items = True

    def __init__(self, factor: float, name: str = None):
        super().__init__(pop=1, push=1, work_estimate=0.5,
                         name=name or "scale")
        self.factor = factor

    def work(self, input, output) -> None:
        output.push(input.pop() * self.factor)

    def work_batch(self, inputs, outputs, n_firings) -> None:
        _np.multiply(inputs[0], self.factor, out=outputs[0])


class OffsetFilter(Filter):
    """Add a constant to every item."""

    vector_items = True

    def __init__(self, offset: float, name: str = None):
        super().__init__(pop=1, push=1, work_estimate=0.5,
                         name=name or "offset")
        self.offset = offset

    def work(self, input, output) -> None:
        output.push(input.pop() + self.offset)

    def work_batch(self, inputs, outputs, n_firings) -> None:
        _np.add(inputs[0], self.offset, out=outputs[0])


class FIRFilter(Filter):
    """A sliding-window FIR filter.

    Peeks ``len(coefficients)`` items, pops one, pushes the dot
    product.  Peeking keeps it stateless (paper Section 2), so the
    runtime maintains a peeking buffer of ``taps - 1`` items for it —
    the canonical source of implicit state in stateless graphs.
    """

    def __init__(self, coefficients: Sequence[float], name: str = None):
        coefficients = [float(c) for c in coefficients]
        if not coefficients:
            raise ValueError("FIR filter needs at least one coefficient")
        super().__init__(pop=1, push=1, peek=len(coefficients),
                         work_estimate=0.2 * len(coefficients),
                         name=name or "fir")
        self.coefficients = coefficients

    vector_items = True

    def work(self, input, output) -> None:
        total = 0.0
        for i, coefficient in enumerate(self.coefficients):
            total += coefficient * input.peek(i)
        input.pop()
        output.push(total)

    def work_batch(self, inputs, outputs, n_firings) -> None:
        # Sliding-window dot product as per-tap accumulation: starting
        # from zero and adding one shifted term per coefficient keeps
        # the left-to-right association of the scalar loop (np.convolve
        # and np.dot reassociate and would not be byte-identical).
        window = inputs[0]
        out = outputs[0]
        out[...] = 0.0
        for i, coefficient in enumerate(self.coefficients):
            out += coefficient * window[i:i + n_firings]


class MovingAverage(FIRFilter):
    """An N-tap moving average (uniform FIR)."""

    def __init__(self, taps: int, name: str = None):
        super().__init__([1.0 / taps] * taps, name=name or "moving_average")


class Decimator(Filter):
    """Keep one item out of every ``factor`` (pop factor, push 1)."""

    def __init__(self, factor: int, name: str = None):
        if factor < 1:
            raise ValueError("factor must be >= 1")
        super().__init__(pop=factor, push=1, work_estimate=0.2 * factor,
                         name=name or "decimate")
        self.factor = factor

    vector_items = True

    def work(self, input, output) -> None:
        kept = input.pop()
        for _ in range(self.factor - 1):
            input.pop()
        output.push(kept)

    def work_batch(self, inputs, outputs, n_firings) -> None:
        outputs[0][...] = inputs[0][::self.factor]


class Expander(Filter):
    """Repeat every item ``factor`` times (pop 1, push factor)."""

    def __init__(self, factor: int, name: str = None):
        if factor < 1:
            raise ValueError("factor must be >= 1")
        super().__init__(pop=1, push=factor, work_estimate=0.2 * factor,
                         name=name or "expand")
        self.factor = factor

    vector_items = True

    def work(self, input, output) -> None:
        item = input.pop()
        for _ in range(self.factor):
            output.push(item)

    def work_batch(self, inputs, outputs, n_firings) -> None:
        outputs[0].reshape(n_firings, self.factor)[...] = inputs[0][:, None]


class BlockTransform(Filter):
    """Apply a function to a block of items (pop N, push M).

    The function receives a list of N items and must return a list of
    M items.  Used to model FFTs, coders and block interleavers.
    """

    def __init__(self, pop: int, push: int,
                 fn: Callable[[List], List],
                 work_estimate: float = None, name: str = None):
        super().__init__(
            pop=pop, push=push,
            work_estimate=(work_estimate if work_estimate is not None
                           else 0.5 * (pop + push)),
            name=name or "block",
        )
        self._fn = fn

    vector_items = True

    def work(self, input, output) -> None:
        block = [input.pop() for _ in range(self.pop)]
        result = self._fn(block)
        if len(result) != self.push:
            raise ValueError(
                "%s returned %d items, declared push %d"
                % (self.name, len(result), self.push)
            )
        for item in result:
            output.push(item)

    def work_batch(self, inputs, outputs, n_firings) -> None:
        # The block function is arbitrary Python: run it per block.
        fn = self._fn
        rows = outputs[0].reshape(n_firings, self.push)
        blocks = inputs[0].reshape(n_firings, self.pop).tolist()
        for row, block in enumerate(blocks):
            result = fn(block)
            if len(result) != self.push:
                raise ValueError(
                    "%s returned %d items, declared push %d"
                    % (self.name, len(result), self.push)
                )
            rows[row] = result


class Accumulator(StatefulFilter):
    """A running sum — the simplest stateful filter."""

    state_fields = ("total",)

    def __init__(self, name: str = None):
        super().__init__(pop=1, push=1, work_estimate=0.5,
                         name=name or "accumulate")
        self.total = 0.0

    vector_items = True

    def work(self, input, output) -> None:
        self.total += input.pop()
        output.push(self.total)

    def work_batch(self, inputs, outputs, n_firings) -> None:
        # Seeding the cumulative sum with the carried total reproduces
        # the sequential "total += item" chain bit-for-bit (cumsum adds
        # strictly left to right; adding the seed afterwards would
        # reassociate and drift).
        totals = _np.cumsum(_np.concatenate(((self.total,), inputs[0])))
        outputs[0][...] = totals[1:]
        self.total = float(totals[-1])


class Counter(StatefulFilter):
    """Tag each item with a monotonically increasing sequence number."""

    state_fields = ("count",)

    def __init__(self, name: str = None):
        super().__init__(pop=1, push=1, work_estimate=0.5,
                         name=name or "counter")
        self.count = 0

    def work(self, input, output) -> None:
        item = input.pop()
        output.push((self.count, item))
        self.count += 1


class DelayFilter(StatefulFilter):
    """Delay the stream by N items, emitting ``initial`` first.

    Stateful: the delay line is explicit state (unlike peeking, the
    emitted value depends on history that has already been popped).
    """

    state_fields = ("delay_line",)

    def __init__(self, delay: int, initial: float = 0.0, name: str = None):
        if delay < 1:
            raise ValueError("delay must be >= 1")
        super().__init__(pop=1, push=1, work_estimate=0.5,
                         name=name or "delay")
        self.delay_line = [initial] * delay

    vector_items = True

    def work(self, input, output) -> None:
        output.push(self.delay_line.pop(0))
        self.delay_line.append(input.pop())

    def work_batch(self, inputs, outputs, n_firings) -> None:
        # Pure data movement through the delay line: the batch emits
        # the first n items of line+input and keeps the rest as the
        # new line (same Python floats the scalar path would carry).
        combined = self.delay_line + inputs[0].tolist()
        outputs[0][...] = combined[:n_firings]
        self.delay_line = combined[n_firings:]


class ArrayStateFilter(StatefulFilter):
    """A filter carrying a large mutable array as state.

    Used by the state-size experiments (paper Figure 14b): the array
    contributes ``8 * size`` bytes to the program state that
    asynchronous state transfer must move.
    """

    state_fields = ("array", "cursor")

    def __init__(self, size: int, name: str = None):
        if size < 1:
            raise ValueError("size must be >= 1")
        super().__init__(pop=1, push=1, work_estimate=1.0,
                         name=name or "array_state")
        self.array = [0.0] * size
        self.cursor = 0

    vector_items = True

    def work(self, input, output) -> None:
        item = input.pop()
        self.array[self.cursor] = item
        self.cursor = (self.cursor + 1) % len(self.array)
        output.push(item + self.array[self.cursor])

    def work_batch(self, inputs, outputs, n_firings) -> None:
        # Firing j writes slot (cursor+j) % size, then reads slot
        # (cursor+j+1) % size.  That read sees this batch's own write
        # x[j+1-size] once j >= size-1, else the pre-batch array.
        x = inputs[0]
        size = len(self.array)
        cursor = self.cursor
        stored = _np.asarray(self.array)
        reads = _np.empty(n_firings, dtype=_np.float64)
        overhang = min(n_firings, size - 1)
        if overhang:
            slots = (cursor + 1 + _np.arange(overhang)) % size
            reads[:overhang] = stored[slots]
        if n_firings > size - 1:
            reads[size - 1:] = x[:n_firings - (size - 1)]
        _np.add(x, reads, out=outputs[0])
        # Only the last min(n, size) writes survive, and their slots
        # are pairwise distinct, so one fancy assignment applies them.
        keep = min(n_firings, size)
        slots = (cursor + _np.arange(n_firings - keep, n_firings)) % size
        stored[slots] = x[n_firings - keep:]
        self.array = stored.tolist()
        self.cursor = (cursor + n_firings) % size


class HeavyCompute(Filter):
    """A stateless filter with tunable per-item compute cost.

    ``intensity`` scales the declared work estimate; the actual
    computation is a short deterministic transcendental chain so that
    outputs are still value-checked.  Used by the workload-fluctuation
    experiment (paper Figure 14a).
    """

    vector_items = True

    def __init__(self, intensity: float = 1.0, name: str = None):
        super().__init__(pop=1, push=1, work_estimate=max(intensity, 0.01),
                         name=name or "heavy")
        self.intensity = intensity

    def work(self, input, output) -> None:
        value = input.pop()
        output.push(math.sin(value) * math.cos(value) + value)

    def work_batch(self, inputs, outputs, n_firings) -> None:
        values = inputs[0]
        out = outputs[0]
        _np.sin(values, out=out)
        out *= _np.cos(values)
        out += values

    if not NUMPY_TRIG_EXACT:  # pragma: no cover - platform-dependent
        work_batch = None
