"""The synchronous-data-flow (SDF) stream-graph language.

This package is the reproduction of StreamJIT's programming model
(paper Section 2): stream graphs composed from *filters*, *splitters*
and *joiners* (collectively *workers*), each declaring static peek, pop
and push rates.  Graphs are built hierarchically from
:class:`Pipeline` and :class:`SplitJoin` and flattened into a
:class:`StreamGraph` of workers connected by edges.

A graph is *stateless* if every worker is stateless; peeking workers
remain stateless even though the runtime maintains peeking buffers for
them (this distinction drives the choice between implicit and explicit
state transfer during reconfiguration).
"""

from repro.graph.workers import (
    DuplicateSplitter,
    Filter,
    Joiner,
    RoundRobinJoiner,
    RoundRobinSplitter,
    Splitter,
    StatefulFilter,
    Worker,
)
from repro.graph.keyed import KeyedStateWorker, KeyMigrationSession
from repro.graph.builders import Pipeline, SplitJoin
from repro.graph.topology import Edge, GraphValidationError, StreamGraph
from repro.graph import library

__all__ = [
    "DuplicateSplitter",
    "Edge",
    "Filter",
    "GraphValidationError",
    "Joiner",
    "KeyMigrationSession",
    "KeyedStateWorker",
    "Pipeline",
    "RoundRobinJoiner",
    "RoundRobinSplitter",
    "SplitJoin",
    "Splitter",
    "StatefulFilter",
    "StreamGraph",
    "Worker",
    "library",
]
