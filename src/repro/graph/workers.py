"""Worker base classes: filters, splitters and joiners.

Every worker declares static data rates (paper Section 2):

* ``pop_rates[i]``  — items consumed from input ``i`` per firing,
* ``peek_rates[i]`` — items examined on input ``i`` per firing
  (``peek >= pop``; the runtime keeps a *peeking buffer* of
  ``peek - pop`` leftover items so sliding-window workers stay
  stateless),
* ``push_rates[o]`` — items produced on output ``o`` per firing.

Workers also declare a ``work_estimate`` — abstract cost units per
firing — used by the compiler's cost model for load balancing and by
the cluster simulator to derive execution durations.

State is explicit: a stateful worker lists its mutable attributes in
``state_fields``; :meth:`Worker.get_state` / :meth:`Worker.set_state`
copy exactly those.  This is what asynchronous state transfer captures
and what two-phase compilation injects into pseudo-blobs.

Vectorized execution is opt-in per worker: ``vector_items = True``
declares that every item the worker reads or writes is a plain IEEE
number (so its edges may live in contiguous float64 buffers), and an
optional ``work_batch(inputs, outputs, n_firings)`` method executes
``n_firings`` firings as one batch over NumPy views.  Workers without
``work_batch`` still run inside a vectorized blob via the per-firing
scalar fallback; workers without ``vector_items`` exclude their whole
blob from the vectorized backend.
"""

from __future__ import annotations

import copy
from typing import Any, Dict, Sequence, Tuple

__all__ = [
    "Worker",
    "Filter",
    "StatefulFilter",
    "Splitter",
    "Joiner",
    "RoundRobinSplitter",
    "DuplicateSplitter",
    "RoundRobinJoiner",
]


def _as_rate_tuple(rates, n: int, name: str) -> Tuple[int, ...]:
    if isinstance(rates, int):
        rates = (rates,) * n
    rates = tuple(int(r) for r in rates)
    if len(rates) != n:
        raise ValueError(
            "%s must have %d entries, got %r" % (name, n, rates)
        )
    if any(r < 0 for r in rates):
        raise ValueError("%s must be non-negative, got %r" % (name, rates))
    return rates


class Worker:
    """Base class for all stream-graph workers.

    Subclasses implement :meth:`fire`, reading from input ports and
    writing to output ports.  Port objects support ``pop()``,
    ``peek(i)`` and ``push(item)`` and enforce the declared rates.
    """

    #: Names of instance attributes that constitute mutable worker
    #: state.  Empty for stateless workers.
    state_fields: Tuple[str, ...] = ()

    #: True for the built-in splitters/joiners that the compiler may
    #: remove (splitter/joiner removal optimization).
    builtin: bool = False

    #: True when every item this worker reads or writes is a plain
    #: IEEE-754 number, so its edges can be stored in contiguous
    #: float64 buffers (:class:`~repro.runtime.channels.ArrayChannel`)
    #: without changing observable values.  The vectorized backend is
    #: only selected for a blob when *all* its workers declare this.
    vector_items: bool = False

    #: Optional batch kernel.  When set (a method), the vectorized
    #: fast path may execute ``n_firings`` consecutive firings as one
    #: call::
    #:
    #:     work_batch(inputs, outputs, n_firings)
    #:
    #: ``inputs[i]`` is a read-only float64 view holding exactly
    #: ``pop_rates[i] * n_firings + (peek_rates[i] - pop_rates[i])``
    #: items (the batch plus the peeking overhang); ``outputs[o]`` is
    #: a writable float64 view of ``push_rates[o] * n_firings`` slots
    #: that must be completely filled.  The kernel must not touch the
    #: channels itself (the plan moves the data) and must leave the
    #: worker's ``state_fields`` exactly as ``n_firings`` scalar
    #: firings would — byte-identity with the per-firing oracle is
    #: asserted by the test suite.
    work_batch = None

    def __init__(
        self,
        n_inputs: int,
        n_outputs: int,
        pop_rates,
        push_rates,
        peek_rates=None,
        work_estimate: float = 1.0,
        name: str = None,
    ):
        if n_inputs < 0 or n_outputs < 0:
            raise ValueError("port counts must be non-negative")
        self.n_inputs = n_inputs
        self.n_outputs = n_outputs
        self.pop_rates = _as_rate_tuple(pop_rates, n_inputs, "pop_rates")
        if peek_rates is None:
            peek_rates = self.pop_rates
        self.peek_rates = _as_rate_tuple(peek_rates, n_inputs, "peek_rates")
        self.push_rates = _as_rate_tuple(push_rates, n_outputs, "push_rates")
        for peek, pop in zip(self.peek_rates, self.pop_rates):
            if peek < pop:
                raise ValueError(
                    "peek rate %d below pop rate %d" % (peek, pop)
                )
        if work_estimate < 0:
            raise ValueError("work_estimate must be non-negative")
        self.work_estimate = float(work_estimate)
        self.name = name or type(self).__name__
        #: Assigned by :meth:`StreamGraph.freeze`; stable identity used
        #: to match workers across graph instances built from the same
        #: blueprint.
        self.worker_id: int = -1

    # -- state ------------------------------------------------------------

    @property
    def is_stateful(self) -> bool:
        return bool(self.state_fields)

    @property
    def is_peeking(self) -> bool:
        return any(
            peek > pop for peek, pop in zip(self.peek_rates, self.pop_rates)
        )

    @property
    def supports_work_batch(self) -> bool:
        """Whether this worker ships a batch kernel (see ``work_batch``)."""
        return callable(self.work_batch)

    def get_state(self) -> Dict[str, Any]:
        """Deep-copy and return this worker's mutable state."""
        return {
            field: copy.deepcopy(getattr(self, field))
            for field in self.state_fields
        }

    def set_state(self, state: Dict[str, Any]) -> None:
        """Install state previously captured with :meth:`get_state`."""
        if set(state) != set(self.state_fields):
            raise ValueError(
                "state fields %r do not match declared %r"
                % (sorted(state), sorted(self.state_fields))
            )
        for field, value in state.items():
            setattr(self, field, copy.deepcopy(value))

    # -- execution ---------------------------------------------------------

    def fire(self, inputs: Sequence, outputs: Sequence) -> None:
        """Execute one firing.  Subclasses must override."""
        raise NotImplementedError

    def __repr__(self) -> str:
        return "<%s #%d pop=%r peek=%r push=%r>" % (
            self.name,
            self.worker_id,
            self.pop_rates,
            self.peek_rates,
            self.push_rates,
        )


class Filter(Worker):
    """A single-input, single-output worker.

    Subclasses implement ``work(input, output)``.  Despite the name, a
    filter need not remove items from the stream (paper footnote 1).
    """

    def __init__(self, pop: int, push: int, peek: int = None,
                 work_estimate: float = 1.0, name: str = None):
        super().__init__(
            n_inputs=1,
            n_outputs=1,
            pop_rates=(pop,),
            push_rates=(push,),
            peek_rates=None if peek is None else (peek,),
            work_estimate=work_estimate,
            name=name,
        )

    @property
    def pop(self) -> int:
        return self.pop_rates[0]

    @property
    def peek(self) -> int:
        return self.peek_rates[0]

    @property
    def push(self) -> int:
        return self.push_rates[0]

    def fire(self, inputs, outputs) -> None:
        self.work(inputs[0], outputs[0])

    def work(self, input, output) -> None:
        raise NotImplementedError


class StatefulFilter(Filter):
    """Convenience base class for filters with mutable state.

    Subclasses set ``state_fields`` to the names of the attributes that
    make up the state.  Such filters force explicit state transfer
    (AST + two-phase compilation) during reconfiguration.
    """


class Splitter(Worker):
    """A single-input, multi-output worker."""

    def __init__(self, n_outputs: int, pop: int, push_rates,
                 peek: int = None, work_estimate: float = 1.0,
                 name: str = None):
        super().__init__(
            n_inputs=1,
            n_outputs=n_outputs,
            pop_rates=(pop,),
            push_rates=push_rates,
            peek_rates=None if peek is None else (peek,),
            work_estimate=work_estimate,
            name=name,
        )

    def fire(self, inputs, outputs) -> None:
        self.work(inputs[0], outputs)

    def work(self, input, outputs) -> None:
        raise NotImplementedError


class Joiner(Worker):
    """A multi-input, single-output worker."""

    def __init__(self, n_inputs: int, pop_rates, push: int,
                 work_estimate: float = 1.0, name: str = None):
        super().__init__(
            n_inputs=n_inputs,
            n_outputs=1,
            pop_rates=pop_rates,
            push_rates=(push,),
            work_estimate=work_estimate,
            name=name,
        )

    def fire(self, inputs, outputs) -> None:
        self.work(inputs, outputs[0])

    def work(self, inputs, output) -> None:
        raise NotImplementedError


class RoundRobinSplitter(Splitter):
    """Built-in splitter distributing items round-robin by weight.

    With weights ``(w0, ..., wk)`` one firing pops ``sum(w)`` items and
    pushes the first ``w0`` to output 0, the next ``w1`` to output 1,
    and so on.  Being data movement only, it is a candidate for the
    compiler's splitter-removal optimization.
    """

    builtin = True

    def __init__(self, weights, name: str = None):
        if isinstance(weights, int):
            weights = (1,) * weights
        weights = tuple(int(w) for w in weights)
        if not weights or any(w <= 0 for w in weights):
            raise ValueError("weights must be positive, got %r" % (weights,))
        super().__init__(
            n_outputs=len(weights),
            pop=sum(weights),
            push_rates=weights,
            work_estimate=0.1 * sum(weights),
            name=name or "roundrobin_split",
        )
        self.weights = weights

    def work(self, input, outputs) -> None:
        for output, weight in zip(outputs, self.weights):
            for _ in range(weight):
                output.push(input.pop())

    # Pure data movement: one strided copy per branch.
    vector_items = True

    def work_batch(self, inputs, outputs, n_firings) -> None:
        rows = inputs[0].reshape(n_firings, sum(self.weights))
        offset = 0
        for output, weight in zip(outputs, self.weights):
            output.reshape(n_firings, weight)[...] = (
                rows[:, offset:offset + weight])
            offset += weight


class DuplicateSplitter(Splitter):
    """Built-in splitter copying every input item to every output."""

    builtin = True

    def __init__(self, n_outputs: int, name: str = None):
        super().__init__(
            n_outputs=n_outputs,
            pop=1,
            push_rates=(1,) * n_outputs,
            work_estimate=0.1 * n_outputs,
            name=name or "duplicate_split",
        )

    def work(self, input, outputs) -> None:
        item = input.pop()
        for output in outputs:
            output.push(item)

    vector_items = True

    def work_batch(self, inputs, outputs, n_firings) -> None:
        for output in outputs:
            output[...] = inputs[0]


class RoundRobinJoiner(Joiner):
    """Built-in joiner interleaving inputs round-robin by weight."""

    builtin = True

    def __init__(self, weights, name: str = None):
        if isinstance(weights, int):
            weights = (1,) * weights
        weights = tuple(int(w) for w in weights)
        if not weights or any(w <= 0 for w in weights):
            raise ValueError("weights must be positive, got %r" % (weights,))
        super().__init__(
            n_inputs=len(weights),
            pop_rates=weights,
            push=sum(weights),
            work_estimate=0.1 * sum(weights),
            name=name or "roundrobin_join",
        )
        self.weights = weights

    def work(self, inputs, output) -> None:
        for input, weight in zip(inputs, self.weights):
            for _ in range(weight):
                output.push(input.pop())

    vector_items = True

    def work_batch(self, inputs, outputs, n_firings) -> None:
        rows = outputs[0].reshape(n_firings, sum(self.weights))
        offset = 0
        for input, weight in zip(inputs, self.weights):
            rows[:, offset:offset + weight] = input.reshape(n_firings, weight)
            offset += weight
