"""Graph inspection and export.

Utilities for understanding stream graphs and configurations:
Graphviz DOT export (optionally colored by blob assignment), summary
statistics, and a rate-consistency audit that catches common authoring
mistakes before the scheduler does.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.graph.topology import StreamGraph

__all__ = ["graph_stats", "rate_audit", "to_dot"]

_PALETTE = (
    "lightblue", "lightsalmon", "palegreen", "khaki", "plum",
    "lightcyan", "mistyrose", "wheat",
)


def to_dot(graph: StreamGraph,
           blob_of: Optional[Dict[int, int]] = None,
           name: str = "stream") -> str:
    """Render the graph as Graphviz DOT.

    ``blob_of`` (worker id -> blob id, e.g. from
    ``Configuration.worker_to_blob()``) colors workers by blob so
    partitionings are visible at a glance.
    """
    lines = ["digraph %s {" % _dot_id(name), "  rankdir=TB;",
             "  node [shape=box, style=filled, fillcolor=white];"]
    for worker in graph.workers:
        attributes = {
            "label": "%s\\n#%d pop=%s peek=%s push=%s" % (
                worker.name, worker.worker_id,
                _rates(worker.pop_rates), _rates(worker.peek_rates),
                _rates(worker.push_rates)),
        }
        if worker.is_stateful:
            attributes["penwidth"] = "2"
            attributes["color"] = "red"
        if blob_of and worker.worker_id in blob_of:
            attributes["fillcolor"] = _PALETTE[
                blob_of[worker.worker_id] % len(_PALETTE)]
        rendered = ", ".join('%s="%s"' % kv for kv in attributes.items())
        lines.append("  w%d [%s];" % (worker.worker_id, rendered))
    for edge in graph.edges:
        style = ""
        if blob_of and blob_of.get(edge.src) != blob_of.get(edge.dst):
            style = ' [style=dashed, label="net"]'
        lines.append("  w%d -> w%d%s;" % (edge.src, edge.dst, style))
    lines.append("}")
    return "\n".join(lines)


def _dot_id(name: str) -> str:
    cleaned = "".join(c if c.isalnum() or c == "_" else "_" for c in name)
    return cleaned or "stream"


def _rates(rates) -> str:
    if len(rates) == 1:
        return str(rates[0])
    return "(" + ",".join(map(str, rates)) + ")"


def graph_stats(graph: StreamGraph) -> Dict[str, float]:
    """Summary statistics of a stream graph."""
    from repro.sched.schedule import make_schedule
    schedule = make_schedule(graph)
    peeking = sum(1 for w in graph.workers if w.is_peeking)
    stateful = sum(1 for w in graph.workers if w.is_stateful)
    return {
        "workers": len(graph.workers),
        "edges": len(graph.edges),
        "stateful_workers": stateful,
        "peeking_workers": peeking,
        "builtin_workers": sum(1 for w in graph.workers if w.builtin),
        "input_quantum": schedule.input_quantum,
        "output_quantum": schedule.output_quantum,
        "init_in": schedule.init_in,
        "steady_work": schedule.steady_work,
        "max_fan_out": max((w.n_outputs for w in graph.workers), default=0),
        "max_fan_in": max((w.n_inputs for w in graph.workers), default=0),
    }


def rate_audit(graph: StreamGraph) -> List[str]:
    """Human-readable warnings about suspicious rate declarations.

    Returns an empty list when the graph looks healthy.  This is now a
    thin compatibility wrapper over the ``graph`` family of the static
    analyzer (``repro.analysis``), which subsumes the old heuristics
    and adds full diagnostics (implied-ratio chains, deadlock checks);
    use :func:`repro.analysis.check_graph` directly for the structured
    report.
    """
    from repro.analysis import check_graph
    return [finding.message for finding in check_graph(graph).findings]
