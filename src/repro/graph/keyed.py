"""Keyed worker state: splittable, mergeable per-key-range shards.

Fluid migration (Megaphone-style; see PAPERS.md) moves a worker's
state in bounded batches interleaved with normal processing instead of
one bulk transfer.  That only works for state that *partitions*: a
:class:`KeyedStateWorker` declares one of its ``state_fields`` as a
dict keyed by application keys, and this module provides the
deterministic sharding function, the split/merge pair (merge ∘ split
is the identity — property-tested), and the dirty-tracking migration
session that makes early shard captures sound:

* ``split_state(table, k)`` / ``merge_shards(shards)`` partition a
  keyed table into ``k`` disjoint shards and reassemble it.
* :class:`KeyMigrationSession` wraps the live table in a tracking dict
  so every key mutated *after* its shard was captured is recorded.  At
  the final cut the session reports a small *residual* — overrides for
  dirty/new keys plus the list of captured keys that became invalid —
  and ``assemble_keyed_state(shards, residual)`` reconstructs exactly
  the table a one-shot snapshot at the final boundary would have seen.

Contract: keyed values are **replace-on-write**.  Workers must
reassign ``table[key] = new_value`` rather than mutating a stored
value in place; in-place mutation bypasses dirty tracking.  Shard
captures deep-copy values, so the contract is only about detecting
writes, not about aliasing.
"""

from __future__ import annotations

import copy
from typing import Any, Dict, List, Optional, Sequence
from zlib import crc32

from repro.graph.workers import StatefulFilter

__all__ = [
    "KeyMigrationSession",
    "KeyedStateWorker",
    "RESIDUAL_MARKER",
    "assemble_keyed_state",
    "is_residual",
    "keyed_workers",
    "merge_shards",
    "shard_of",
    "split_state",
]

#: Marker key identifying a residual capture of a keyed field (the
#: value is then ``{RESIDUAL_MARKER: True, "overrides": .., "invalid": ..}``
#: instead of the full table).
RESIDUAL_MARKER = "__keyed_residual__"


def shard_of(key: Any, n_shards: int) -> int:
    """Deterministic shard index for ``key`` among ``n_shards``.

    Integers use modulo; everything else hashes the ``repr`` with
    crc32.  Python's builtin ``hash`` is avoided: it is randomized per
    process for strings (PYTHONHASHSEED), which would make shard
    membership — and thus migration traffic — non-reproducible.
    """
    if n_shards <= 1:
        return 0
    if isinstance(key, int) and not isinstance(key, bool):
        return key % n_shards
    return crc32(repr(key).encode("utf-8")) % n_shards


def split_state(table: Dict[Any, Any], n_shards: int) -> List[Dict[Any, Any]]:
    """Partition a keyed table into ``n_shards`` disjoint dicts."""
    if n_shards < 1:
        raise ValueError("n_shards must be >= 1, got %d" % n_shards)
    shards: List[Dict[Any, Any]] = [{} for _ in range(n_shards)]
    for key, value in table.items():
        shards[shard_of(key, n_shards)][key] = value
    return shards


def merge_shards(shards: Sequence[Dict[Any, Any]]) -> Dict[Any, Any]:
    """Reassemble disjoint shards; raises on overlapping keys."""
    merged: Dict[Any, Any] = {}
    for index, shard in enumerate(shards):
        overlap = merged.keys() & shard.keys()
        if overlap:
            raise ValueError(
                "shard %d overlaps already-merged keys: %r"
                % (index, sorted(overlap, key=repr)[:5]))
        merged.update(shard)
    return merged


def assemble_keyed_state(shards: Sequence[Dict[Any, Any]],
                         residual: Dict[str, Any]) -> Dict[Any, Any]:
    """Merge early shard captures with the final-cut residual.

    The result equals the table as it stood at the final boundary:
    captured-then-dirtied or deleted keys are dropped via ``invalid``,
    then ``overrides`` supplies the authoritative value for every
    dirty or never-captured key.
    """
    table = merge_shards(shards)
    for key in residual["invalid"]:
        table.pop(key, None)
    table.update(residual["overrides"])
    return table


def is_residual(value: Any) -> bool:
    """Whether a captured keyed-field value is a residual marker."""
    return isinstance(value, dict) and value.get(RESIDUAL_MARKER) is True


class _TrackingTable(dict):
    """Dict wrapper recording which keys mutate during a migration.

    Installed over the worker's keyed field by
    :class:`KeyMigrationSession`; every mutation path marks the key
    dirty.  Values are replace-on-write by protocol contract — see the
    module docstring.
    """

    __slots__ = ("_dirty",)

    def __init__(self, data: Dict[Any, Any], dirty: set):
        super().__init__(data)
        self._dirty = dirty

    def __setitem__(self, key, value):
        self._dirty.add(key)
        dict.__setitem__(self, key, value)

    def __delitem__(self, key):
        dict.__delitem__(self, key)
        self._dirty.add(key)

    def setdefault(self, key, default=None):
        if key not in self:
            self._dirty.add(key)
        return dict.setdefault(self, key, default)

    def pop(self, key, *default):
        present = key in self
        result = dict.pop(self, key, *default)
        if present:
            self._dirty.add(key)
        return result

    def popitem(self):
        key, value = dict.popitem(self)
        self._dirty.add(key)
        return key, value

    def update(self, *args, **kwargs):
        incoming = dict(*args, **kwargs)
        self._dirty.update(incoming.keys())
        dict.update(self, incoming)

    def clear(self):
        self._dirty.update(self.keys())
        dict.clear(self)


class KeyMigrationSession:
    """Blob-side bookkeeping for one worker's fluid state migration.

    Created by :meth:`KeyedStateWorker.begin_key_migration`; installs
    the tracking table, hands out shard captures, and computes the
    final-cut residual.  ``close()`` restores the plain dict — it is
    idempotent and is always called, on completion and on abort alike,
    so an aborted migration leaves the worker exactly as it was (the
    scheme is copy-based: the live table is never moved, only read).
    """

    def __init__(self, worker: "KeyedStateWorker"):
        self.worker = worker
        self.captured: set = set()
        self.dirty: set = set()
        self.closed = False
        table = worker.keyed_table()
        setattr(worker, worker.keyed_field, _TrackingTable(table, self.dirty))

    def capture_shard(self, shard_index: int, n_shards: int) -> Dict[Any, Any]:
        """Deep-copy the keys of one shard as of *now*.

        Keys captured here are clean from this moment on: any later
        mutation lands in ``dirty`` and is re-sent in the residual.
        """
        shard: Dict[Any, Any] = {}
        for key, value in self.worker.keyed_table().items():
            if shard_of(key, n_shards) == shard_index:
                shard[key] = copy.deepcopy(value)
                self.captured.add(key)
                self.dirty.discard(key)
        return shard

    def residual(self) -> Dict[str, Any]:
        """The final-cut delta: dirty/new overrides + invalidated keys."""
        table = self.worker.keyed_table()
        overrides = {
            key: copy.deepcopy(value) for key, value in table.items()
            if key not in self.captured or key in self.dirty
        }
        invalid = sorted(
            (key for key in self.captured
             if key in self.dirty or key not in table),
            key=repr)
        return {"overrides": overrides, "invalid": invalid}

    def close(self) -> None:
        """Remove the tracking wrapper, restoring a plain dict."""
        if self.closed:
            return
        worker = self.worker
        table = worker.keyed_table()
        if isinstance(table, _TrackingTable):
            setattr(worker, worker.keyed_field, dict(table))
        self.closed = True


class KeyedStateWorker(StatefulFilter):
    """A stateful filter whose dominant state is a keyed dict.

    Subclasses set ``keyed_field`` to the name of one entry of
    ``state_fields`` holding a ``dict`` keyed by application keys.
    That field becomes splittable into disjoint key-range shards
    (:func:`split_state`) and mergeable back (:func:`merge_shards`),
    which is what lets the fluid strategy migrate it incrementally.
    All other state fields stay small and move at the final cut.
    """

    #: Name of the state field holding the keyed table.
    keyed_field: Optional[str] = None

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self._key_migration: Optional[KeyMigrationSession] = None

    @property
    def key_migration(self) -> Optional[KeyMigrationSession]:
        return self._key_migration

    def keyed_table(self) -> Dict[Any, Any]:
        """The live keyed table (possibly tracking-wrapped)."""
        return getattr(self, self.keyed_field)

    def begin_key_migration(self) -> KeyMigrationSession:
        """Install dirty tracking; returns the session."""
        if self.keyed_field is None:
            raise ValueError("%s declares no keyed_field" % self.name)
        if self.keyed_field not in self.state_fields:
            raise ValueError(
                "%s: keyed_field %r not in state_fields %r"
                % (self.name, self.keyed_field, self.state_fields))
        if self._key_migration is not None:
            raise RuntimeError(
                "%s already has an active key migration" % self.name)
        self._key_migration = KeyMigrationSession(self)
        return self._key_migration

    def end_key_migration(self) -> None:
        """Tear down the session (idempotent; used on finish and abort)."""
        if self._key_migration is not None:
            self._key_migration.close()
            self._key_migration = None

    def get_state(self) -> Dict[str, Any]:
        """Deep-copy state, normalizing the keyed field to a plain dict.

        A snapshot taken *during* a migration must not leak the
        tracking wrapper (or its dirty-set alias) into a captured
        :class:`ProgramState` that might be installed elsewhere.
        """
        state = super().get_state()
        if self.keyed_field is not None:
            table = state.get(self.keyed_field)
            if isinstance(table, dict) and type(table) is not dict:
                state[self.keyed_field] = dict(table)
        return state

    def residual_state(self) -> Dict[str, Any]:
        """Final-cut capture: full non-keyed fields + keyed residual.

        Only meaningful with an active migration session (the fluid
        strategy's final boundary); without one this is plain
        :meth:`get_state`.  The keyed field is replaced by a marker
        dict (see :func:`is_residual`) whose estimated size — and thus
        snapshot pause and transfer time — scales with the *delta*,
        not the table.
        """
        session = self._key_migration
        if session is None:
            return self.get_state()
        state: Dict[str, Any] = {}
        for field in self.state_fields:
            if field == self.keyed_field:
                delta = session.residual()
                state[field] = {
                    RESIDUAL_MARKER: True,
                    "overrides": delta["overrides"],
                    "invalid": delta["invalid"],
                }
            else:
                state[field] = copy.deepcopy(getattr(self, field))
        return state


def keyed_workers(graph) -> List[KeyedStateWorker]:
    """The graph's keyed-state workers, in worker order."""
    return [worker for worker in graph.workers
            if isinstance(worker, KeyedStateWorker)
            and worker.keyed_field is not None]
