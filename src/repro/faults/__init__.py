"""Deterministic fault injection and graceful degradation.

Gloss's central claim is *seamless* reconfiguration; production
systems built on the same ideas (Megaphone's planned migrations,
Fries' transactional reconfiguration) treat failure *during* the
migration as the norm.  This package supplies the chaos half of that
story: declarative :class:`FaultPlan`\\ s (node crashes, link
partitions/outages/delays, worker stalls, compiler crashes) executed
at exact simulated times by a :class:`FaultInjector`, with every
injection and recovery visible in the exported trace.

The recovery half lives in :mod:`repro.core`: strategies abort back to
the old epoch (discarding the new instance, restoring the old one's
resources) and the reconfiguration manager retries with exponential
backoff — the app never stops emitting.

Usage::

    from repro.faults import FaultPlan

    plan = (FaultPlan(name="chaos")
            .crash_node(2, at=20.0, recover_after=15.0)
            .fail_compile("phase1", at=12.0))
    app.attach_faults(plan)          # arms the injector
    ...
    app.faults.fired                 # what actually happened
"""

from repro.faults.errors import CompileFailure, InjectedFault, NodeCrashed
from repro.faults.plan import FAULT_KINDS, FaultPlan, FaultSpec
from repro.faults.injector import FaultInjector

__all__ = [
    "FAULT_KINDS",
    "CompileFailure",
    "FaultInjector",
    "FaultPlan",
    "FaultSpec",
    "InjectedFault",
    "NodeCrashed",
]
