"""Declarative, deterministic fault plans.

A :class:`FaultPlan` is an ordered list of :class:`FaultSpec` records,
each naming a fault *kind*, an injection time in simulated seconds and
the kind-specific parameters.  Plans are pure data: the same plan
against the same program and seed replays event-for-event identically
(the determinism regression test relies on this), and a plan can be
serialized into a trace or a test id.

Supported kinds:

``node_crash``
    Fail node ``node_id`` at ``at``; every live instance with a blob
    on that node dies.  ``duration`` > 0 restores the node afterwards.
``node_partition``
    Block every data link touching ``node_id`` for ``duration``
    seconds.  Batches queue and retransmit when the partition heals —
    degraded, never lost.
``link_outage``
    Block data links (all of them, or only those whose consumer runs
    on ``node_id``) for ``duration`` seconds.
``link_delay``
    Add ``extra_delay`` seconds to every batch on the selected links
    for ``duration`` seconds.
``worker_stall``
    Freeze the steady loop of blobs on ``node_id`` (or everywhere)
    until ``at + duration``.
``compile_fail``
    Arm a one-shot compiler crash: the first compile charge whose
    label matches ``phase`` (``"full"``, ``"phase1"``, ``"phase2"``,
    ``"rollback"`` or ``"any"``) at or after ``at`` raises
    :class:`~repro.faults.errors.CompileFailure`.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Iterator, List, Optional

__all__ = ["FAULT_KINDS", "FaultPlan", "FaultSpec"]

FAULT_KINDS = frozenset({
    "node_crash",
    "node_partition",
    "link_outage",
    "link_delay",
    "worker_stall",
    "compile_fail",
})

#: compile_fail phases (matched against compile-span labels).
COMPILE_PHASES = frozenset({"full", "phase1", "phase2", "rollback", "any"})


@dataclass(frozen=True)
class FaultSpec:
    """One fault: what, when, and against which target."""

    kind: str
    at: float
    node_id: Optional[int] = None
    duration: float = 0.0
    extra_delay: float = 0.0
    phase: Optional[str] = None
    label: str = ""

    def validate(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError("unknown fault kind %r (choose from %s)"
                             % (self.kind, ", ".join(sorted(FAULT_KINDS))))
        if self.at < 0:
            raise ValueError("fault time must be >= 0, got %r" % (self.at,))
        if self.duration < 0:
            raise ValueError("fault duration must be >= 0")
        if self.kind == "compile_fail":
            if (self.phase or "any") not in COMPILE_PHASES:
                raise ValueError(
                    "compile_fail phase must be one of %s, got %r"
                    % (", ".join(sorted(COMPILE_PHASES)), self.phase))
        if self.kind in ("node_crash", "node_partition") \
                and self.node_id is None:
            raise ValueError("%s requires a node_id" % self.kind)
        if self.kind == "link_delay" and self.extra_delay <= 0:
            raise ValueError("link_delay requires extra_delay > 0")
        if self.kind in ("node_partition", "link_outage", "link_delay",
                         "worker_stall") and self.duration <= 0:
            raise ValueError("%s requires duration > 0" % self.kind)

    def describe(self) -> str:
        parts = ["%s@%.3fs" % (self.kind, self.at)]
        if self.node_id is not None:
            parts.append("node=%d" % self.node_id)
        if self.duration:
            parts.append("for=%.3fs" % self.duration)
        if self.extra_delay:
            parts.append("extra=%.3fs" % self.extra_delay)
        if self.phase:
            parts.append("phase=%s" % self.phase)
        return " ".join(parts)


@dataclass
class FaultPlan:
    """An ordered collection of fault specs, with builder helpers."""

    specs: List[FaultSpec] = field(default_factory=list)
    name: str = "faults"

    def __iter__(self) -> Iterator[FaultSpec]:
        return iter(self.specs)

    def __len__(self) -> int:
        return len(self.specs)

    def _add(self, spec: FaultSpec) -> "FaultPlan":
        spec.validate()
        self.specs.append(spec)
        return self

    # -- builders (each returns the plan, so calls chain) -------------------

    def crash_node(self, node_id: int, at: float,
                   recover_after: float = 0.0) -> "FaultPlan":
        return self._add(FaultSpec("node_crash", at, node_id=node_id,
                                   duration=recover_after))

    def partition_node(self, node_id: int, at: float,
                       duration: float) -> "FaultPlan":
        return self._add(FaultSpec("node_partition", at, node_id=node_id,
                                   duration=duration))

    def link_outage(self, at: float, duration: float,
                    node_id: Optional[int] = None) -> "FaultPlan":
        return self._add(FaultSpec("link_outage", at, node_id=node_id,
                                   duration=duration))

    def link_delay(self, at: float, duration: float, extra_delay: float,
                   node_id: Optional[int] = None) -> "FaultPlan":
        return self._add(FaultSpec("link_delay", at, node_id=node_id,
                                   duration=duration,
                                   extra_delay=extra_delay))

    def stall_workers(self, at: float, duration: float,
                      node_id: Optional[int] = None) -> "FaultPlan":
        return self._add(FaultSpec("worker_stall", at, node_id=node_id,
                                   duration=duration))

    def fail_compile(self, phase: str = "any",
                     at: float = 0.0) -> "FaultPlan":
        return self._add(FaultSpec("compile_fail", at, phase=phase))

    # -- utilities -----------------------------------------------------------

    def validate(self) -> "FaultPlan":
        for spec in self.specs:
            spec.validate()
        return self

    def shifted(self, offset: float) -> "FaultPlan":
        """A copy of the plan with every injection time moved by
        ``offset`` (reuse one plan shape at different reconfig times)."""
        return FaultPlan(
            [replace(spec, at=spec.at + offset) for spec in self.specs],
            name=self.name,
        )

    def describe(self) -> str:
        return "; ".join(spec.describe() for spec in self.specs) or "<empty>"
