"""The fault injector: executes a :class:`FaultPlan` against a running app.

The injector is driven entirely by the simulation kernel
(``Environment.call_at``), so faults fire at exact simulated times in
deterministic tie-breaker order — a fault plan is as reproducible as
the program it torments.  Every injection and recovery is emitted
through the app's tracer (category ``fault``, track ``faults``), so an
exported Chrome trace shows the chaos timeline next to the
reconfiguration spans it disturbed.

Fault delivery:

* time-driven faults (crashes, partitions, outages, delays, stalls)
  are scheduled at :meth:`FaultInjector.arm` time and applied to
  whatever instances/links are live when they fire;
* ``compile_fail`` faults are *armed predicates*: the app consults
  :meth:`take_compile_fault` from ``charge_compile_time`` and raises
  :class:`CompileFailure` when a spec matches.  Each spec fires once.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.faults.errors import CompileFailure, NodeCrashed
from repro.faults.plan import FaultPlan, FaultSpec

__all__ = ["FaultInjector"]

#: compile-span label -> compile_fail phase it matches.
_LABEL_PHASES = {
    "compile.full": "full",
    "compile.phase1": "phase1",
    "compile.phase2": "phase2",
    "compile.rollback": "rollback",
}


class FaultInjector:
    """Applies a fault plan to a :class:`~repro.cluster.app.StreamApp`."""

    def __init__(self, app, plan: FaultPlan):
        self.app = app
        self.env = app.env
        self.tracer = app.tracer
        self.plan = plan.validate()
        #: (fire time, spec) for every fault that actually fired.
        self.fired: List[Tuple[float, FaultSpec]] = []
        self._armed_compile: List[FaultSpec] = [
            spec for spec in plan if spec.kind == "compile_fail"]
        self._armed = False

    # -- arming ---------------------------------------------------------------

    def arm(self) -> "FaultInjector":
        """Schedule every time-driven fault on the simulation clock."""
        if self._armed:
            raise RuntimeError("fault plan already armed")
        self._armed = True
        for spec in self.plan:
            if spec.kind == "compile_fail":
                continue  # consulted from the compile path, not timed
            self.env.call_at(spec.at, self._make_trigger(spec))
        return self

    def _make_trigger(self, spec: FaultSpec):
        def _fire():
            self._fire(spec)
        return _fire

    # -- firing ---------------------------------------------------------------

    def _fire(self, spec: FaultSpec) -> None:
        self.fired.append((self.env.now, spec))
        handler = getattr(self, "_fire_" + spec.kind)
        handler(spec)

    def _instant(self, name: str, spec: FaultSpec, **extra) -> None:
        self.tracer.instant("fault", name, track="faults",
                            detail=spec.describe(), **extra)

    def _window_span(self, spec: FaultSpec, **extra):
        """A trace span covering a windowed fault, closed at recovery."""
        span = self.tracer.begin("fault", "fault." + spec.kind,
                                 track="faults", detail=spec.describe(),
                                 **extra)
        self.env.call_at(spec.at + spec.duration,
                         lambda: span.finish(recovered=True))
        return span

    def _live_instances(self):
        return [inst for inst in self.app.instances if inst.alive]

    def _live_links(self, node_id: Optional[int], touching: bool = False):
        """Data links of live instances, optionally filtered by node.

        With ``touching`` (partitions) a link matches when either
        endpoint blob runs on the node; otherwise only the consumer
        side is considered (an outage/delay on the node's ingress).
        """
        links = []
        for instance in self._live_instances():
            for process in instance.blob_procs.values():
                for link in process.out_links.values():
                    if node_id is None:
                        links.append(link)
                        continue
                    consumer_node = link.consumer.node.node_id
                    producer_node = process.node.node_id
                    if consumer_node == node_id or (
                            touching and producer_node == node_id):
                        links.append(link)
        return links

    # -- kind handlers --------------------------------------------------------

    def _fire_node_crash(self, spec: FaultSpec) -> None:
        node = self.app.cluster.node(spec.node_id)
        node.crash()
        victims = [inst for inst in self._live_instances()
                   if spec.node_id in inst.nodes_used()]
        self._instant("inject.node_crash", spec, node=spec.node_id,
                      victims=[inst.instance_id for inst in victims])
        cause = NodeCrashed("node %d crashed" % spec.node_id, spec)
        for instance in victims:
            instance.fail(cause)
        if spec.duration > 0:
            def _recover():
                node.restore()
                self._instant("recover.node_crash", spec, node=spec.node_id)
            self.env.call_at(spec.at + spec.duration, _recover)

    def _fire_node_partition(self, spec: FaultSpec) -> None:
        until = spec.at + spec.duration
        links = self._live_links(spec.node_id, touching=True)
        for link in links:
            link.inject_outage(until)
        self._instant("inject.node_partition", spec, node=spec.node_id,
                      links=len(links))
        self._window_span(spec, node=spec.node_id, links=len(links))

    def _fire_link_outage(self, spec: FaultSpec) -> None:
        until = spec.at + spec.duration
        links = self._live_links(spec.node_id)
        for link in links:
            link.inject_outage(until)
        self._instant("inject.link_outage", spec, links=len(links))
        self._window_span(spec, links=len(links))

    def _fire_link_delay(self, spec: FaultSpec) -> None:
        until = spec.at + spec.duration
        links = self._live_links(spec.node_id)
        for link in links:
            link.inject_delay(spec.extra_delay, until)
        self._instant("inject.link_delay", spec, links=len(links))
        self._window_span(spec, links=len(links))

    def _fire_worker_stall(self, spec: FaultSpec) -> None:
        until = spec.at + spec.duration
        stalled = 0
        for instance in self._live_instances():
            for process in instance.blob_procs.values():
                if spec.node_id is None \
                        or process.node.node_id == spec.node_id:
                    process.stall(until)
                    stalled += 1
        self._instant("inject.worker_stall", spec, blobs=stalled)
        self._window_span(spec, blobs=stalled)

    def _fire_compile_fail(self, spec: FaultSpec) -> None:  # pragma: no cover
        raise RuntimeError("compile_fail is consulted, never scheduled")

    # -- the compile hook ------------------------------------------------------

    def take_compile_fault(self, label: Optional[str]) -> Optional[FaultSpec]:
        """Consume and return an armed compile fault matching ``label``.

        Called by ``StreamApp.charge_compile_time`` after the compile's
        simulated time has been charged; a match means that compile
        crashed.  Specs are one-shot and only active from their ``at``
        time onward.
        """
        phase = _LABEL_PHASES.get(label or "")
        if phase is None:
            return None
        now = self.env.now
        for spec in self._armed_compile:
            if now < spec.at:
                continue
            if (spec.phase or "any") in ("any", phase):
                self._armed_compile.remove(spec)
                self.fired.append((now, spec))
                self._instant("inject.compile_fail", spec, label=label)
                return spec
        return None

    def raise_on_compile_fault(self, label: Optional[str]) -> None:
        spec = self.take_compile_fault(label)
        if spec is not None:
            raise CompileFailure(
                "injected compiler crash during %s" % label, spec)
