"""Exceptions raised by injected faults.

Every injected failure surfaces as an :class:`InjectedFault` subclass
so the robustness layer (strategy rollback, manager retries) can tell
deliberate chaos from programming errors: injected faults are always
recoverable by aborting back to the old epoch; anything else is a bug
and must propagate.
"""

from __future__ import annotations

__all__ = ["CompileFailure", "InjectedFault", "NodeCrashed"]


class InjectedFault(Exception):
    """Base class for failures produced by the fault injector."""

    def __init__(self, message: str, spec=None):
        super().__init__(message)
        #: The :class:`~repro.faults.plan.FaultSpec` that fired, when known.
        self.spec = spec


class CompileFailure(InjectedFault):
    """A compilation phase failed mid-reconfiguration.

    Raised out of ``StreamApp.charge_compile_time`` after the doomed
    compile has burned its simulated time — a crashed compiler wastes
    the work it did before dying.
    """


class NodeCrashed(InjectedFault):
    """A cluster node failed; instances with blobs there are dead."""
