"""Experiment drivers shared by the benchmark harness.

Each paper table/figure has a driver here returning structured
results; the scripts in ``benchmarks/`` wrap them with
pytest-benchmark, assert the paper's qualitative shape, and append
human-readable rows to ``results/``.
"""

from repro.experiments.runner import (
    ExperimentApp,
    PAPER_NODES,
    format_rows,
    make_experiment_app,
    maybe_export_trace,
    write_result,
)

__all__ = [
    "ExperimentApp",
    "PAPER_NODES",
    "format_rows",
    "make_experiment_app",
    "maybe_export_trace",
    "write_result",
]
