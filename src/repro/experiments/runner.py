"""Common experiment scaffolding.

The paper's testbed is eight dual-socket 24-core Xeon nodes on 10 GbE
(Section 9); experiments here default to the same topology.  All
drivers run in rate-only mode: item *counts* and *timing* are exact,
work functions are skipped — output equivalence is covered separately
by the functional test suite.
"""

from __future__ import annotations

import math
import os
from dataclasses import dataclass
from typing import Callable, Optional, Sequence, Tuple

from repro.apps import get_app
from repro.cluster import Cluster, StreamApp
from repro.compiler import CostModel, partition_even
from repro.compiler.config import Configuration
from repro.graph.topology import StreamGraph
from repro.metrics import DisruptionReport
from repro.obs import Tracer

__all__ = [
    "ExperimentApp",
    "PAPER_NODES",
    "format_rows",
    "make_experiment_app",
    "maybe_export_trace",
    "write_result",
]

#: Environment switches for the CI smoke harness: ``REPRO_TRACE``
#: enables tracing on experiment apps; ``REPRO_TRACE_DIR`` is where
#: Chrome-trace JSON exports land.
TRACE_ENV = "REPRO_TRACE"
TRACE_DIR_ENV = "REPRO_TRACE_DIR"

#: The paper's cluster: 8 nodes, dual-socket 12-core (24 cores each).
PAPER_NODES = 8
PAPER_CORES = 24

#: Target work units per steady-state iteration: the multiplier is
#: derived per application so iterations are big enough to amortize
#: the barrier, and so initialization/drain costs (which scale with
#: iteration work) stay in the paper's seconds range regardless of
#: the graph's per-item cost.
TARGET_ITERATION_WORK = 15_000.0


@dataclass
class ExperimentApp:
    """A launched app plus the knobs experiments keep reaching for."""

    cluster: Cluster
    app: StreamApp
    blueprint: Callable[[], StreamGraph]
    multiplier: int

    @property
    def env(self):
        return self.cluster.env

    def config(self, node_ids: Sequence[int], name: str = "",
               multiplier: Optional[int] = None,
               cut_bias: float = 0.0) -> Configuration:
        return partition_even(
            self.blueprint(), list(node_ids),
            multiplier=multiplier or self.multiplier,
            name=name, cut_bias=cut_bias,
        )

    def run_until(self, t: float) -> None:
        self.cluster.run(until=t)

    def reconfigure_and_run(self, configuration: Configuration,
                            strategy: str, settle: float = 60.0
                            ) -> Tuple[float, DisruptionReport]:
        """Issue one reconfiguration, run ``settle`` seconds, analyze."""
        start = self.env.now
        done = self.app.reconfigure(configuration, strategy=strategy)
        self.run_until(start + settle)
        if not done.triggered:
            raise RuntimeError(
                "reconfiguration (%s -> %s) did not complete in %.0fs"
                % (strategy, configuration.name, settle))
        return start, self.app.analyze(start, start + settle)

    def throughput_between(self, start: float, end: float) -> float:
        return self.app.series.items_between(start, end) / (end - start)

    def export_trace(self, name: str,
                     directory: Optional[str] = None) -> str:
        """Write this run's Chrome trace JSON as ``<name>.trace.json``."""
        directory = directory or os.environ.get(TRACE_DIR_ENV) or "results"
        os.makedirs(directory, exist_ok=True)
        path = os.path.join(directory, name + ".trace.json")
        return self.app.export_trace(path)


def maybe_export_trace(experiment: ExperimentApp, name: str) -> Optional[str]:
    """Export the trace when tracing is on (the CI smoke-bench hook)."""
    if not experiment.app.tracer.enabled:
        return None
    return experiment.export_trace(name)


def make_experiment_app(
    app_name: str,
    scale: int = 2,
    n_nodes: int = PAPER_NODES,
    cores: int = PAPER_CORES,
    initial_nodes: Optional[Sequence[int]] = None,
    multiplier: Optional[int] = None,
    warmup: float = 60.0,
    cost_model: Optional[CostModel] = None,
    input_rate: Optional[float] = None,
    blueprint_kwargs: Optional[dict] = None,
    tracer: Optional[Tracer] = None,
) -> ExperimentApp:
    """Launch a paper-scale app and warm it up to steady state.

    Tracing is attached when a ``tracer`` is passed explicitly or the
    ``REPRO_TRACE`` environment variable is set (how the CI smoke
    benchmarks produce their Chrome-trace artifacts).
    """
    spec = get_app(app_name)
    blueprint = spec.blueprint(scale=scale, **(blueprint_kwargs or {}))
    if multiplier is None:
        from repro.sched import make_schedule
        quantum_work = max(make_schedule(blueprint()).steady_work, 1e-9)
        multiplier = max(int(math.ceil(TARGET_ITERATION_WORK / quantum_work)),
                         1)
    if tracer is None and os.environ.get(TRACE_ENV, "") not in ("", "0"):
        tracer = Tracer()
    cluster = Cluster(n_nodes=n_nodes, cores_per_node=cores,
                      cost_model=cost_model or CostModel(),
                      tracer=tracer)
    app = StreamApp(cluster, blueprint, rate_only=True,
                    name=app_name, input_rate=input_rate)
    experiment = ExperimentApp(cluster=cluster, app=app,
                               blueprint=blueprint, multiplier=multiplier)
    nodes = list(initial_nodes if initial_nodes is not None
                 else range(min(2, n_nodes)))
    app.launch(experiment.config(nodes, name="cfg1"))
    cluster.run(until=warmup)
    if app.current is None or app.current.status != "running":
        raise RuntimeError("app failed to reach steady state in warmup")
    return experiment


def format_rows(header: Sequence[str], rows: Sequence[Sequence],
                title: str = "") -> str:
    """Fixed-width table text in the style of the paper's tables."""
    columns = len(header)
    widths = [len(str(h)) for h in header]
    for row in rows:
        for i in range(columns):
            widths[i] = max(widths[i], len(str(row[i])))
    def fmt(row):
        return "  ".join(str(cell).ljust(widths[i])
                         for i, cell in enumerate(row))
    lines = []
    if title:
        lines.append(title)
    lines.append(fmt(header))
    lines.append("  ".join("-" * w for w in widths))
    lines.extend(fmt(row) for row in rows)
    return "\n".join(lines)


def write_result(name: str, text: str) -> str:
    """Append a result block under results/ and echo it to stdout."""
    directory = os.environ.get(
        "REPRO_RESULTS_DIR",
        os.path.join(os.path.dirname(os.path.dirname(os.path.dirname(
            os.path.dirname(os.path.abspath(__file__))))), "results"),
    )
    os.makedirs(directory, exist_ok=True)
    path = os.path.join(directory, name + ".txt")
    with open(path, "w") as handle:
        handle.write(text + "\n")
    print("\n" + text)
    return path
