"""ASCII rendering of throughput-over-time figures.

The paper's evaluation is a collection of throughput/time plots; the
benchmark harness renders the equivalent series as fixed-width ASCII
charts into ``results/`` so the figures are inspectable without a
plotting stack.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.metrics.analysis import bucketize
from repro.metrics.series import ThroughputSeries

__all__ = ["ascii_chart", "ascii_timeline", "sparkline"]

_SPARK = "▁▂▃▄▅▆▇█"


def sparkline(values: Sequence[float]) -> str:
    """One-line sparkline of a value sequence."""
    values = list(values)
    if not values:
        return ""
    low = min(values)
    high = max(values)
    span = (high - low) or 1.0
    return "".join(
        _SPARK[min(int((v - low) / span * (len(_SPARK) - 1)),
                   len(_SPARK) - 1)]
        for v in values
    )


def ascii_chart(
    values: Sequence[float],
    labels: Optional[Sequence[str]] = None,
    height: int = 12,
    y_label: str = "",
    markers: Optional[Dict[int, str]] = None,
) -> str:
    """A column chart: one character column per value.

    ``markers`` maps column indices to single characters drawn in a
    rule line under the chart (e.g. reconfiguration starts).
    """
    values = [max(v, 0.0) for v in values]
    if not values:
        return "(no data)"
    peak = max(values) or 1.0
    rows: List[str] = []
    for level in range(height, 0, -1):
        threshold = peak * (level - 0.5) / height
        line = "".join("#" if v >= threshold else " " for v in values)
        tag = ""
        if level == height:
            tag = " %.0f" % peak
        elif level == 1:
            tag = " 0"
        rows.append("|" + line + tag)
    rule = list("+" + "-" * len(values))
    for index, char in (markers or {}).items():
        if 0 <= index < len(values):
            rule[index + 1] = char
    rows.append("".join(rule))
    if labels:
        rows.append(" " + "".join(labels)[:len(values)])
    if y_label:
        rows.insert(0, y_label)
    return "\n".join(rows)


def ascii_timeline(
    series: ThroughputSeries,
    start: float,
    end: float,
    bucket: float = 1.0,
    height: int = 12,
    events: Optional[Sequence[Tuple[float, str]]] = None,
    title: str = "",
) -> str:
    """Render a throughput series as the paper-style figure.

    ``events`` are (time, single-char marker) pairs, e.g. the NewCfg
    arrows of Figure 10.
    """
    buckets = bucketize(series, start, end, bucket)
    values = [rate for _, rate in buckets]
    markers: Dict[int, str] = {}
    for when, char in (events or ()):
        index = int((when - start) / bucket)
        if 0 <= index < len(values):
            markers[index] = (char or "^")[0]
    label = "items/s over [%.0fs, %.0fs] (%.0fs buckets)" % (
        start, end, bucket)
    chart = ascii_chart(values, height=height, y_label=label,
                        markers=markers)
    if title:
        return title + "\n" + chart
    return chart
