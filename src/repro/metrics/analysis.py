"""Downtime and throughput-disruption analysis (paper Section 9.1).

Definitions used throughout the evaluation:

* **Full throughput** — the program's average throughput over the
  window preceding the reconfiguration (the paper uses the previous
  100 seconds; we expose the window length).
* **Downtime** — total time of zero-output buckets between the start
  of the reconfiguration and recovery.
* **Throughput-disrupted time** — total time of buckets producing
  less than a fraction (default 90%) of full throughput, up to
  recovery.
* **Recovery** — the first time after the reconfiguration start at
  which throughput is sustained at or above the disruption threshold
  for a few consecutive buckets.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from repro.metrics.series import ThroughputSeries

__all__ = ["bucketize", "DisruptionReport", "analyze_reconfiguration"]


def bucketize(
    series: ThroughputSeries,
    start: float,
    end: float,
    width: float = 1.0,
) -> List[Tuple[float, float]]:
    """Per-bucket (bucket start time, items/second) over [start, end)."""
    if width <= 0:
        raise ValueError("bucket width must be positive, got %r" % (width,))
    buckets: List[Tuple[float, float]] = []
    time = start
    while time < end:
        buckets.append(
            (time, series.items_between(time, time + width) / width)
        )
        time += width
    return buckets


@dataclass
class DisruptionReport:
    """Measured impact of one reconfiguration."""

    start: float
    full_throughput: float
    downtime: float
    disrupted_time: float
    recovery_time: float
    min_throughput: float
    max_throughput: float
    first_output_gap: float

    @property
    def has_downtime(self) -> bool:
        return self.downtime > 0.0

    @property
    def has_spike(self) -> bool:
        """An output-rate spike: any bucket far above full throughput."""
        return self.max_throughput > 1.6 * self.full_throughput

    def __repr__(self) -> str:
        return (
            "<Disruption @%.1fs: full=%.0f it/s, downtime=%.2fs, "
            "disrupted=%.2fs, min=%.0f, max=%.0f, recovered %.1fs>" % (
                self.start, self.full_throughput, self.downtime,
                self.disrupted_time, self.min_throughput,
                self.max_throughput, self.recovery_time)
        )


def analyze_reconfiguration(
    series: ThroughputSeries,
    reconfig_start: float,
    horizon: float,
    full_window: float = 30.0,
    bucket: float = 1.0,
    disruption_fraction: float = 0.9,
    sustain_buckets: int = 3,
) -> DisruptionReport:
    """Analyze the disruption caused by a reconfiguration.

    ``horizon`` bounds how far past ``reconfig_start`` to look for
    recovery; measurement stops at recovery or at the horizon,
    whichever is first.
    """
    window_start = max(reconfig_start - full_window, 0.0)
    window = reconfig_start - window_start
    full = (series.items_between(window_start, reconfig_start) / window
            if window > 0 else 0.0)
    buckets = bucketize(series, reconfig_start, horizon, bucket)
    threshold = disruption_fraction * full

    # Disruption may begin well after the request (phase-1 compilation
    # is hidden), so locate the first below-threshold bucket first...
    first_bad = next(
        (i for i, (_, rate) in enumerate(buckets) if rate < threshold),
        None,
    )
    if first_bad is None:
        # The reconfiguration never dented throughput.
        rates = [rate for _, rate in buckets] or [0.0]
        return DisruptionReport(
            start=reconfig_start,
            full_throughput=full,
            downtime=0.0,
            disrupted_time=0.0,
            recovery_time=0.0,
            min_throughput=min(rates),
            max_throughput=max(rates),
            first_output_gap=(series.first_emission_after(reconfig_start)
                              - reconfig_start),
        )

    # ...then find recovery: the first run of `sustain_buckets`
    # consecutive at-threshold buckets after the disruption began.
    recovery_index = len(buckets)
    run = 0
    for i in range(first_bad, len(buckets)):
        if buckets[i][1] >= threshold:
            run += 1
            if run >= sustain_buckets:
                recovery_index = i - sustain_buckets + 1
                break
        else:
            run = 0

    considered = buckets[first_bad:recovery_index]
    downtime = sum(1 for _, rate in considered if rate == 0.0) * bucket
    disrupted = sum(1 for _, rate in considered if rate < threshold) * bucket
    rates = [rate for _, rate in buckets] or [0.0]
    recovery_time = (
        buckets[recovery_index][0] - reconfig_start
        if recovery_index < len(buckets) else horizon - reconfig_start
    )
    first_gap = series.first_emission_after(reconfig_start) - reconfig_start
    return DisruptionReport(
        start=reconfig_start,
        full_throughput=full,
        downtime=downtime,
        disrupted_time=disrupted,
        recovery_time=recovery_time,
        min_throughput=min(rate for _, rate in considered),
        max_throughput=max(rates),
        first_output_gap=first_gap,
    )
