"""Throughput measurement and disruption analysis.

Implements the paper's Section 9 measurement methodology: throughput
is measured at one-second granularity at the program output;
*downtime* is a significant period producing no output; *throughput-
disrupted time* is the period producing less than the program's full
throughput (its average over the preceding window).
"""

from repro.metrics.series import ThroughputSeries
from repro.metrics.analysis import (
    DisruptionReport,
    analyze_reconfiguration,
    bucketize,
)
from repro.metrics.plotting import ascii_chart, ascii_timeline, sparkline

__all__ = [
    "DisruptionReport",
    "ThroughputSeries",
    "analyze_reconfiguration",
    "ascii_chart",
    "ascii_timeline",
    "bucketize",
    "sparkline",
]
