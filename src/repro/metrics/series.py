"""Raw output-event recording."""

from __future__ import annotations

import bisect
from typing import List, Tuple

__all__ = ["ThroughputSeries"]


class ThroughputSeries:
    """Append-only record of (time, item count) output events.

    The output merger records every fresh emission here; analysis
    bucketizes into per-second throughput afterwards, matching the
    paper's measurement granularity ("we measure throughput at the
    granularity of one second", Section 9).
    """

    def __init__(self):
        self._times: List[float] = []
        self._counts: List[int] = []

    def record(self, time: float, count: int) -> None:
        if count <= 0:
            return
        if self._times and time < self._times[-1]:
            raise ValueError("events must be recorded in time order")
        self._times.append(time)
        self._counts.append(count)

    def __len__(self) -> int:
        return len(self._times)

    @property
    def total_items(self) -> int:
        return sum(self._counts)

    @property
    def last_time(self) -> float:
        return self._times[-1] if self._times else 0.0

    def events(self) -> List[Tuple[float, int]]:
        return list(zip(self._times, self._counts))

    def items_between(self, start: float, end: float) -> int:
        """Total items emitted in the half-open interval [start, end)."""
        lo = bisect.bisect_left(self._times, start)
        hi = bisect.bisect_left(self._times, end)
        return sum(self._counts[lo:hi])

    def first_emission_after(self, time: float) -> float:
        """Time of the first emission at or after ``time`` (inf if none)."""
        index = bisect.bisect_left(self._times, time)
        if index >= len(self._times):
            return float("inf")
        return self._times[index]
