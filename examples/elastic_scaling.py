#!/usr/bin/env python
"""Elastic scaling: hold a throughput target as the workload grows.

Reproduces the shape of the paper's workload-fluctuation experiment
(Figure 14a) as a runnable example: the per-item cost of a synthetic
pipeline ratchets up every 25 simulated seconds; a scaling policy
watches throughput and live-adds a node (adaptive seamless
reconfiguration, zero downtime) whenever it dips below the target.

Run:  python examples/elastic_scaling.py
"""

from repro import Cluster, StreamApp, partition_even
from repro.apps.synthetic import TunableWork
from repro.graph import Pipeline
from repro.graph.library import FIRFilter
from repro.metrics import bucketize
from repro.sched import make_schedule

TARGET = 9000.0
STAGES = 8


def main():
    intensity = {"value": 3.0}

    def blueprint():
        elements = []
        for stage in range(STAGES):
            elements.append(TunableWork(intensity["value"],
                                        name="work%d" % stage))
            elements.append(FIRFilter([0.7, 0.3], name="mix%d" % stage))
        return Pipeline(*elements).flatten()

    def multiplier():
        # Recompute the schedule unrolling for the *current* per-item
        # cost: global reoptimization keeps iteration work constant.
        return max(int(15_000.0 / make_schedule(blueprint()).steady_work), 1)

    cluster = Cluster(n_nodes=4, cores_per_node=24)
    app = StreamApp(cluster, blueprint, rate_only=True, name="elastic")
    app.launch(partition_even(blueprint(), [0], multiplier=multiplier(),
                              name="1-node"))
    env = cluster.env

    def workload():
        yield env.timeout(60.0)
        while True:
            intensity["value"] *= 1.4
            for instance in app.instances:
                if instance.status == "running":
                    for worker in instance.program.graph.workers:
                        if isinstance(worker, TunableWork):
                            worker.set_intensity(intensity["value"])
            print("  t=%5.0fs workload increased (per-item cost %.1f)"
                  % (env.now, intensity["value"]))
            yield env.timeout(25.0)

    def scaling_policy():
        nodes = 1
        while True:
            yield env.timeout(5.0)
            if app.current is None or app.current.status != "running":
                continue
            rate = app.series.items_between(env.now - 5.0, env.now) / 5.0
            if rate < TARGET and nodes < 4:
                nodes += 1
                print("  t=%5.0fs throughput %.0f < target %.0f: "
                      "adding node %d" % (env.now, rate, TARGET, nodes - 1))
                yield app.reconfigure(
                    partition_even(blueprint(), list(range(nodes)),
                                   multiplier=multiplier(),
                                   name="%d-nodes" % nodes),
                    strategy="adaptive")
                print("  t=%5.0fs reconfigured onto %d nodes "
                      "(zero downtime)" % (env.now, nodes))

    env.process(workload())
    env.process(scaling_policy())
    cluster.run(until=340.0)

    print("\nThroughput (items/s, 10 s buckets; target %.0f):" % TARGET)
    for start, rate in bucketize(app.series, 0.0, 340.0, width=10.0):
        marker = "#" * int(rate / 250)
        print("  %5.0fs %8.0f %s" % (start, rate, marker))
    downtimes = [r.downtime for r in app.analyze_all(horizon_after=30.0)]
    print("\nReconfigurations: %d, downtimes: %s"
          % (len(downtimes), downtimes))


if __name__ == "__main__":
    main()
