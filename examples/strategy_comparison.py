#!/usr/bin/env python
"""Compare the three reconfiguration strategies side by side.

Runs the same reconfiguration (Beamformer, 2 -> 3 nodes) under
stop-and-copy, fixed seamless and adaptive seamless, and renders the
paper-style throughput/time charts (Figures 4 and 10's shapes) as
ASCII, plus each strategy's timeline.

Run:  python examples/strategy_comparison.py
"""

from repro.apps import get_app
from repro.cluster import Cluster, StreamApp
from repro.compiler import CostModel, partition_even
from repro.metrics import ascii_timeline


def run_strategy(strategy):
    spec = get_app("BeamFormer")
    blueprint = spec.blueprint(scale=2)
    cluster = Cluster(n_nodes=3, cores_per_node=24,
                      cost_model=CostModel())
    app = StreamApp(cluster, blueprint, rate_only=True, name="bf")
    app.launch(partition_even(blueprint(), [0, 1], multiplier=96,
                              name="2-nodes"))
    cluster.run(until=60.0)
    app.reconfigure(partition_even(blueprint(), [0, 1, 2], multiplier=96,
                                   name="3-nodes"),
                    strategy=strategy)
    cluster.run(until=130.0)
    return app, app.analyze(60.0, 130.0), app.reconfigurations[-1]


def main():
    for strategy in ("stop_and_copy", "fixed", "adaptive"):
        app, report, timeline = run_strategy(strategy)
        events = [(timeline.requested_at, "R")]
        if timeline.old_stopped_at is not None:
            events.append((timeline.old_stopped_at, "S"))
        print("=" * 72)
        print(ascii_timeline(
            app.series, 40.0, 120.0, bucket=2.0, height=10,
            events=events,
            title="%s  (R = reconfigure requested, S = old instance "
                  "stopped)" % strategy))
        print("downtime %.1f s   disrupted %.1f s   "
              "visible recompilation %s" % (
                  report.downtime, report.disrupted_time,
                  "%.2f s" % timeline.visible_recompilation_seconds
                  if timeline.visible_recompilation_seconds is not None
                  else "n/a"))
        print(timeline.describe())
        print()


if __name__ == "__main__":
    main()
