#!/usr/bin/env python
"""Live whole-program migration: Gloss vs. VM migration.

Runs the LTE-A uplink transceiver (paper Section 8.1) on one node and
moves it — program, state and all — to a fresh node, twice:

1. with Gloss's adaptive seamless reconfiguration (zero downtime), and
2. with vMotion-style VM live migration (long blackout: streaming
   programs dirty memory faster than pre-copy converges).

Run:  python examples/live_migration.py
"""

from repro import Cluster, StreamApp, partition_even
from repro.apps import get_app
from repro.baselines import VMMigrationModel, migrate_instance
from repro.metrics import bucketize


def run_gloss():
    spec = get_app("LTE")
    blueprint = spec.blueprint(scale=1)
    cluster = Cluster(n_nodes=2, cores_per_node=24)
    app = StreamApp(cluster, blueprint, rate_only=True, name="lte")
    app.launch(partition_even(blueprint(), [0], multiplier=8,
                              name="node0"))
    cluster.run(until=40.0)
    app.reconfigure(partition_even(blueprint(), [1], multiplier=8,
                                   name="node1"),
                    strategy="adaptive")
    cluster.run(until=120.0)
    return app, app.analyze(40.0, 120.0)


def run_vmotion():
    spec = get_app("LTE")
    blueprint = spec.blueprint(scale=1)
    cluster = Cluster(n_nodes=2, cores_per_node=24)
    app = StreamApp(cluster, blueprint, rate_only=True, name="lte-vm")
    app.launch(partition_even(blueprint(), [0], multiplier=8,
                              name="node0"))
    cluster.run(until=40.0)
    model = VMMigrationModel(memory_bytes=24e9, bandwidth=1.25e9,
                             dirty_bytes_per_item=2e5)
    cluster.env.process(migrate_instance(app, model))
    cluster.run(until=200.0)
    blackout = app.event_times("migration_blackout_start")
    report = app.analyze(blackout[0] if blackout else 40.0, 200.0)
    return app, report


def timeline(app, start, end, width=5.0):
    for bucket_start, rate in bucketize(app.series, start, end, width):
        bar = "#" * int(rate / 2500)
        print("  %5.0fs %8.0f %s" % (bucket_start, rate, bar))


def main():
    print("=== Gloss adaptive seamless migration (LTE-A, node 0 -> 1) ===")
    gloss_app, gloss = run_gloss()
    timeline(gloss_app, 30.0, 120.0)
    print("  downtime: %.1f s, min throughput: %.0f items/s"
          % (gloss.downtime, gloss.min_throughput))

    print("\n=== vMotion live migration of the same program ===")
    vm_app, vmotion = run_vmotion()
    start = vm_app.event_times("migration_start")[0]
    timeline(vm_app, start - 10.0, start + 120.0)
    print("  downtime: %.1f s" % vmotion.downtime)

    print("\nGloss migrated with %.1f s downtime; vMotion blacked out "
          "for %.1f s." % (gloss.downtime, vmotion.downtime))
    assert gloss.downtime == 0.0


if __name__ == "__main__":
    main()
