#!/usr/bin/env python
"""Online autotuning on production data (paper Section 9.5).

Gloss makes online autotuning practical: the tuner reconfigures the
*running* program between arbitrary points of the optimization space
(node count, partition cuts, schedule multiplier, fusion) with zero
downtime, so the program performs useful work during the entire
search.

Run:  python examples/online_autotuning.py
"""

from repro import Cluster, StreamApp, partition_even
from repro.apps import get_app
from repro.tuning import ConfigurationSpace, OnlineAutotuner


def main():
    spec = get_app("FMRadio")
    blueprint = spec.blueprint(scale=2)
    cluster = Cluster(n_nodes=6, cores_per_node=24)
    app = StreamApp(cluster, blueprint, rate_only=True, name="fmradio")

    app.launch(partition_even(blueprint(), [0, 1], multiplier=97,
                              name="initial"))
    cluster.run(until=30.0)
    initial = app.series.items_between(20.0, 30.0) / 10.0
    print("Initial configuration: %.0f items/s" % initial)

    space = ConfigurationSpace(blueprint, seed=2018)
    tuner = OnlineAutotuner(app, space, measure_seconds=15.0)
    session = cluster.env.process(tuner.run(trials=6))
    cluster.run(until=900.0)
    assert session.triggered, "tuning session did not finish"

    print("\nTuning history (each move is a live reconfiguration):")
    for i, (point, throughput) in enumerate(tuner.history):
        tag = " <- best" if (point, throughput) == tuner.best else ""
        print("  %2d. %-44s %8.0f items/s%s"
              % (i, point.describe(), throughput, tag))

    best_point, best_throughput = tuner.best
    print("\nBest: %s at %.0f items/s (%.1fx the initial configuration)"
          % (best_point.describe(), best_throughput,
             best_throughput / initial))

    downtimes = [r.downtime for r in app.analyze_all(horizon_after=40.0)]
    print("Downtime across %d tuner reconfigurations: %s"
          % (len(downtimes), downtimes))
    assert all(d == 0.0 for d in downtimes)


if __name__ == "__main__":
    main()
