#!/usr/bin/env python
"""Quickstart: build a stream program, run it, reconfigure it live.

Builds a small FM-radio-like SDF pipeline, launches it on two nodes of
a simulated cluster, then live-reconfigures it onto three nodes with
Gloss's adaptive seamless strategy — and verifies both that downtime
was zero and that the output stream is byte-identical to a run that
never reconfigured.

Run:  python examples/quickstart.py
"""

from repro import Cluster, CostModel, StreamApp, partition_even
from repro.graph import Pipeline
from repro.graph.library import FIRFilter, HeavyCompute, ScaleFilter
from repro.metrics import bucketize
from repro.runtime import GraphInterpreter


def blueprint():
    """A fresh graph instance: low-pass front end + compute stages.

    Reconfiguration compiles *new* graph instances, so programs are
    described as zero-argument factories ("blueprints"), never as
    shared worker objects.
    """
    stages = [ScaleFilter(2.0, name="gain")]
    for i in range(5):
        stages.append(FIRFilter([0.25, 0.5, 0.25], name="lpf%d" % i))
        stages.append(HeavyCompute(intensity=2.0, name="stage%d" % i))
    return Pipeline(*stages).flatten()


def input_signal(index):
    return (index % 64) / 64.0


def main():
    # A slowed-down cost model keeps this *functional* demo quick: the
    # simulation executes every single firing on real data so it can
    # verify output equivalence at the end.  (The benchmark harness
    # uses rate-only mode at full speed instead.)
    cluster = Cluster(n_nodes=3, cores_per_node=8,
                      cost_model=CostModel().scaled(node_speed=8_000.0))
    app = StreamApp(cluster, blueprint, input_fn=input_signal,
                    name="quickstart", collect_output=True)

    print("Launching on nodes {0, 1} ...")
    app.launch(partition_even(blueprint(), [0, 1], multiplier=64,
                              name="two-nodes"))
    cluster.run(until=30.0)
    print("  steady state: %.0f items/s"
          % (app.series.items_between(20, 30) / 10))

    print("Live-reconfiguring onto nodes {0, 1, 2} (adaptive seamless) ...")
    app.reconfigure(
        partition_even(blueprint(), [0, 1, 2], multiplier=64,
                       name="three-nodes"),
        strategy="adaptive",
    )
    cluster.run(until=80.0)

    report = app.analyze(30.0, 80.0)
    print("  new steady state: %.0f items/s"
          % (app.series.items_between(70, 80) / 10))
    print("  downtime: %.1f s   disrupted: %.1f s"
          % (report.downtime, report.disrupted_time))

    print("\nThroughput timeline (items/s, 5 s buckets):")
    for start, rate in bucketize(app.series, 0.0, 80.0, width=5.0):
        bar = "#" * int(rate / 40)
        print("  %5.0fs %8.0f %s" % (start, rate, bar))

    # Correctness: identical output to an uninterrupted reference run.
    consumed = max(inst.input_view.next_index for inst in app.instances)
    reference = GraphInterpreter(blueprint()).run_on(
        [input_signal(i) for i in range(consumed)])
    assert app.merger.items == reference[:len(app.merger.items)]
    print("\nOutput verified identical to an uninterrupted run "
          "(%d items). Zero downtime: %s"
          % (len(app.merger.items), report.downtime == 0.0))


if __name__ == "__main__":
    main()
