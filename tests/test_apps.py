"""Tests for the benchmark applications."""

import pytest

from repro.apps import TABLE1_APPS, app_registry, default_input, get_app
from repro.apps.fmradio import low_pass_taps
from repro.apps.lte import bit_input
from repro.apps.synthetic import tunable_workers, workload_blueprint
from repro.apps.tde import dft, idft
from repro.runtime import GraphInterpreter
from repro.sched import make_schedule

ALL_APPS = sorted(app_registry())


def run_app(spec, iterations=3, scale=1, **kwargs):
    blueprint = spec.blueprint(scale=scale, **kwargs)
    graph = blueprint()
    schedule = make_schedule(graph)
    head_extra = max(graph.head.peek_rates[0] - graph.head.pop_rates[0], 0)
    n = schedule.init_in + iterations * schedule.steady_in + head_extra
    interp = GraphInterpreter(graph, schedule=schedule)
    interp.push_input([spec.input_fn(i) for i in range(n)])
    interp.run_steady(iterations)
    return graph, schedule, interp


class TestRegistry:
    def test_registry_contains_table1_apps(self):
        registry = app_registry()
        for name in TABLE1_APPS:
            assert name in registry

    def test_get_app_unknown_rejected(self):
        with pytest.raises(KeyError):
            get_app("NoSuchApp")

    def test_statefulness_matches_declaration(self):
        for name in ALL_APPS:
            spec = get_app(name)
            graph = spec.blueprint(scale=1)()
            assert graph.is_stateful == spec.stateful, name


class TestAllAppsExecute:
    @pytest.mark.parametrize("name", ALL_APPS)
    def test_balance_and_execution(self, name):
        spec = get_app(name)
        graph, schedule, interp = run_app(spec)
        assert interp.emitted == schedule.init_out + 3 * schedule.steady_out
        assert interp.emitted > 0

    @pytest.mark.parametrize("name", ALL_APPS)
    def test_deterministic(self, name):
        spec = get_app(name)
        _, _, a = run_app(spec)
        _, _, b = run_app(spec)
        assert a.take_output() == b.take_output()

    @pytest.mark.parametrize("name", ["FMRadio", "BeamFormer", "FilterBank"])
    def test_scaling_widens_graph(self, name):
        spec = get_app(name)
        small = spec.blueprint(scale=1)()
        large = spec.blueprint(scale=2)()
        assert len(large.workers) > len(small.workers)

    @pytest.mark.parametrize("name", ALL_APPS)
    def test_blueprint_instances_are_fresh(self, name):
        """Two graphs from the same blueprint share no worker objects
        (old and new instances must never alias state)."""
        spec = get_app(name)
        blueprint = spec.blueprint(scale=1)
        g1, g2 = blueprint(), blueprint()
        assert not (set(map(id, g1.workers)) & set(map(id, g2.workers)))
        assert len(g1.workers) == len(g2.workers)
        assert [w.name for w in g1.workers] == [w.name for w in g2.workers]
        assert [(e.src, e.dst) for e in g1.edges] \
            == [(e.src, e.dst) for e in g2.edges]


class TestDFT:
    def test_dft_idft_roundtrip(self):
        block = [0.5, -0.25, 1.0, 0.75, -1.0, 0.0, 0.25, -0.5]
        recovered = idft(dft(block))
        assert recovered == pytest.approx(block, abs=1e-9)

    def test_dft_of_constant_is_dc_only(self):
        pairs = dft([1.0, 1.0, 1.0, 1.0])
        assert pairs[0] == pytest.approx(4.0)
        assert all(abs(v) < 1e-9 for v in pairs[2:])


class TestFMRadio:
    def test_low_pass_taps_sum_near_cutoff_ratio(self):
        taps = low_pass_taps(0.5, 16)
        assert len(taps) == 16
        assert sum(taps) > 0

    def test_equalizer_band_count(self):
        graph = get_app("FMRadio").blueprint(scale=1, bands=4)()
        amplifies = [w for w in graph.workers if "amplify" in w.name]
        assert len(amplifies) == 4


class TestBeamFormer:
    def test_has_stateful_steering(self):
        graph = get_app("BeamFormer").blueprint(scale=1)()
        steering = [w for w in graph.workers if "steer" in w.name]
        assert steering and all(w.is_stateful for w in steering)

    def test_state_evolves_with_input(self):
        spec = get_app("BeamFormer")
        graph, schedule, interp = run_app(spec, iterations=5)
        steering = [w for w in graph.workers if "steer" in w.name]
        assert any(w.get_state()["energy"] != 0.0 for w in steering)


class TestVocoder:
    def test_phase_unwrapping_accumulates(self):
        spec = get_app("Vocoder")
        graph, schedule, interp = run_app(spec, iterations=6)
        unwrappers = [w for w in graph.workers if "unwrap" in w.name]
        assert unwrappers
        assert any(w.accumulated != 0.0 for w in unwrappers)


class TestLTE:
    def test_end_to_end_bit_recovery(self):
        """The receiver reconstructs the transmitted bits exactly."""
        spec = get_app("LTE")
        graph = spec.blueprint(scale=1)()
        schedule = make_schedule(graph)
        n = schedule.init_in + 6 * schedule.steady_in
        bits = [bit_input(i) for i in range(n)]
        out = GraphInterpreter(graph).run_on(bits)
        assert len(out) > 0
        assert out == bits[:len(out)]

    def test_scaled_lanes_also_recover_bits(self):
        spec = get_app("LTE")
        graph = spec.blueprint(scale=2)()
        schedule = make_schedule(graph)
        n = schedule.init_in + 4 * schedule.steady_in
        bits = [bit_input(i) for i in range(n)]
        out = GraphInterpreter(graph).run_on(bits)
        assert len(out) > 0
        assert out == bits[:len(out)]


class TestDVBT2:
    def test_output_is_binary(self):
        spec = get_app("DVB-T2")
        _, _, interp = run_app(spec, iterations=2)
        out = interp.take_output()
        assert out and all(v in (0.0, 1.0) for v in out)

    def test_high_pop_rate_front_end(self):
        """The bursty-output property: the graph consumes many items
        per output quantum (paper Section 9.8)."""
        graph = get_app("DVB-T2").blueprint(scale=1)()
        schedule = make_schedule(graph)
        assert schedule.input_quantum >= 4 * schedule.output_quantum


class TestSynthetic:
    def test_state_size_knob(self):
        spec = get_app("Synthetic")
        small = spec.blueprint(scale=1, state_items=16)()
        big = spec.blueprint(scale=1, state_items=4096)()
        small_worker = [w for w in small.workers if w.name == "big_state"][0]
        big_worker = [w for w in big.workers if w.name == "big_state"][0]
        assert len(big_worker.array) == 256 * len(small_worker.array)
        assert big.is_stateful

    def test_stateless_without_state_items(self):
        graph = get_app("Synthetic").blueprint(scale=1, state_items=0)()
        assert not graph.is_stateful

    def test_tunable_work_changes_estimate(self):
        graph = workload_blueprint(scale=1)()
        workers = tunable_workers(graph)
        assert workers
        before = workers[0].work_estimate
        workers[0].set_intensity(before * 4)
        assert workers[0].work_estimate == before * 4


class TestDefaultInput:
    def test_bounded_and_deterministic(self):
        values = [default_input(i) for i in range(1000)]
        assert all(-0.5 <= v <= 0.5 for v in values)
        assert values == [default_input(i) for i in range(1000)]

    def test_bit_input_is_binary(self):
        assert set(bit_input(i) for i in range(100)) <= {0.0, 1.0}
