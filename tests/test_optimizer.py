"""Tests for optimal partitioning and throughput prediction."""

import pytest

from repro.compiler import CostModel, partition_even
from repro.compiler.optimizer import (
    partition_optimal,
    predict_throughput,
    segment_cost,
)

from tests.conftest import medium_stateful, medium_stateless, simple_pipeline


class TestSegmentCost:
    def test_parallel_work_scales_with_cores(self):
        model = CostModel()
        assert segment_cost(0, 1000, 8, model) \
            < segment_cost(0, 1000, 1, model)

    def test_serial_work_does_not(self):
        model = CostModel()
        many = segment_cost(1000, 0, 32, model)
        one = segment_cost(1000, 0, 1, model)
        assert many >= one - 1e-9  # only the barrier differs

    def test_core_floor(self):
        model = CostModel()
        assert segment_cost(0, 100, 0.0, model) \
            == segment_cost(0, 100, 0.25, model)


class TestPartitionOptimal:
    def test_valid_partition(self):
        graph = medium_stateless()
        config = partition_optimal(graph, [0, 1, 2], multiplier=8)
        config.validate(graph)
        assert len(config.blobs) == 3

    def test_never_worse_than_greedy(self):
        """The DP's bottleneck cost is <= the greedy quantile split's."""
        model = CostModel()
        for factory in (medium_stateless, medium_stateful):
            graph = factory()
            optimal = partition_optimal(graph, [0, 1], cost_model=model,
                                        multiplier=16)
            greedy = partition_even(graph, [0, 1], multiplier=16)
            assert predict_throughput(graph, optimal, model) \
                >= predict_throughput(graph, greedy, model) - 1e-9

    def test_serial_work_shapes_the_cut(self):
        """The DP reasons about serial (stateful) work, not raw work:
        its bottleneck is never worse than lumping all serial workers
        into one blob."""
        graph = medium_stateful()
        model = CostModel()
        config = partition_optimal(graph, [0, 1], cost_model=model,
                                   multiplier=16)
        best = predict_throughput(graph, config, model)
        stateful_ids = {w.worker_id for w in graph.workers if w.is_stateful}
        order = graph.topological_order()
        # Hand-built alternative: cut right before the first stateful
        # worker so all serial work lands in the tail blob.
        first_stateful = min(order.index(w) for w in stateful_ids)
        from repro.compiler import Configuration
        lumped = Configuration.build(
            [(0, order[:first_stateful]), (1, order[first_stateful:])],
            multiplier=16)
        assert best >= predict_throughput(graph, lumped, model) - 1e-9

    def test_single_node(self):
        graph = simple_pipeline()
        config = partition_optimal(graph, [5])
        config.validate(graph)
        assert config.blobs[0].node_id == 5

    def test_more_nodes_than_workers(self):
        graph = simple_pipeline()  # 3 workers
        config = partition_optimal(graph, list(range(8)))
        config.validate(graph)
        assert len(config.blobs) <= 3

    def test_no_nodes_rejected(self):
        with pytest.raises(ValueError):
            partition_optimal(simple_pipeline(), [])

    def test_blobs_are_contiguous_in_topo_order(self):
        graph = medium_stateless()
        config = partition_optimal(graph, [0, 1, 2], multiplier=4)
        order = graph.topological_order()
        position = {w: i for i, w in enumerate(order)}
        for blob in config.blobs:
            indices = sorted(position[w] for w in blob.workers)
            assert indices == list(range(indices[0], indices[-1] + 1))


class TestPredictThroughput:
    def test_more_nodes_predicts_more_throughput(self):
        graph = medium_stateless()
        model = CostModel()
        one = predict_throughput(
            graph, partition_even(graph, [0], multiplier=32), model)
        two = predict_throughput(
            graph, partition_even(graph, [0, 1], multiplier=32), model)
        assert two > one

    def test_prediction_correlates_with_simulation(self):
        """The static predictor ranks configurations the same way the
        full simulation does (its job for the autotuner)."""
        from repro import Cluster, StreamApp
        model = CostModel().scaled(node_speed=6_000.0)
        configs = [
            partition_even(medium_stateless(), [0], multiplier=24,
                           name="one"),
            partition_even(medium_stateless(), [0, 1], multiplier=24,
                           name="two"),
        ]
        predicted = [predict_throughput(medium_stateless(), c, model,
                                        cores_per_node=4) for c in configs]
        measured = []
        for config in configs:
            cluster = Cluster(n_nodes=2, cores_per_node=4,
                              cost_model=model)
            app = StreamApp(cluster, medium_stateless, rate_only=True,
                            name="pred")
            app.launch(config)
            cluster.run(until=25.0)
            measured.append(app.series.items_between(15.0, 25.0) / 10.0)
        assert (predicted[0] < predicted[1]) == (measured[0] < measured[1])
