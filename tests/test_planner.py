"""Tests for the duplication planner and reconfiguration reports."""

import math

import pytest

from repro.compiler import CostModel, compile_configuration, partition_even
from repro.core import (
    ReconfigReport,
    boundary_edge_counts,
    duplication_iterations_stateful,
    duplication_iterations_stateless,
)
from repro.sched import make_schedule

from tests.conftest import medium_stateful, medium_stateless


class TestDuplicationFormulas:
    def test_stateless_uses_max_of_inits(self):
        old = make_schedule(medium_stateless(), multiplier=2)
        new = make_schedule(medium_stateless(), multiplier=8)
        x = duplication_iterations_stateless(old, new)
        expected = math.ceil(max(old.init_in, new.init_in)
                             / max(old.steady_in, 1))
        assert x == max(expected, 1)

    def test_stateful_uses_new_init_only(self):
        old = make_schedule(medium_stateful(), multiplier=2)
        new = make_schedule(medium_stateful(), multiplier=8)
        x = duplication_iterations_stateful(old, new)
        expected = math.ceil(new.init_in / max(old.steady_in, 1))
        assert x == max(expected, 1)

    def test_at_least_one_iteration(self):
        schedule = make_schedule(medium_stateless(), multiplier=64)
        assert duplication_iterations_stateless(schedule, schedule) >= 1
        assert duplication_iterations_stateful(schedule, schedule) >= 1

    def test_bigger_new_init_needs_more_duplication(self):
        old = make_schedule(medium_stateless(), multiplier=4)
        small = make_schedule(medium_stateless(), multiplier=4)
        # A schedule with much more prefilled init consumes more input.
        big = make_schedule(medium_stateless(), multiplier=4,
                            prefill={0: 500})
        assert duplication_iterations_stateless(old, big) \
            > duplication_iterations_stateless(old, small)


class TestBoundaryCounts:
    def test_counts_match_snapshot_at_any_boundary(self):
        """The meta program state is boundary-independent: predicted
        counts equal the actual snapshot counts — the fact that lets
        phase-1 compile before the state exists."""
        from repro.runtime import GraphInterpreter
        graph = medium_stateful()
        schedule = make_schedule(graph, multiplier=3)
        head = graph.head
        head_extra = max(head.peek_rates[0] - head.pop_rates[0], 0)
        for boundary in (1, 2, 5):
            need = (schedule.init_in + boundary * schedule.steady_in
                    + head_extra)
            interp2 = GraphInterpreter(medium_stateful(), schedule=make_schedule(
                medium_stateful(), multiplier=3))
            # Re-derive on a fresh graph to keep worker ids aligned.
            interp2.push_input([0.25] * need)
            interp2.run_to_boundary(boundary)
            state = interp2.capture_state()
            assert state.edge_counts() == boundary_edge_counts(
                interp2.schedule)

    def test_zero_edges_omitted(self):
        graph = medium_stateless()
        schedule = make_schedule(graph)
        counts = boundary_edge_counts(schedule)
        assert all(count > 0 for count in counts.values())

    def test_counts_include_prefill(self):
        graph = medium_stateless()
        config = partition_even(graph, [0, 1], multiplier=4)
        program = compile_configuration(graph, config, CostModel())
        counts = boundary_edge_counts(program.schedule)
        mapping = config.worker_to_blob()
        crossing = [e.index for e in graph.edges
                    if mapping[e.src] != mapping[e.dst]]
        assert all(counts.get(i, 0) > 0 for i in crossing)


class TestReconfigReport:
    def test_overlap_and_totals(self):
        report = ReconfigReport(strategy="fixed", config_name="c",
                                requested_at=10.0)
        report.new_started_at = 12.0
        report.old_stopped_at = 15.0
        report.completed_at = 15.5
        assert report.overlap_seconds == pytest.approx(3.0)
        assert report.total_seconds == pytest.approx(5.5)

    def test_visible_recompilation_two_phase(self):
        report = ReconfigReport(strategy="adaptive", config_name="c",
                                requested_at=0.0)
        report.state_captured_at = 5.0
        report.phase2_done_at = 5.4
        assert report.visible_recompilation_seconds == pytest.approx(0.4)

    def test_visible_recompilation_stop_and_copy(self):
        report = ReconfigReport(strategy="stop_and_copy", config_name="c",
                                requested_at=0.0)
        report.drained_at = 3.0
        report.phase1_done_at = 9.0
        assert report.visible_recompilation_seconds == pytest.approx(6.0)

    def test_describe_includes_times(self):
        report = ReconfigReport(strategy="fixed", config_name="c",
                                requested_at=1.0)
        report.completed_at = 2.0
        text = report.describe()
        assert "requested" in text and "completed" in text
