"""Fused fast-path equivalence: byte-identical to the per-firing oracle.

The fused plan must never change observable semantics — same outputs,
same captured state, same channel counters as the canonical per-firing
interpreter, for every registered application and for random SDF
graphs.  Also pins the worklist drain against the naive fixpoint scan
and the per-step batching of rate-only mode (a plan that hoisted all
pops before all pushes would underflow internal channels).
"""

import copy

import pytest
from hypothesis import given, settings, strategies as st

from repro.apps import app_registry, get_app
from repro.graph import Pipeline
from repro.graph.library import ScaleFilter
from repro.runtime import GraphInterpreter, HAVE_NUMPY, RateViolationError
from repro.runtime.fastpath import (
    FusedPlan,
    VECTOR_MIN_MEAN_FIRINGS,
    select_vectorized,
    vector_capable,
)

from tests.conftest import ALL_GRAPH_FACTORIES, sample_input
from tests.test_ast_properties import random_sdf_graph

APP_NAMES = sorted(app_registry())
SCALE = 2
ITERATIONS = 3


def _provision(interp, input_fn, iterations, slack=8):
    """Buffer input for init plus ``iterations`` steady iterations."""
    head = interp.graph.head
    head_extra = (max(head.peek_rates[0] - head.pop_rates[0], 0)
                  if head is not None and head.n_inputs else 0)
    needed = (interp.schedule.init_in + head_extra
              + interp.schedule.steady_in * iterations + slack)
    if input_fn is None:
        interp.push_input([None] * needed)
    else:
        interp.push_input([input_fn(i) for i in range(needed)])


def _steady_per_firing(interp, iterations):
    """The pre-fused steady loop: one firing at a time, in order."""
    order = interp.schedule.firing_order()
    for _ in range(iterations):
        for worker_id, firings in order:
            for _ in range(firings):
                interp.fire(worker_id)
        interp.iteration += 1


def _assert_states_equal(fast, slow):
    assert fast.consumed == slow.consumed
    assert fast.emitted == slow.emitted
    assert fast.worker_states == slow.worker_states
    assert fast.edge_contents == slow.edge_contents


class TestFusedEquivalence:
    @pytest.mark.parametrize("name", APP_NAMES)
    def test_app_output_and_state_byte_identical(self, name):
        """Fused steady execution == canonical oracle on every app."""
        spec = get_app(name)
        blueprint = spec.blueprint(scale=SCALE)
        oracle = GraphInterpreter(blueprint(), check_rates=True)
        fused = GraphInterpreter(blueprint(), check_rates=False)
        for interp in (oracle, fused):
            _provision(interp, spec.input_fn, ITERATIONS)
            interp.run_init()
            interp.run_steady(ITERATIONS)
        # check_rates=False must actually have routed through the plan.
        assert fused._fused is not None
        assert fused._fused.iterations == ITERATIONS
        assert fused._fused.validated
        assert oracle._fused is None
        assert fused.take_output() == oracle.take_output()
        _assert_states_equal(fused.capture_state(), oracle.capture_state())

    @pytest.mark.parametrize("factory", ALL_GRAPH_FACTORIES,
                             ids=lambda f: f.__name__)
    def test_factory_graphs_byte_identical(self, factory):
        oracle = GraphInterpreter(factory(), check_rates=True)
        fused = GraphInterpreter(factory(), check_rates=False)
        for interp in (oracle, fused):
            _provision(interp, sample_input, ITERATIONS)
            interp.run_init()
            interp.run_steady(ITERATIONS)
        assert fused.take_output() == oracle.take_output()
        _assert_states_equal(fused.capture_state(), oracle.capture_state())

    @given(random_sdf_graph(), st.integers(min_value=1, max_value=3))
    @settings(max_examples=30, deadline=None)
    def test_property_fused_matches_oracle(self, graph, iterations):
        twin = copy.deepcopy(graph)
        oracle = GraphInterpreter(graph, check_rates=True)
        fused = GraphInterpreter(twin, check_rates=False)
        for interp in (oracle, fused):
            _provision(interp, sample_input, iterations)
            interp.run_init()
            interp.run_steady(iterations)
        assert fused.take_output() == oracle.take_output()
        _assert_states_equal(fused.capture_state(), oracle.capture_state())


@pytest.mark.skipif(not HAVE_NUMPY, reason="numpy unavailable")
class TestVectorizedEquivalence:
    """The vectorized backend observes scalar semantics exactly: same
    outputs, same captured state, same counters — byte-identical, not
    approximately equal."""

    @pytest.mark.parametrize("name", APP_NAMES)
    def test_app_vectorized_byte_identical(self, name):
        spec = get_app(name)
        blueprint = spec.blueprint(scale=SCALE)
        oracle = GraphInterpreter(blueprint(), check_rates=True)
        vector = GraphInterpreter(blueprint(), check_rates=False,
                                  vectorize=True)
        for interp in (oracle, vector):
            _provision(interp, spec.input_fn, ITERATIONS)
            interp.run_init()
            interp.run_steady(ITERATIONS)
        assert vector._fused.mode == "vectorized"
        assert vector._fused.batched_steps > 0
        assert vector._fused.validated
        assert vector.take_output() == oracle.take_output()
        _assert_states_equal(vector.capture_state(), oracle.capture_state())

    @pytest.mark.parametrize("factory", ALL_GRAPH_FACTORIES,
                             ids=lambda f: f.__name__)
    def test_factory_graphs_vectorized_byte_identical(self, factory):
        graph = factory()
        if not vector_capable(graph.workers):
            pytest.skip("graph is not vector-capable")
        oracle = GraphInterpreter(factory(), check_rates=True)
        vector = GraphInterpreter(graph, check_rates=False, vectorize=True)
        for interp in (oracle, vector):
            _provision(interp, sample_input, ITERATIONS)
            interp.run_init()
            interp.run_steady(ITERATIONS)
        assert vector.take_output() == oracle.take_output()
        _assert_states_equal(vector.capture_state(), oracle.capture_state())

    @pytest.mark.parametrize("first,second", [
        (True, False), (False, True), (True, True),
    ], ids=["vector-to-scalar", "scalar-to-vector", "vector-to-vector"])
    def test_mid_run_capture_restore_across_backends(self, first, second):
        """State captured under either backend restores into the other
        and the spliced run matches the uninterrupted scalar oracle —
        reconfiguration may change the backend along with the blobs."""
        from tests.conftest import stateful_pipeline
        from repro.sched import make_schedule

        items = [sample_input(i) for i in range(400)]
        reference = GraphInterpreter(stateful_pipeline()).run_on(items)

        graph = stateful_pipeline()
        schedule = make_schedule(graph)
        head = GraphInterpreter(graph, schedule=schedule,
                                check_rates=False, vectorize=first)
        boundary = 3
        head_extra = max(graph.head.peek_rates[0] - graph.head.pop_rates[0],
                         0)
        prefix = schedule.init_in + boundary * schedule.steady_in + head_extra
        head.push_input(items[:prefix])
        head.run_to_boundary(boundary)
        emitted = head.take_output()
        state = head.capture_state()

        resumed = GraphInterpreter(stateful_pipeline(), state=state,
                                   check_rates=False, vectorize=second)
        combined = emitted + resumed.run_on(items[state.consumed:])
        assert combined == reference[:len(combined)]
        assert len(combined) > len(emitted)

    @given(random_sdf_graph(), st.integers(min_value=1, max_value=3),
           st.lists(st.booleans(), min_size=12, max_size=12))
    @settings(max_examples=25, deadline=None)
    def test_property_mixed_kernels_match_oracle(self, graph, iterations,
                                                 mask):
        """Random SDF graphs where a random subset of workers lost
        their batch kernels (forcing the per-firing scalar fallback
        inside the vectorized plan) stay byte-identical to the
        per-firing oracle."""
        twin = copy.deepcopy(graph)
        for worker, drop in zip(twin.workers, mask):
            if drop:
                worker.work_batch = None
        oracle = GraphInterpreter(graph, check_rates=True)
        vector = GraphInterpreter(twin, check_rates=False, vectorize=True)
        for interp in (oracle, vector):
            _provision(interp, sample_input, iterations)
            interp.run_init()
            interp.run_steady(iterations)
        plan = vector._fused
        assert plan.mode == "vectorized"
        assert plan.batched_steps == sum(
            1 for worker in twin.workers if worker.supports_work_batch)
        assert vector.take_output() == oracle.take_output()
        _assert_states_equal(vector.capture_state(), oracle.capture_state())


class TestBackendSelection:
    def test_vectorize_true_rejects_rate_checking(self):
        graph = Pipeline(ScaleFilter(2.0), ScaleFilter(3.0)).flatten()
        with pytest.raises(ValueError, match="check_rates"):
            GraphInterpreter(graph, check_rates=True, vectorize=True)

    def test_vectorize_true_rejects_rate_only(self):
        graph = Pipeline(ScaleFilter(2.0), ScaleFilter(3.0)).flatten()
        with pytest.raises(ValueError, match="rate_only"):
            GraphInterpreter(graph, check_rates=False, rate_only=True,
                             vectorize=True)

    def test_vectorize_true_rejects_incapable_graph(self):
        class Opaque(ScaleFilter):
            vector_items = False

        graph = Pipeline(ScaleFilter(1.0), Opaque(2.0)).flatten()
        with pytest.raises(ValueError, match="not vector-capable"):
            GraphInterpreter(graph, check_rates=False, vectorize=True)

    @pytest.mark.skipif(not HAVE_NUMPY, reason="numpy unavailable")
    def test_selection_rule(self, monkeypatch):
        workers = [ScaleFilter(1.0)]
        monkeypatch.delenv("REPRO_VECTORIZE", raising=False)
        # Oracle modes never vectorize.
        assert not select_vectorized(workers, True, False, mean_firings=1e9)
        assert not select_vectorized(workers, False, True, mean_firings=1e9)
        # The amortization threshold gates auto-selection ...
        assert select_vectorized(workers, False, False,
                                 mean_firings=VECTOR_MIN_MEAN_FIRINGS)
        assert not select_vectorized(
            workers, False, False,
            mean_firings=VECTOR_MIN_MEAN_FIRINGS - 0.5)
        # ... unknown batch sizes fall back to capability only ...
        assert select_vectorized(workers, False, False)
        # ... REPRO_VECTORIZE=1 bypasses the threshold, =0 vetoes.
        monkeypatch.setenv("REPRO_VECTORIZE", "1")
        assert select_vectorized(workers, False, False, mean_firings=1.0)
        monkeypatch.setenv("REPRO_VECTORIZE", "0")
        assert not select_vectorized(workers, False, False,
                                     mean_firings=1e9)

    @pytest.mark.skipif(not HAVE_NUMPY, reason="numpy unavailable")
    def test_incapable_worker_excludes_graph(self):
        class Opaque(ScaleFilter):
            vector_items = False

        assert vector_capable([ScaleFilter(1.0)])
        assert not vector_capable([ScaleFilter(1.0), Opaque(2.0)])


class TestRateOnlyBatching:
    @pytest.mark.parametrize("name", APP_NAMES)
    def test_rate_only_counters_match_per_firing(self, name):
        """Per-step batched pops/pushes must interleave exactly like the
        per-firing loop.  A plan that hoisted all pops ahead of all
        pushes would pop empty internal channels here (regression for
        the flat-batch bug caught on BeamFormer)."""
        spec = get_app(name)
        blueprint = spec.blueprint(scale=SCALE)
        baseline = GraphInterpreter(blueprint(), check_rates=False,
                                    rate_only=True)
        fused = GraphInterpreter(blueprint(), check_rates=False,
                                 rate_only=True)
        for interp in (baseline, fused):
            _provision(interp, None, ITERATIONS)
            interp.run_init()
        _steady_per_firing(baseline, ITERATIONS)
        fused.run_steady(ITERATIONS)
        assert fused.consumed == baseline.consumed
        assert fused.emitted == baseline.emitted
        for edge in fused.graph.edges:
            fast = fused.channels[edge.index]
            slow = baseline.channels[edge.index]
            assert (len(fast), fast.total_pushed, fast.total_popped) == \
                (len(slow), slow.total_pushed, slow.total_popped), edge.index


class TestFusedPlanChecks:
    def _interp(self, factory=None):
        from tests.conftest import simple_pipeline
        return GraphInterpreter((factory or simple_pipeline)(),
                                check_rates=False)

    def test_unbalanced_order_rejected_at_build(self):
        """Flow balance is proven once at plan-build time."""
        interp = self._interp()
        order = [(worker_id, firings * (2 if index == 1 else 1))
                 for index, (worker_id, firings)
                 in enumerate(interp.schedule.firing_order())]
        with pytest.raises(RateViolationError):
            FusedPlan(interp.graph, order,
                      interp._in_channels, interp._out_channels)

    def test_wrong_channel_arity_rejected_at_build(self):
        interp = self._interp()
        order = interp.schedule.firing_order()
        truncated = {w: [] for w in interp._in_channels}
        with pytest.raises(RateViolationError):
            FusedPlan(interp.graph, order,
                      truncated, interp._out_channels)

    def test_first_iteration_validates_worker_rates(self):
        """A worker that lies about its rates is caught on the plan's
        first (validated) iteration, even with check_rates=False."""
        class Greedy(ScaleFilter):
            def work(self, input, output):
                output.push(input.pop())
                input.pop()  # one more than the declared pop rate

        graph = Pipeline(ScaleFilter(1.0), Greedy(1.0)).flatten()
        interp = GraphInterpreter(graph, check_rates=False)
        _provision(interp, sample_input, 2)
        interp.run_init()
        with pytest.raises(RateViolationError):
            interp.run_steady(1)

    def test_validation_runs_exactly_once(self):
        interp = self._interp()
        _provision(interp, sample_input, 4)
        interp.run_init()
        interp.run_steady(1)
        plan = interp._fused
        assert plan.validated and plan.iterations == 1
        interp.run_steady(3)
        assert plan.iterations == 4

    def test_zero_iterations_is_a_noop(self):
        interp = self._interp()
        _provision(interp, sample_input, 1)
        interp.run_init()
        before = interp.consumed
        plan = interp._fused_plan()
        plan.run(0)
        assert plan.iterations == 0 and not plan.validated
        assert interp.consumed == before

    def test_firings_per_iteration_matches_schedule(self):
        interp = self._interp()
        plan = interp._fused_plan()
        assert plan.firings_per_iteration == sum(
            firings for _, firings in interp.schedule.firing_order())


class TestWorklistDrain:
    @staticmethod
    def _naive_drain(interp):
        """The fixpoint reference: rescan the whole topological order
        until a full pass fires nothing."""
        total = 0
        progressed = True
        while progressed:
            progressed = False
            for worker_id in interp._topo:
                while interp.can_fire(worker_id):
                    interp.fire(worker_id)
                    total += 1
                    progressed = True
        return total

    @pytest.mark.parametrize("name", APP_NAMES)
    def test_drain_matches_fixpoint_on_app(self, name):
        spec = get_app(name)
        blueprint = spec.blueprint(scale=SCALE)
        worklist = GraphInterpreter(blueprint(), check_rates=True)
        naive = GraphInterpreter(blueprint(), check_rates=True)
        # Partial input beyond one steady quantum so draining has real
        # work that stops mid-graph.
        extra = worklist.schedule.steady_in + worklist.schedule.steady_in // 2 + 3
        for interp in (worklist, naive):
            _provision(interp, spec.input_fn, 0, slack=0)
            interp.push_input([spec.input_fn(10_000 + i) for i in range(extra)])
            interp.run_init()
        fired_worklist = worklist.drain()
        fired_naive = self._naive_drain(naive)
        assert fired_worklist == fired_naive
        assert worklist.take_output() == naive.take_output()
        _assert_states_equal(worklist.capture_state(), naive.capture_state())

    @pytest.mark.parametrize("factory", ALL_GRAPH_FACTORIES,
                             ids=lambda f: f.__name__)
    def test_drain_matches_fixpoint_on_factories(self, factory):
        worklist = GraphInterpreter(factory(), check_rates=True)
        naive = GraphInterpreter(factory(), check_rates=True)
        extra = worklist.schedule.steady_in * 2 + 1
        for interp in (worklist, naive):
            _provision(interp, sample_input, 0, slack=0)
            interp.push_input([sample_input(10_000 + i) for i in range(extra)])
            interp.run_init()
        assert worklist.drain() == self._naive_drain(naive)
        assert worklist.take_output() == naive.take_output()
        _assert_states_equal(worklist.capture_state(), naive.capture_state())
