"""Tests for graph inspection, DOT export and the rate audit."""


from repro.compiler import partition_even
from repro.graph import Pipeline
from repro.graph.inspect import graph_stats, rate_audit, to_dot
from repro.graph.library import FIRFilter, Identity, ScaleFilter
from repro.graph.workers import Filter

from tests.conftest import medium_stateful, splitjoin_graph


class TestToDot:
    def test_contains_every_worker_and_edge(self):
        graph = splitjoin_graph()
        dot = to_dot(graph)
        for worker in graph.workers:
            assert "w%d " % worker.worker_id in dot or \
                "w%d [" % worker.worker_id in dot
        assert dot.count("->") == len(graph.edges)
        assert dot.startswith("digraph")
        assert dot.rstrip().endswith("}")

    def test_stateful_workers_highlighted(self):
        graph = medium_stateful()
        dot = to_dot(graph)
        assert 'color="red"' in dot

    def test_blob_coloring_and_network_edges(self):
        graph = medium_stateful()
        config = partition_even(graph, [0, 1])
        dot = to_dot(graph, blob_of=config.worker_to_blob())
        assert "fillcolor" in dot
        assert 'label="net"' in dot  # the cross-blob edge is marked

    def test_name_sanitized(self):
        dot = to_dot(splitjoin_graph(), name="my graph!")
        assert "digraph my_graph_" in dot


class TestGraphStats:
    def test_counts(self):
        graph = medium_stateful()
        stats = graph_stats(graph)
        assert stats["workers"] == len(graph.workers)
        assert stats["edges"] == len(graph.edges)
        assert stats["stateful_workers"] == 2
        assert stats["peeking_workers"] >= 3
        assert stats["steady_work"] > 0

    def test_quanta_match_schedule(self):
        from repro.sched import make_schedule
        graph = splitjoin_graph()
        stats = graph_stats(graph)
        schedule = make_schedule(graph)
        assert stats["input_quantum"] == schedule.input_quantum
        assert stats["output_quantum"] == schedule.output_quantum


class TestRateAudit:
    def test_healthy_graph_is_clean(self):
        assert rate_audit(splitjoin_graph()) == []

    def test_zero_pop_flagged(self):
        class Sink(Filter):
            def __init__(self):
                super().__init__(pop=0, push=1, name="weird")

            def work(self, input, output):
                output.push(0)

        graph = Pipeline(Identity(), Sink()).flatten()
        warnings = rate_audit(graph)
        assert any("never consumes" in w for w in warnings)

    def test_huge_peek_flagged(self):
        graph = Pipeline(ScaleFilter(1.0),
                         FIRFilter([0.1] * 100)).flatten()
        warnings = rate_audit(graph)
        assert any("peeking buffer" in w for w in warnings)

    def test_zero_work_flagged(self):
        graph = Pipeline(Identity(),
                         ScaleFilter(1.0, name="free")).flatten()
        graph.workers[1].work_estimate = 0.0
        warnings = rate_audit(graph)
        assert any("zero work" in w for w in warnings)
