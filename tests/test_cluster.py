"""Tests for nodes, sources, links and the output merger."""


import pytest

from repro.cluster import Cluster, InputSource, OutputMerger, SimNode
from repro.sim import Environment


class TestSimNode:
    def test_single_instance_gets_all_cores(self):
        node = SimNode(0, cores=16)
        node.register_blob(1)
        assert node.cores_for(1) == 16

    def test_two_instances_share(self):
        node = SimNode(0, cores=16)
        node.register_blob(1)
        node.register_blob(2)
        assert node.cores_for(1) == pytest.approx(8)
        assert node.cores_for(2) == pytest.approx(8)

    def test_throttle_weight_shifts_share(self):
        node = SimNode(0, cores=16)
        node.register_blob(1)
        node.register_blob(2)
        node.set_weight(1, 0.25)
        assert node.cores_for(2) > node.cores_for(1)
        assert node.cores_for(1) == pytest.approx(16 * 0.25 / 1.25)

    def test_multiple_blobs_split_share(self):
        node = SimNode(0, cores=16)
        node.register_blob(1)
        node.register_blob(1)
        assert node.cores_for(1) == pytest.approx(8)

    def test_compile_jobs_steal_cores(self):
        node = SimNode(0, cores=16)
        node.register_blob(1)
        node.compile_jobs = 2
        assert node.cores_for(1) == pytest.approx(14)

    def test_deregister(self):
        node = SimNode(0, cores=16)
        node.register_blob(1)
        node.register_blob(2)
        node.deregister_instance(2)
        assert node.cores_for(1) == 16

    def test_minimum_core_floor(self):
        node = SimNode(0, cores=1)
        node.register_blob(1)
        node.compile_jobs = 5
        assert node.cores_for(1) >= 0.25


class TestInputSource:
    def test_unlimited_source_grants_everything(self):
        source = InputSource(input_fn=float)
        view = source.view(0)
        items, retry = view.take(5, now=0.0)
        assert items == [0.0, 1.0, 2.0, 3.0, 4.0]
        assert retry == 0.0

    def test_rate_limited_source(self):
        source = InputSource(input_fn=float, rate=10.0)
        view = source.view(0)
        items, retry = view.take(25, now=1.0)  # 10 available
        assert len(items) == 10
        assert retry == pytest.approx(2.5)

    def test_two_views_duplicate_input(self):
        source = InputSource(input_fn=float)
        a = source.view(0)
        b = source.view(3)
        a_items, _ = a.take(5, now=0.0)
        b_items, _ = b.take(5, now=0.0)
        assert b_items == a_items[3:] + [5.0, 6.0, 7.0]

    def test_rate_only_source_yields_placeholders(self):
        source = InputSource(input_fn=None)
        view = source.view(0)
        items, _ = view.take(3, now=0.0)
        assert items == [None, None, None]

    def test_throttle_caps_rate(self):
        source = InputSource(input_fn=float)
        view = source.view(0)
        view.take(100, now=0.0)
        view.throttle(rate=10.0, now=0.0)
        items, retry = view.take(50, now=1.0)
        assert len(items) == 10
        assert retry > 1.0

    def test_unthrottle_restores(self):
        source = InputSource(input_fn=float)
        view = source.view(0)
        view.throttle(rate=1.0, now=0.0)
        view.unthrottle()
        items, _ = view.take(100, now=0.1)
        assert len(items) == 100


class TestOutputMerger:
    def make(self, collect=True):
        env = Environment()
        return env, OutputMerger(env, collect_items=collect)

    def test_single_mode_passthrough(self):
        env, merger = self.make()
        merger.set_primary(0)
        merger.receive(0, 0, ["a", "b"])
        merger.receive(0, 2, ["c"])
        assert merger.items == ["a", "b", "c"]
        assert merger.next_index == 3

    def test_duplicate_ranges_discarded(self):
        env, merger = self.make()
        merger.set_primary(0)
        merger.receive(0, 0, ["a", "b", "c"])
        merger.receive(0, 1, ["b", "c"])  # fully redundant
        assert merger.items == ["a", "b", "c"]

    def test_partial_overlap_emits_fresh_suffix(self):
        env, merger = self.make()
        merger.set_primary(0)
        merger.receive(0, 0, ["a", "b"])
        merger.receive(0, 1, ["b", "c", "d"])
        assert merger.items == ["a", "b", "c", "d"]

    def test_gap_detected(self):
        env, merger = self.make()
        merger.set_primary(0)
        merger.receive(0, 0, ["a"])
        with pytest.raises(RuntimeError):
            merger.receive(0, 5, ["x"])

    def test_fixed_mode_holds_back_secondary(self):
        env, merger = self.make()
        merger.set_primary(0)
        merger.receive(0, 0, ["a", "b"])
        merger.begin_transition(0, 1, mode="fixed")
        merger.receive(1, 0, ["a", "b", "c", "d"])  # new runs ahead
        assert merger.items == ["a", "b"]            # held back
        merger.receive(0, 2, ["c"])                  # old still primary
        assert merger.items == ["a", "b", "c"]
        merger.finish_transition()                   # flush: the spike
        assert merger.items == ["a", "b", "c", "d"]
        assert merger.primary_id == 1

    def test_adaptive_mode_merges_first_come(self):
        env, merger = self.make()
        merger.set_primary(0)
        merger.receive(0, 0, ["a"])
        merger.begin_transition(0, 1, mode="adaptive")
        merger.receive(1, 0, ["a", "b"])   # new catches up immediately
        assert merger.items == ["a", "b"]
        assert merger.caught_up.triggered

    def test_caught_up_requires_reaching_frontier(self):
        env, merger = self.make()
        merger.set_primary(0)
        merger.receive(0, 0, ["a", "b", "c"])
        merger.begin_transition(0, 1, mode="adaptive")
        merger.receive(1, 0, ["a"])
        assert not merger.caught_up.triggered
        merger.receive(1, 1, ["b", "c"])
        assert merger.caught_up.triggered

    def test_throughput_series_records_fresh_only(self):
        env, merger = self.make(collect=False)
        merger.set_primary(0)
        merger.receive(0, 0, [1] * 10)
        merger.receive(0, 5, [1] * 10)   # 5 fresh
        assert merger.series.total_items == 15

    def test_bad_mode_rejected(self):
        env, merger = self.make()
        with pytest.raises(ValueError):
            merger.begin_transition(0, 1, mode="bogus")


class TestClusterFacade:
    def test_add_and_retire_nodes(self):
        cluster = Cluster(n_nodes=2)
        new_id = cluster.add_node()
        assert new_id == 2
        assert cluster.available_node_ids == [0, 1, 2]
        cluster.retire_node(1)
        assert cluster.available_node_ids == [0, 2]
        cluster.restore_node(1)
        assert 1 in cluster.available_node_ids


class TestNodeShare:
    def test_share_of_single_instance(self):
        node = SimNode(0, cores=16)
        node.register_blob(1)
        assert node.share_of(1) == pytest.approx(1.0)

    def test_share_of_balances_weights(self):
        node = SimNode(0, cores=16)
        node.register_blob(1)
        node.register_blob(2)
        node.set_weight(1, 0.5)
        assert node.share_of(1) == pytest.approx(0.5 / 1.5)
        assert node.share_of(2) == pytest.approx(1.0 / 1.5)

    def test_share_of_unknown_instance(self):
        node = SimNode(0, cores=16)
        assert node.share_of(42) == 1.0

    def test_tax_reduces_share_and_cores(self):
        node = SimNode(0, cores=16)
        node.register_blob(1)
        node.set_tax(1, 0.25)
        assert node.share_of(1) == pytest.approx(0.75)
        assert node.cores_for(1) == pytest.approx(12.0)

    def test_tax_clamped(self):
        node = SimNode(0, cores=16)
        node.register_blob(1)
        node.set_tax(1, 5.0)
        assert node.cores_for(1) >= 0.25
