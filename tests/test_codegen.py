"""Codegen backend equivalence: generated kernels are byte-identical.

:class:`CodegenKernel` compiles a vectorized fused plan into one
generated function per blob.  Nothing observable may change: same
outputs, same captured state, same channel counters as the per-firing
oracle, for every registered application, the factory graphs and
random SDF graphs — including across capture/restore, drains that
force a rebind, and scalar-fallback steps.  Also pins the selection
rule, the kernels table of the compilation cache and the optional
Numba backend's silent fallback.
"""

import copy
import sys
import types

import pytest
from hypothesis import given, settings, strategies as st

from repro.apps import app_registry, get_app
from repro.compiler.cache import (CompilationCache, get_default_cache,
                                  set_default_cache)
from repro.graph import Pipeline
from repro.graph.library import FIRFilter, ScaleFilter
from repro.runtime import (CodegenKernel, GraphInterpreter, HAVE_NUMPY,
                           select_codegen)
from repro.runtime.codegen import codegen_backend, numba_available
from repro.runtime.fastpath import vector_capable

from tests.conftest import ALL_GRAPH_FACTORIES, sample_input
from tests.test_ast_properties import random_sdf_graph
from tests.test_fastpath import _assert_states_equal, _provision

APP_NAMES = sorted(app_registry())
SCALE = 2
ITERATIONS = 3

pytestmark = pytest.mark.skipif(not HAVE_NUMPY, reason="numpy unavailable")


def _codegen_interp(graph, **kwargs):
    return GraphInterpreter(graph, check_rates=False, vectorize=True,
                            codegen=True, **kwargs)


class TestCodegenEquivalence:
    @pytest.mark.parametrize("name", APP_NAMES)
    def test_app_codegen_byte_identical(self, name):
        """Generated-kernel steady execution == canonical oracle."""
        spec = get_app(name)
        blueprint = spec.blueprint(scale=SCALE)
        oracle = GraphInterpreter(blueprint(), check_rates=True)
        cg = _codegen_interp(blueprint())
        for interp in (oracle, cg):
            _provision(interp, spec.input_fn, ITERATIONS)
            interp.run_init()
            interp.run_steady(ITERATIONS)
        plan = cg._fused
        assert plan.mode == "codegen"
        assert plan.codegen_error is None
        kernel = plan._codegen
        assert kernel is not None and kernel._kernel is not None
        # Scalar fallbacks appear exactly where batch kernels are absent
        # (KeyedAggregate's keyed-state stage); everything else compiles.
        graph = cg.graph
        expected_fallbacks = sum(
            1 for worker in graph.workers if not worker.supports_work_batch)
        assert kernel.fallback_steps == expected_fallbacks
        assert cg.take_output() == oracle.take_output()
        _assert_states_equal(cg.capture_state(), oracle.capture_state())

    @pytest.mark.parametrize("factory", ALL_GRAPH_FACTORIES,
                             ids=lambda f: f.__name__)
    def test_factory_graphs_codegen_byte_identical(self, factory):
        graph = factory()
        if not vector_capable(graph.workers):
            pytest.skip("graph is not vector-capable")
        oracle = GraphInterpreter(factory(), check_rates=True)
        cg = _codegen_interp(graph)
        for interp in (oracle, cg):
            _provision(interp, sample_input, ITERATIONS)
            interp.run_init()
            interp.run_steady(ITERATIONS)
        assert cg.take_output() == oracle.take_output()
        _assert_states_equal(cg.capture_state(), oracle.capture_state())

    def test_kernel_reused_across_iterations(self):
        """One bind serves every iteration while nothing external
        touches the channels; a drain between runs forces a rebind."""
        spec = get_app("FMRadio")
        blueprint = spec.blueprint(scale=SCALE)
        cg = _codegen_interp(blueprint())
        _provision(cg, spec.input_fn, 8)
        cg.run_init()
        cg.run_steady(5)
        kernel = cg._fused._codegen
        assert kernel.binds == 1
        cg.run_steady(3)
        assert kernel.binds == 1
        # Draining fires workers outside the kernel, moving pinned
        # channels; the guard must notice and rebind, and the spliced
        # execution must still match the oracle end to end.
        cg.drain()
        _provision(cg, spec.input_fn, 4)
        cg.run_steady(2)
        assert cg._fused._codegen.binds >= 2

    def test_fallback_steps_still_identical(self):
        """Workers stripped of their batch kernel run as prebound
        scalar closures inside the generated kernel."""
        spec = get_app("FilterBank")
        blueprint = spec.blueprint(scale=SCALE)
        twin = blueprint()
        for worker in twin.workers[::3]:
            worker.work_batch = None
        oracle = GraphInterpreter(blueprint(), check_rates=True)
        cg = _codegen_interp(twin)
        for interp in (oracle, cg):
            _provision(interp, spec.input_fn, ITERATIONS)
            interp.run_init()
            interp.run_steady(ITERATIONS)
        plan = cg._fused
        assert plan.mode == "codegen"
        assert plan._codegen.fallback_steps > 0
        assert cg.take_output() == oracle.take_output()
        _assert_states_equal(cg.capture_state(), oracle.capture_state())

    @pytest.mark.parametrize("second", [False, True],
                             ids=["codegen-to-scalar", "codegen-to-codegen"])
    def test_mid_run_capture_restore(self, second):
        """State captured under codegen restores into either backend
        and the spliced run matches the uninterrupted scalar oracle."""
        from repro.sched import make_schedule
        from tests.conftest import stateful_pipeline

        items = [sample_input(i) for i in range(400)]
        reference = GraphInterpreter(stateful_pipeline()).run_on(items)

        graph = stateful_pipeline()
        schedule = make_schedule(graph)
        head = _codegen_interp(graph, schedule=schedule)
        boundary = 3
        head_extra = max(graph.head.peek_rates[0] - graph.head.pop_rates[0],
                         0)
        prefix = schedule.init_in + boundary * schedule.steady_in + head_extra
        head.push_input(items[:prefix])
        head.run_to_boundary(boundary)
        assert head._fused.mode == "codegen"
        emitted = head.take_output()
        state = head.capture_state()

        if second:
            resumed = _codegen_interp(stateful_pipeline(), state=state)
        else:
            resumed = GraphInterpreter(stateful_pipeline(), state=state)
        combined = emitted + resumed.run_on(items[state.consumed:])
        assert combined == reference[:len(combined)]
        assert len(combined) > len(emitted)

    @given(random_sdf_graph(), st.integers(min_value=1, max_value=3))
    @settings(max_examples=25, deadline=None)
    def test_property_codegen_matches_oracle(self, graph, iterations):
        twin = copy.deepcopy(graph)
        if not vector_capable(graph.workers):
            return
        oracle = GraphInterpreter(graph, check_rates=True)
        cg = _codegen_interp(twin)
        for interp in (oracle, cg):
            _provision(interp, sample_input, iterations)
            interp.run_init()
            interp.run_steady(iterations)
        assert cg._fused.mode == "codegen"
        assert cg.take_output() == oracle.take_output()
        _assert_states_equal(cg.capture_state(), oracle.capture_state())


class TestThreeEngineProperty:
    """Satellite: scalar interpreter, generated kernel and parallel
    executor agree on random graphs, including across a mid-run
    capture/restore of the codegen engine."""

    @given(random_sdf_graph(), st.integers(min_value=2, max_value=4))
    @settings(max_examples=15, deadline=None)
    def test_property_three_engines_byte_identical(self, graph, iterations):
        from repro.runtime import ParallelBlobExecutor
        from repro.sched import make_schedule

        if not vector_capable(graph.workers):
            return
        schedule = make_schedule(graph)
        head = graph.head
        head_extra = max(head.peek_rates[0] - head.pop_rates[0], 0)
        n = (schedule.init_in + iterations * schedule.steady_in
             + head_extra)
        items = [sample_input(i) for i in range(n)]

        oracle = GraphInterpreter(copy.deepcopy(graph), check_rates=True)
        oracle.push_input(list(items))
        oracle.run_steady(iterations)
        expected = oracle.take_output()
        expected_state = oracle.capture_state()

        # Codegen, split by a capture/restore at an iteration boundary.
        cg = _codegen_interp(copy.deepcopy(graph))
        cg.push_input(list(items))
        cg.run_steady(1)
        emitted = cg.take_output()
        state = cg.capture_state()
        resumed = _codegen_interp(copy.deepcopy(graph), state=state)
        resumed.push_input(items[state.consumed:])
        resumed.run_steady(iterations - 1)
        # Counters restart at the splice, so identity is judged on the
        # spliced output stream (as in the cross-backend restore test).
        assert emitted + resumed.take_output() == expected

        # Parallel executor over a 2-way topologically contiguous split.
        topo = list(graph.topological_order())
        half = max(1, len(topo) // 2)
        partition = [p for p in (topo[:half], topo[half:]) if p]
        px = ParallelBlobExecutor(copy.deepcopy(graph), partition,
                                  threads=len(partition))
        px.push_input(list(items))
        px.run_steady(iterations)
        assert px.take_output() == expected
        _assert_states_equal(px.capture_state(), expected_state)


class TestCodegenSelection:
    def test_selection_env_truth_table(self, monkeypatch):
        monkeypatch.delenv("REPRO_CODEGEN", raising=False)
        assert not select_codegen(True)       # off by default
        assert not select_codegen(False)
        monkeypatch.setenv("REPRO_CODEGEN", "1")
        assert select_codegen(True)
        assert not select_codegen(False)      # layers on vectorized only
        monkeypatch.setenv("REPRO_CODEGEN", "force")
        assert select_codegen(True)
        monkeypatch.setenv("REPRO_CODEGEN", "0")
        assert not select_codegen(True)

    def test_codegen_requires_vectorized(self):
        graph = Pipeline(ScaleFilter(2.0), ScaleFilter(3.0)).flatten()
        with pytest.raises(ValueError, match="vectorized"):
            GraphInterpreter(graph, check_rates=False, vectorize=False,
                             codegen=True)

    def test_kernel_rejects_unvectorized_plan(self):
        class FakePlan:
            vectorized = False

        with pytest.raises(ValueError, match="vectorized"):
            CodegenKernel(FakePlan())

    def test_env_selection_flows_into_interpreter(self, monkeypatch):
        monkeypatch.setenv("REPRO_VECTORIZE", "1")
        monkeypatch.setenv("REPRO_CODEGEN", "1")
        graph = Pipeline(FIRFilter([0.5, 0.5]), ScaleFilter(2.0)).flatten()
        interp = GraphInterpreter(graph, check_rates=False)
        assert interp.vectorized and interp.codegen
        _provision(interp, sample_input, 2)
        interp.run_init()
        interp.run_steady(2)
        assert interp._fused.mode == "codegen"


class TestKernelCache:
    def test_identical_source_shares_code_object(self):
        """Two plans with the same shape fingerprint to one kernel."""
        previous = get_default_cache()
        cache = CompilationCache()
        set_default_cache(cache)
        try:
            spec = get_app("FMRadio")
            blueprint = spec.blueprint(scale=SCALE)
            for _ in range(2):
                interp = _codegen_interp(blueprint())
                _provision(interp, spec.input_fn, 2)
                interp.run_init()
                interp.run_steady(2)
                assert interp._fused.mode == "codegen"
            counters = cache.counters()
            assert counters["kernel_misses"] == 1
            assert counters["kernel_hits"] >= 1
        finally:
            set_default_cache(previous)

    def test_kernel_counters_do_not_skew_hit_rate(self):
        cache = CompilationCache()
        fingerprint, code = cache.kernel_for("def _bind(a, b, c, d):\n"
                                             "    return lambda: None\n")
        assert len(fingerprint) == 64
        again, code2 = cache.kernel_for("def _bind(a, b, c, d):\n"
                                        "    return lambda: None\n")
        assert again == fingerprint and code2 is code
        # hit_rate is the paper's fig05 metric over schedules + plans;
        # the kernels table must not contribute to it.
        assert cache.hit_rate() == 0.0

    def test_explicit_cache_parameter(self):
        spec = get_app("FMRadio")
        interp = _codegen_interp(spec.blueprint(scale=SCALE)())
        _provision(interp, spec.input_fn, 2)
        interp.run_init()
        interp.run_steady(1)
        cache = CompilationCache()
        kernel = CodegenKernel(interp._fused, cache=cache)
        assert kernel.run_iteration()
        assert cache.counters()["kernel_misses"] == 1
        assert kernel.fingerprint is not None
        assert "def _bind" in kernel.source


class TestNumbaBackend:
    def _run(self, backend=None):
        spec = get_app("FMRadio")
        interp = _codegen_interp(spec.blueprint(scale=SCALE)())
        _provision(interp, spec.input_fn, 3)
        interp.run_init()
        interp.run_steady(1)
        kernel = CodegenKernel(interp._fused, backend=backend)
        assert kernel.run_iteration()
        return kernel

    def test_backend_defaults_to_python(self, monkeypatch):
        monkeypatch.delenv("REPRO_CODEGEN_BACKEND", raising=False)
        assert codegen_backend() == "python"
        assert self._run().backend == "python"

    def test_numba_request_without_numba_falls_back(self, monkeypatch):
        monkeypatch.setenv("REPRO_CODEGEN_BACKEND", "numba")
        if numba_available():  # pragma: no cover - not in this image
            pytest.skip("numba actually installed")
        assert codegen_backend() == "python"

    def test_fake_numba_jit_is_used(self, monkeypatch):
        fake = types.ModuleType("numba")
        wrapped = []

        def jit(**kwargs):
            def deco(fn):
                wrapped.append(fn)
                return fn
            return deco

        fake.jit = jit
        monkeypatch.setitem(sys.modules, "numba", fake)
        kernel = self._run(backend="numba")
        assert kernel.backend == "numba"
        assert wrapped

    def test_broken_numba_falls_back_to_python(self, monkeypatch):
        fake = types.ModuleType("numba")

        def jit(**kwargs):
            raise RuntimeError("no LLVM here")

        fake.jit = jit
        monkeypatch.setitem(sys.modules, "numba", fake)
        kernel = self._run(backend="numba")
        assert kernel.backend == "python"
