"""Determinism regression: same scenario + same fault plan → same run.

The simulation kernel is a deterministic discrete-event machine (heap
ordered by time then a monotonic id), and the fault injector only adds
*scheduled* events — so two runs of the same scenario must agree on
every observable: every trace span and instant, every counter sample,
the kernel's event count, and the merged output stream, event by
event.  Any divergence means nondeterminism crept into the kernel, the
runtime, or the injector — the property every pinned-timing chaos test
in :mod:`tests.test_faults` silently relies on.
"""

import pytest

from repro import Cluster, StreamApp, partition_even
from repro.faults import FaultPlan
from repro.obs import Tracer

from tests.conftest import (integration_cost_model, medium_stateful,
                            sample_input)

SCENARIOS = {
    "fault_free": lambda: None,
    "node_crash": lambda: FaultPlan(name="crash").crash_node(2, at=19.0),
    "degraded": lambda: (FaultPlan(name="degraded")
                         .link_outage(at=12.5, duration=2.0)
                         .stall_workers(at=14.0, duration=2.0)),
}


def run_scenario(plan_fn, strategy="adaptive"):
    cluster = Cluster(n_nodes=3, cores_per_node=4,
                      cost_model=integration_cost_model(),
                      tracer=Tracer())
    app = StreamApp(cluster, medium_stateful, input_fn=sample_input,
                    name="det", collect_output=True)
    app.launch(partition_even(medium_stateful(), [0, 1], multiplier=24,
                              name="A"))
    cluster.run(until=12.0)
    plan = plan_fn()
    if plan is not None:
        app.attach_faults(plan)
    app.reconfigure(
        partition_even(medium_stateful(), [0, 1, 2], multiplier=24,
                       name="B"),
        strategy=strategy)
    cluster.run(until=55.0)
    return cluster, app


def fingerprint(cluster, app):
    """Every observable of a run, in a directly comparable form."""
    tracer = app.tracer
    return {
        "spans": [(s.span_id, s.parent_id, s.category, s.name, s.track,
                   s.start, s.end, sorted(s.args.items()))
                  for s in tracer.spans],
        "instants": [(t, cat, name, track, sorted(args.items()))
                     for (t, cat, name, track, args) in tracer.instants],
        "counters": list(tracer.counters),
        "events_processed": cluster.env.events_processed,
        "now": cluster.env.now,
        "items": list(app.merger.items),
        "duplicate_items": app.merger.duplicate_items,
    }


@pytest.mark.parametrize("scenario", sorted(SCENARIOS))
def test_identical_runs_are_identical_event_by_event(scenario):
    first = fingerprint(*run_scenario(SCENARIOS[scenario]))
    second = fingerprint(*run_scenario(SCENARIOS[scenario]))
    for key in first:
        if first[key] != second[key]:
            a, b = first[key], second[key]
            if isinstance(a, list):
                for i, (x, y) in enumerate(zip(a, b)):
                    assert x == y, (
                        "%s/%s diverges at record %d:\n  run1: %r\n  run2: %r"
                        % (scenario, key, i, x, y))
            raise AssertionError("%s/%s differs: %r vs %r"
                                 % (scenario, key, a, b))


def test_different_fault_plans_give_different_runs():
    """Sanity check that the fingerprint has discriminating power: a
    crashed run must not fingerprint like a healthy one."""
    healthy = fingerprint(*run_scenario(SCENARIOS["fault_free"]))
    crashed = fingerprint(*run_scenario(SCENARIOS["node_crash"]))
    assert healthy["spans"] != crashed["spans"]
    assert healthy["items"] != crashed["items"]
