"""Tests for the observability subsystem (repro.obs).

Covers the tracer core (span nesting, disabled no-op path), the
Chrome-trace exporter schema, and the trace-derived reconfiguration
metrics — including the cross-check that trace-derived downtime agrees
with the merger-measured downtime within one measurement bucket.
"""

import json

import pytest

from repro import Cluster, StreamApp, partition_even
from repro.obs import (
    NULL_TRACER,
    Tracer,
    chrome_trace_events,
    output_series_from_trace,
    phase_timeline,
    to_chrome_trace,
    write_chrome_trace,
)
from repro.obs.tracer import _NULL_SPAN
from repro.sim.kernel import Environment

from tests.conftest import (
    integration_cost_model,
    medium_stateful,
    medium_stateless,
    sample_input,
)


class FakeClock:
    def __init__(self, time=0.0):
        self.time = time

    def __call__(self):
        return self.time


# ---------------------------------------------------------------------------
# Tracer core


class TestTracer:
    def test_span_records_interval(self):
        clock = FakeClock()
        tracer = Tracer(clock)
        span = tracer.begin("cat", "work", answer=42)
        clock.time = 3.5
        span.finish(extra="done")
        assert span.start == 0.0 and span.end == 3.5
        assert span.duration == 3.5
        assert span.args == {"answer": 42, "extra": "done"}

    def test_nesting_within_track(self):
        clock = FakeClock()
        tracer = Tracer(clock)
        outer = tracer.begin("reconfig", "outer", track="r")
        inner = tracer.begin("reconfig", "inner", track="r")
        assert inner.parent_id == outer.span_id
        inner.finish()
        sibling = tracer.begin("reconfig", "sibling", track="r")
        assert sibling.parent_id == outer.span_id
        sibling.finish()
        outer.finish()
        after = tracer.begin("reconfig", "after", track="r")
        assert after.parent_id is None

    def test_tracks_nest_independently(self):
        tracer = Tracer(FakeClock())
        a = tracer.begin("c", "a", track="one")
        b = tracer.begin("c", "b", track="two")
        assert a.parent_id is None and b.parent_id is None
        inner = tracer.begin("c", "inner", track="two")
        assert inner.parent_id == b.span_id

    def test_default_track_is_category(self):
        tracer = Tracer(FakeClock())
        span = tracer.begin("compile", "plan")
        assert span.track == "compile"

    def test_finish_is_idempotent(self):
        clock = FakeClock()
        tracer = Tracer(clock)
        span = tracer.begin("c", "s")
        clock.time = 1.0
        span.finish()
        clock.time = 9.0
        span.finish(late=True)
        assert span.end == 1.0
        assert "late" not in span.args

    def test_context_manager_annotates_errors(self):
        tracer = Tracer(FakeClock())
        with pytest.raises(RuntimeError):
            with tracer.span("c", "boom") as span:
                raise RuntimeError("nope")
        assert span.finished
        assert span.args["error"] == "RuntimeError"

    def test_out_of_order_finish_tolerated(self):
        tracer = Tracer(FakeClock())
        outer = tracer.begin("c", "outer", track="t")
        inner = tracer.begin("c", "inner", track="t")
        outer.finish()  # interrupted process closes outer first
        inner.finish()
        assert tracer.open_spans() == []

    def test_counter_backdating(self):
        clock = FakeClock(10.0)
        tracer = Tracer(clock)
        tracer.counter("output", "items", 5.0, time=3.5)
        tracer.counter("output", "items", 7.0)
        assert tracer.counters[0][0] == 3.5
        assert tracer.counters[1][0] == 10.0

    def test_finish_open_closes_everything(self):
        tracer = Tracer(FakeClock())
        tracer.begin("c", "a", track="x")
        tracer.begin("c", "b", track="y")
        assert tracer.finish_open() == 2
        assert tracer.open_spans() == []
        assert all(s.args.get("unfinished") for s in tracer.spans)

    def test_find_spans_filters(self):
        tracer = Tracer(FakeClock())
        tracer.begin("reconfig", "drain", track="r").finish()
        tracer.begin("compile", "plan", track="c").finish()
        assert len(tracer.find_spans(category="reconfig")) == 1
        assert len(tracer.find_spans(name="plan")) == 1
        assert len(tracer.find_spans(track="r")) == 1
        assert len(tracer.find_spans()) == 2

    def test_concurrent_emission_is_thread_safe(self):
        """Regression: the parallel blob executor emits from worker
        threads.  N threads hammering spans/instants/counters must
        lose no records, allocate no duplicate span ids, and leave
        every per-track open-span stack empty."""
        import threading

        tracer = Tracer(FakeClock())
        n_threads, per_thread = 8, 300
        barrier = threading.Barrier(n_threads)

        def hammer(tid):
            barrier.wait()
            for i in range(per_thread):
                span = tracer.begin("par", "work", track="t%d" % tid,
                                    thread=tid, i=i)
                tracer.instant("par", "tick", thread=tid)
                tracer.counter("par", "value", float(i))
                span.finish()

        threads = [threading.Thread(target=hammer, args=(tid,))
                   for tid in range(n_threads)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        total = n_threads * per_thread
        assert len(tracer.spans) == total
        assert len(tracer.instants) == total
        assert len(tracer.counters) == total
        ids = [s.span_id for s in tracer.spans]
        assert len(set(ids)) == total
        assert tracer.open_spans() == []
        assert all(not stack for stack in tracer._open.values())


class TestNullTracer:
    def test_disabled_records_nothing(self):
        span = NULL_TRACER.begin("c", "s", track="t", detail=1)
        span.annotate(more=2)
        span.finish()
        NULL_TRACER.instant("c", "i")
        NULL_TRACER.counter("c", "v", 3.0)
        assert NULL_TRACER.spans == ()
        assert NULL_TRACER.instants == ()
        assert NULL_TRACER.counters == ()
        assert not NULL_TRACER.enabled

    def test_null_span_is_shared_singleton(self):
        a = NULL_TRACER.begin("c", "a")
        b = NULL_TRACER.begin("c", "b")
        assert a is b is _NULL_SPAN
        with NULL_TRACER.span("c", "ctx") as span:
            assert span is _NULL_SPAN

    def test_environment_defaults_to_null_tracer(self):
        env = Environment()
        assert env.tracer is NULL_TRACER
        assert not env.tracer.enabled

    def test_environment_binds_clock_to_tracer(self):
        tracer = Tracer()
        env = Environment(tracer=tracer)
        env.run(until=4.0)
        assert tracer.now == 4.0


# ---------------------------------------------------------------------------
# Chrome export schema


class TestChromeExport:
    def make_tracer(self):
        clock = FakeClock()
        tracer = Tracer(clock)
        span = tracer.begin("reconfig", "drain", track="reconfig", items=3)
        clock.time = 2.0
        span.finish()
        tracer.instant("app", "note", track="app", what="ping")
        tracer.counter("output", "items", 120.0, track="output", time=1.5)
        return clock, tracer

    def test_complete_event_schema(self):
        _, tracer = self.make_tracer()
        events = chrome_trace_events(tracer)
        complete = [e for e in events if e["ph"] == "X"]
        assert len(complete) == 1
        event = complete[0]
        assert event["name"] == "drain"
        assert event["cat"] == "reconfig"
        assert event["ts"] == 0 and event["dur"] == 2_000_000
        assert event["args"]["items"] == 3
        assert isinstance(event["pid"], int)
        assert isinstance(event["tid"], int)

    def test_instant_and_counter_events(self):
        _, tracer = self.make_tracer()
        events = chrome_trace_events(tracer)
        instants = [e for e in events if e["ph"] == "i"]
        counters = [e for e in events if e["ph"] == "C"]
        assert instants and instants[0]["s"] == "t"
        assert counters[0]["args"] == {"value": 120.0}
        assert counters[0]["ts"] == 1_500_000

    def test_track_metadata_names_threads(self):
        _, tracer = self.make_tracer()
        events = chrome_trace_events(tracer)
        names = {e["args"]["name"] for e in events
                 if e["ph"] == "M" and e["name"] == "thread_name"}
        assert {"reconfig", "app", "output"} <= names

    def test_unfinished_span_flagged(self):
        clock = FakeClock()
        tracer = Tracer(clock)
        tracer.begin("c", "open-ended")
        clock.time = 5.0
        events = chrome_trace_events(tracer)
        event = next(e for e in events if e["ph"] == "X")
        assert event["dur"] == 5_000_000
        assert event["args"]["unfinished"] is True

    def test_args_coerced_to_json_safe(self):
        _, tracer = self.make_tracer()
        tracer.begin("c", "odd", payload=object()).finish()
        document = to_chrome_trace(tracer)
        json.dumps(document)  # must not raise

    def test_write_chrome_trace_round_trips(self, tmp_path):
        _, tracer = self.make_tracer()
        path = str(tmp_path / "trace.json")
        assert write_chrome_trace(tracer, path, app="demo") == path
        with open(path) as handle:
            document = json.load(handle)
        assert document["displayTimeUnit"] == "ms"
        assert document["otherData"]["app"] == "demo"
        assert isinstance(document["traceEvents"], list)
        assert any(e["ph"] == "X" for e in document["traceEvents"])


# ---------------------------------------------------------------------------
# Integration: traced reconfigurations


TEST_MODEL = integration_cost_model()

#: spans every traced reconfiguration of that strategy must produce.
EXPECTED_SPANS = {
    "stop_and_copy": {"stop_and_copy", "drain", "compile.full",
                      "discard-old", "init"},
    "fixed": {"fixed", "compile.phase1", "ast", "compile.phase2",
              "overlap", "discard-old"},
    "adaptive": {"adaptive", "compile.phase1", "ast", "compile.phase2",
                 "overlap", "discard-old"},
}


def traced_run(factory, strategy, until_before=12.0, until_after=60.0):
    tracer = Tracer()
    cluster = Cluster(n_nodes=3, cores_per_node=4, cost_model=TEST_MODEL,
                      tracer=tracer)
    app = StreamApp(cluster, factory, input_fn=sample_input, name="traced",
                    collect_output=True)
    app.launch(partition_even(factory(), [0, 1], multiplier=24, name="A"))
    cluster.run(until=until_before)
    done = app.reconfigure(partition_even(factory(), [0, 1, 2],
                                          multiplier=24, name="B"),
                           strategy=strategy)
    cluster.run(until=until_after)
    assert done.triggered and done.ok
    return app


class TestTracedReconfiguration:
    @pytest.mark.parametrize("strategy", sorted(EXPECTED_SPANS))
    def test_strategy_phase_spans_present(self, strategy):
        app = traced_run(medium_stateful, strategy)
        names = set(app.tracer.span_names())
        assert EXPECTED_SPANS[strategy] <= names
        assert app.tracer.open_spans() == []

    @pytest.mark.parametrize("strategy", sorted(EXPECTED_SPANS))
    def test_phase_spans_nest_under_strategy_root(self, strategy):
        app = traced_run(medium_stateful, strategy)
        root = app.tracer.find_spans("reconfig", strategy)[0]
        children = {s.name for s in app.tracer.spans
                    if s.parent_id == root.span_id}
        assert children & (EXPECTED_SPANS[strategy] - {strategy})

    def test_trace_downtime_agrees_with_merger_within_one_bucket(self):
        """The acceptance cross-check: downtime reconstructed from trace
        output counters matches the merger-measured series within one
        measurement bucket, for a strategy with real downtime and for
        one without."""
        for strategy in ("stop_and_copy", "adaptive"):
            app = traced_run(medium_stateful, strategy)
            rows = app.trace_metrics()
            assert len(rows) == 1
            row = rows[0]
            bucket = app.merger.TRACE_BUCKET
            assert abs(row["downtime_trace"]
                       - row["downtime_measured"]) <= bucket
            assert row["downtime_agrees"]

    def test_stop_and_copy_trace_shows_downtime(self):
        app = traced_run(medium_stateful, "stop_and_copy")
        row = app.trace_metrics()[0]
        assert row["downtime_measured"] > 0.0
        assert row["downtime_trace"] > 0.0

    def test_adaptive_trace_shows_overlap_not_downtime(self):
        app = traced_run(medium_stateful, "adaptive")
        row = app.trace_metrics()[0]
        assert row["downtime_measured"] == 0.0
        assert row["overlap_seconds"] > 0.0
        assert row["overlap_trace"] == pytest.approx(row["overlap_seconds"])
        assert row["duplicate_output_items"] > 0

    def test_output_series_reconstruction(self):
        app = traced_run(medium_stateless, "adaptive")
        app.merger.flush_trace_output()
        rebuilt = output_series_from_trace(app.tracer)
        total = app.series.total_items
        assert rebuilt.total_items == total
        # Bucket totals match the real series bucket-for-bucket.
        for start in range(0, 50, 10):
            assert (rebuilt.items_between(float(start), float(start + 10))
                    == app.series.items_between(float(start),
                                                float(start + 10)))

    def test_phase_timeline_renders_tree(self):
        app = traced_run(medium_stateful, "stop_and_copy")
        text = phase_timeline(app.tracer)
        assert "stop_and_copy" in text
        assert "drain" in text
        assert "compile.full" in text

    def test_export_trace_writes_valid_json(self, tmp_path):
        app = traced_run(medium_stateful, "fixed")
        path = str(tmp_path / "run.trace.json")
        app.export_trace(path)
        with open(path) as handle:
            document = json.load(handle)
        names = {e["name"] for e in document["traceEvents"]
                 if e.get("ph") == "X"}
        assert EXPECTED_SPANS["fixed"] <= names

    def test_report_phase_durations(self):
        app = traced_run(medium_stateful, "adaptive")
        durations = app.reconfigurations[-1].phase_durations()
        assert durations["compile.phase1"] > 0.0
        assert durations["compile.phase2"] >= 0.0
        assert durations["overlap"] > 0.0
        assert durations["total"] > 0.0

    def test_untraced_run_records_nothing(self):
        cluster = Cluster(n_nodes=3, cores_per_node=4,
                          cost_model=TEST_MODEL)
        app = StreamApp(cluster, medium_stateless, input_fn=sample_input,
                        name="quiet")
        app.launch(partition_even(medium_stateless(), [0, 1],
                                  multiplier=24, name="A"))
        cluster.run(until=12.0)
        done = app.reconfigure(partition_even(medium_stateless(), [0, 1, 2],
                                              multiplier=24, name="B"),
                               strategy="adaptive")
        cluster.run(until=60.0)
        assert done.triggered and done.ok
        assert app.tracer is NULL_TRACER
        assert len(app.tracer.spans) == 0


class TestManagerTracing:
    def test_queue_wait_span_finishes_when_request_starts(self):
        from repro.core.manager import ReconfigurationManager
        tracer = Tracer()
        cluster = Cluster(n_nodes=3, cores_per_node=4,
                          cost_model=TEST_MODEL, tracer=tracer)
        app = StreamApp(cluster, medium_stateless, input_fn=sample_input,
                        name="managed")
        app.launch(partition_even(medium_stateless(), [0, 1],
                                  multiplier=24, name="A"))
        cluster.run(until=12.0)
        manager = ReconfigurationManager(app)
        first = manager.submit(partition_even(medium_stateless(), [0, 1, 2],
                                              multiplier=24, name="B"),
                               strategy="adaptive")
        second = manager.submit(partition_even(medium_stateless(), [0, 2],
                                               multiplier=24, name="C"),
                                strategy="adaptive")
        cluster.run(until=140.0)
        assert first.status in ("completed", "superseded")
        assert second.status == "completed"
        waits = [s for s in tracer.find_spans("manager", "queue-wait")]
        assert waits and all(s.finished for s in waits)
        assert second.queue_wait_seconds is not None
        assert second.queue_wait_seconds >= 0.0
