"""Tests for the discrete-event simulation kernel."""

import math

import pytest

from repro.sim import Environment, Interrupt, SimulationError


class TestEvent:
    def test_succeed_carries_value(self):
        env = Environment()
        event = env.event()
        event.succeed(42)
        env.run()
        assert event.ok
        assert event.value == 42

    def test_double_trigger_rejected(self):
        env = Environment()
        event = env.event()
        event.succeed(1)
        with pytest.raises(SimulationError):
            event.succeed(2)

    def test_value_before_trigger_rejected(self):
        env = Environment()
        event = env.event()
        with pytest.raises(SimulationError):
            _ = event.value

    def test_fail_requires_exception(self):
        env = Environment()
        event = env.event()
        with pytest.raises(SimulationError):
            event.fail("not an exception")


class TestTimeout:
    def test_advances_clock(self):
        env = Environment()
        env.timeout(5.0)
        env.run()
        assert env.now == 5.0

    def test_negative_delay_rejected(self):
        env = Environment()
        with pytest.raises(SimulationError):
            env.timeout(-1.0)

    def test_ordering_is_by_time_then_fifo(self):
        env = Environment()
        seen = []
        for delay, tag in [(2.0, "b"), (1.0, "a"), (2.0, "c")]:
            timeout = env.timeout(delay, tag)
            timeout.callbacks.append(
                lambda ev: seen.append(ev.value))
        env.run()
        assert seen == ["a", "b", "c"]


class TestProcess:
    def test_sequential_timeouts(self):
        env = Environment()
        trace = []

        def proc():
            yield env.timeout(1.0)
            trace.append(env.now)
            yield env.timeout(2.0)
            trace.append(env.now)
            return "done"

        process = env.process(proc())
        env.run()
        assert trace == [1.0, 3.0]
        assert process.value == "done"

    def test_process_waits_on_event(self):
        env = Environment()
        gate = env.event()
        result = []

        def waiter():
            value = yield gate
            result.append((env.now, value))

        def opener():
            yield env.timeout(4.0)
            gate.succeed("open")

        env.process(waiter())
        env.process(opener())
        env.run()
        assert result == [(4.0, "open")]

    def test_yield_from_subgenerator_returns_value(self):
        env = Environment()

        def inner():
            yield env.timeout(1.0)
            return 7

        def outer():
            value = yield from inner()
            return value * 2

        process = env.process(outer())
        env.run()
        assert process.value == 14

    def test_failed_event_raises_in_process(self):
        env = Environment()
        gate = env.event()
        caught = []

        def proc():
            try:
                yield gate
            except ValueError as exc:
                caught.append(str(exc))

        env.process(proc())
        gate.fail(ValueError("boom"))
        env.run()
        assert caught == ["boom"]

    def test_yield_non_event_fails_process(self):
        env = Environment()

        def proc():
            yield 42

        process = env.process(proc())
        env.run()
        assert not process.ok
        assert isinstance(process.value, SimulationError)

    def test_yield_already_processed_event(self):
        env = Environment()
        early = env.event()
        early.succeed("past")
        env.run()
        assert early.processed

        def proc():
            value = yield early
            return value

        process = env.process(proc())
        env.run()
        assert process.value == "past"


class TestInterrupt:
    def test_interrupt_during_timeout(self):
        env = Environment()
        trace = []

        def victim():
            try:
                yield env.timeout(100.0)
                trace.append("finished")
            except Interrupt as interrupt:
                trace.append(("interrupted", interrupt.cause, env.now))

        def attacker(process):
            yield env.timeout(3.0)
            process.interrupt("stop")

        process = env.process(victim())
        env.process(attacker(process))
        env.run()
        # The victim resumed at t=3; the orphaned timer still drains
        # from the queue without effect.
        assert trace == [("interrupted", "stop", 3.0)]

    def test_uncaught_interrupt_terminates_quietly(self):
        env = Environment()

        def victim():
            yield env.timeout(100.0)

        process = env.process(victim())

        def attacker():
            yield env.timeout(1.0)
            process.interrupt("die")

        env.process(attacker())
        env.run()
        assert process.triggered
        assert process.value == "die"

    def test_interrupting_finished_process_is_noop(self):
        env = Environment()

        def quick():
            yield env.timeout(1.0)
            return "ok"

        process = env.process(quick())
        env.run()
        process.interrupt("late")  # must not raise
        assert process.value == "ok"


class TestAnyOf:
    def test_fires_on_first(self):
        env = Environment()
        fast = env.timeout(1.0, "fast")
        slow = env.timeout(5.0, "slow")

        def proc():
            fired = yield env.any_of([fast, slow])
            return fired

        process = env.process(proc())
        env.run(until=2.0)
        assert process.triggered
        assert (0, "fast") in process.value

    def test_empty_rejected(self):
        env = Environment()
        with pytest.raises(SimulationError):
            env.any_of([])


class TestStore:
    def test_put_then_get(self):
        env = Environment()
        store = env.store()
        store.put("x")
        got = []

        def proc():
            item = yield store.get()
            got.append(item)

        env.process(proc())
        env.run()
        assert got == ["x"]

    def test_get_blocks_until_put(self):
        env = Environment()
        store = env.store()
        got = []

        def consumer():
            item = yield store.get()
            got.append((env.now, item))

        def producer():
            yield env.timeout(2.0)
            store.put("late")

        env.process(consumer())
        env.process(producer())
        env.run()
        assert got == [(2.0, "late")]

    def test_capacity_blocks_put(self):
        env = Environment()
        store = env.store(capacity=1)
        store.put("a")
        second = store.put("b")
        env.run()
        assert not second.triggered
        assert store.items == ["a"]

        def consumer():
            yield store.get()

        env.process(consumer())
        env.run()
        assert second.triggered
        assert store.items == ["b"]

    def test_fifo_order(self):
        env = Environment()
        store = env.store()
        for i in range(5):
            store.put(i)
        got = []

        def consumer():
            for _ in range(5):
                item = yield store.get()
                got.append(item)

        env.process(consumer())
        env.run()
        assert got == [0, 1, 2, 3, 4]

    def test_bad_capacity(self):
        env = Environment()
        with pytest.raises(SimulationError):
            env.store(capacity=0)


class TestEnvironment:
    def test_run_until_advances_exactly(self):
        env = Environment()
        env.timeout(3.0)
        env.run(until=10.0)
        assert env.now == 10.0

    def test_run_backwards_rejected(self):
        env = Environment()
        env.run(until=5.0)
        with pytest.raises(SimulationError):
            env.run(until=1.0)

    def test_step_without_events_rejected(self):
        env = Environment()
        with pytest.raises(SimulationError):
            env.step()

    def test_peek(self):
        env = Environment()
        assert env.peek() == math.inf
        env.timeout(7.0)
        assert env.peek() == 7.0

    def test_events_within_until_processed(self):
        env = Environment()
        seen = []

        def proc():
            for _ in range(5):
                yield env.timeout(1.0)
                seen.append(env.now)

        env.process(proc())
        env.run(until=3.0)
        assert seen == [1.0, 2.0, 3.0]
        env.run(until=10.0)
        assert seen == [1.0, 2.0, 3.0, 4.0, 5.0]

    def test_determinism(self):
        def build_and_run():
            env = Environment()
            trace = []

            def worker(name, delay):
                for _ in range(3):
                    yield env.timeout(delay)
                    trace.append((env.now, name))

            env.process(worker("a", 1.5))
            env.process(worker("b", 1.5))
            env.process(worker("c", 2.0))
            env.run()
            return trace

        assert build_and_run() == build_and_run()
