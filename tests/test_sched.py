"""Tests for balance equations, schedules, buffers — with properties."""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.graph import Pipeline, SplitJoin
from repro.graph.workers import DuplicateSplitter, RoundRobinJoiner
from repro.graph.library import (
    Decimator,
    Expander,
    FIRFilter,
    Identity,
    ScaleFilter,
)
from repro.sched import (
    RateInconsistencyError,
    init_repetitions,
    make_schedule,
    repetition_vector,
    structural_leftover,
)
from repro.runtime import GraphInterpreter

from tests.conftest import (
    ALL_GRAPH_FACTORIES,
    multirate_graph,
    simple_pipeline,
    splitjoin_graph,
)


def assert_balanced(graph, repetitions):
    for edge in graph.edges:
        push = graph.worker(edge.src).push_rates[edge.src_port]
        pop = graph.worker(edge.dst).pop_rates[edge.dst_port]
        assert push * repetitions[edge.src] == pop * repetitions[edge.dst], \
            "edge %r unbalanced" % (edge,)


class TestBalance:
    @pytest.mark.parametrize("factory", ALL_GRAPH_FACTORIES,
                             ids=lambda f: f.__name__)
    def test_balance_equations_hold(self, factory):
        graph = factory()
        repetitions = repetition_vector(graph)
        assert_balanced(graph, repetitions)

    @pytest.mark.parametrize("factory", ALL_GRAPH_FACTORIES,
                             ids=lambda f: f.__name__)
    def test_vector_is_minimal(self, factory):
        graph = factory()
        repetitions = repetition_vector(graph)
        values = list(repetitions.values())
        assert all(v >= 1 for v in values)
        common = values[0]
        for v in values[1:]:
            common = math.gcd(common, v)
        assert common == 1

    def test_multirate(self):
        graph = multirate_graph()
        repetitions = repetition_vector(graph)
        assert_balanced(graph, repetitions)

    def test_inconsistent_rates_detected(self):
        # Duplicate splitter pushes 1 to each branch, but the branches
        # change rates asymmetrically and the joiner demands symmetry.
        graph = Pipeline(
            SplitJoin(
                DuplicateSplitter(2),
                Expander(2),
                Identity(),
                RoundRobinJoiner((1, 1)),
            ),
        ).flatten()
        with pytest.raises(RateInconsistencyError):
            repetition_vector(graph)


class TestInitSchedule:
    def test_no_peeking_needs_no_init(self):
        graph = Pipeline(ScaleFilter(1.0), ScaleFilter(2.0)).flatten()
        init = init_repetitions(graph)
        assert all(v == 0 for v in init.values())

    def test_peeking_forces_upstream_init(self):
        graph = simple_pipeline()  # FIR peek 3 pop 1 in the middle
        init = init_repetitions(graph)
        # Head must fire twice to leave peek-pop = 2 items buffered.
        assert init[graph.head.worker_id] == 2
        assert init[graph.tail.worker_id] == 0

    def test_initial_contents_reduce_init(self):
        graph = simple_pipeline()
        edge = graph.edges[0]
        init = init_repetitions(graph, initial_contents={edge.index: 2})
        assert init[graph.head.worker_id] == 0

    def test_prefill_increases_init(self):
        graph = simple_pipeline()
        edge = graph.edges[0]
        base = init_repetitions(graph)
        boosted = init_repetitions(graph, prefill={edge.index: 10})
        assert boosted[graph.head.worker_id] \
            == base[graph.head.worker_id] + 10

    def test_structural_leftover(self):
        graph = simple_pipeline()
        leftovers = structural_leftover(graph)
        # Edge into the FIR (peek 3, pop 1) keeps 2; edge into the
        # final scale keeps 0.
        assert leftovers[graph.edges[0].index] == 2
        assert leftovers[graph.edges[1].index] == 0

    @pytest.mark.parametrize("factory", ALL_GRAPH_FACTORIES,
                             ids=lambda f: f.__name__)
    def test_init_is_executable_and_leaves_leftovers(self, factory):
        """Admissibility: init runs without underflow and every edge
        ends with at least its structural leftover."""
        graph = factory()
        schedule = make_schedule(graph)
        interp = GraphInterpreter(graph)
        head_extra = max(graph.head.peek_rates[0] - graph.head.pop_rates[0], 0)
        interp.push_input([0.5] * (schedule.init_in + head_extra))
        interp.run_init()  # raises on underflow
        leftovers = structural_leftover(graph)
        for edge in graph.edges:
            assert len(interp.channels[edge.index]) >= leftovers[edge.index]


class TestSteadySchedule:
    @pytest.mark.parametrize("factory", ALL_GRAPH_FACTORIES,
                             ids=lambda f: f.__name__)
    def test_steady_iterations_execute(self, factory):
        graph = factory()
        schedule = make_schedule(graph, multiplier=2)
        interp = GraphInterpreter(graph, schedule=schedule)
        head_extra = max(graph.head.peek_rates[0] - graph.head.pop_rates[0], 0)
        interp.push_input(
            [0.25] * (schedule.init_in + 3 * schedule.steady_in + head_extra))
        interp.run_steady(3)
        assert interp.consumed == schedule.init_in + 3 * schedule.steady_in
        assert interp.emitted == schedule.init_out + 3 * schedule.steady_out

    def test_multiplier_scales_quanta(self):
        graph = simple_pipeline()
        s1 = make_schedule(graph, multiplier=1)
        s4 = make_schedule(graph, multiplier=4)
        assert s4.steady_in == 4 * s1.steady_in
        assert s4.steady_out == 4 * s1.steady_out
        assert s4.input_quantum == s1.input_quantum

    def test_bad_multiplier(self):
        with pytest.raises(ValueError):
            make_schedule(simple_pipeline(), multiplier=0)

    def test_steady_work_scales(self):
        graph = simple_pipeline()
        s1 = make_schedule(graph, multiplier=1)
        s2 = make_schedule(graph, multiplier=2)
        assert s2.steady_work == pytest.approx(2 * s1.steady_work)

    def test_firing_order_topological(self):
        graph = splitjoin_graph()
        schedule = make_schedule(graph)
        order = [w for w, _ in schedule.firing_order()]
        assert order == graph.topological_order()


class TestBufferCapacities:
    @pytest.mark.parametrize("factory", ALL_GRAPH_FACTORIES,
                             ids=lambda f: f.__name__)
    def test_capacity_is_peak_occupancy(self, factory):
        """Executing init + steady never exceeds computed capacities."""
        graph = factory()
        schedule = make_schedule(graph, multiplier=2)
        capacities = schedule.buffer_capacities()
        interp = GraphInterpreter(graph, schedule=schedule)
        head_extra = max(graph.head.peek_rates[0] - graph.head.pop_rates[0], 0)
        interp.push_input(
            [0.1] * (schedule.init_in + 2 * schedule.steady_in + head_extra))
        interp.run_steady(2)
        for edge in graph.edges:
            assert len(interp.channels[edge.index]) <= capacities[edge.index]


# -- property-based: random pipelines ------------------------------------------

@st.composite
def random_pipeline(draw):
    """A random pipeline of rate-changing, possibly peeking filters."""
    n = draw(st.integers(min_value=1, max_value=6))
    stages = []
    for i in range(n):
        kind = draw(st.integers(min_value=0, max_value=3))
        if kind == 0:
            stages.append(ScaleFilter(1.5, name="s%d" % i))
        elif kind == 1:
            taps = draw(st.integers(min_value=2, max_value=5))
            stages.append(FIRFilter([1.0] * taps, name="f%d" % i))
        elif kind == 2:
            stages.append(Decimator(draw(st.integers(2, 4)), name="d%d" % i))
        else:
            stages.append(Expander(draw(st.integers(2, 4)), name="e%d" % i))
    return Pipeline(*stages).flatten()


@given(random_pipeline())
@settings(max_examples=60, deadline=None)
def test_property_balance_holds_for_random_pipelines(graph):
    repetitions = repetition_vector(graph)
    assert_balanced(graph, repetitions)


@given(random_pipeline(), st.integers(min_value=1, max_value=4))
@settings(max_examples=60, deadline=None)
def test_property_schedules_are_admissible(graph, multiplier):
    """Init + 2 steady iterations execute without buffer underflow and
    consume/produce exactly the declared quanta."""
    schedule = make_schedule(graph, multiplier=multiplier)
    interp = GraphInterpreter(graph, schedule=schedule)
    head_extra = max(graph.head.peek_rates[0] - graph.head.pop_rates[0], 0)
    interp.push_input(
        [0.5] * (schedule.init_in + 2 * schedule.steady_in + head_extra))
    interp.run_steady(2)
    assert interp.consumed == schedule.init_in + 2 * schedule.steady_in
    assert interp.emitted == schedule.init_out + 2 * schedule.steady_out


@given(random_pipeline(), st.integers(min_value=0, max_value=20))
@settings(max_examples=60, deadline=None)
def test_property_init_with_contents_still_admissible(graph, preload):
    """State-aware init schedules stay admissible with arbitrary
    initial contents on the first edge."""
    if not graph.edges:
        return
    contents = {graph.edges[0].index: preload}
    init_repetitions(graph, initial_contents=contents)
    schedule = make_schedule(graph, initial_contents=contents)
    from repro.runtime.state import ProgramState
    state = ProgramState(edge_contents={
        graph.edges[0].index: [0.5] * preload})
    interp = GraphInterpreter(graph, schedule=schedule, state=state)
    head_extra = max(graph.head.peek_rates[0] - graph.head.pop_rates[0], 0)
    interp.push_input([0.5] * (schedule.init_in + head_extra))
    interp.run_init()
    leftovers = structural_leftover(graph)
    for edge in graph.edges:
        assert len(interp.channels[edge.index]) >= leftovers[edge.index]
